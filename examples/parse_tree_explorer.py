"""Explore the explicit parse tree behind the labels.

Derives a small run of the paper's running example, prints the explicit
parse tree (the Figure 9 structure), the per-run statistics, and then
decodes one vertex's reachability label entry by entry to show how
Algorithm 4 reads it.

Run:  python examples/parse_tree_explorer.py
"""

from __future__ import annotations

import random

from repro import DRL, analyze_grammar, running_example
from repro.parsetree.explicit import NodeKind, build_explicit_tree
from repro.parsetree.render import render_tree
from repro.workflow.derivation import DerivationPolicy, random_derivation
from repro.workflow.stats import run_stats


def describe_entry(position, entry):
    parts = [f"  entry {position}: index={entry.index}, type={entry.kind.value}"]
    if entry.skl is not None:
        parts.append(f"skeleton={entry.skl.key}:v{entry.skl.vertex}")
    if entry.rec1 is not None:
        parts.append(f"rec1={entry.rec1}, rec2={entry.rec2}")
    return " ".join(parts)


def main() -> None:
    spec = running_example()
    info = analyze_grammar(spec)
    policy = DerivationPolicy(
        rng=random.Random(12),
        target_size=60,
        mean_extra_copies=1.0,
        recursion_continue_prob=0.8,
    )
    run = random_derivation(spec, policy, info=info)
    tree = build_explicit_tree(run, info=info)

    print("=== explicit parse tree (Figure 9 structure) ===")
    print(render_tree(tree, max_vertices=4))
    print()
    print("=== run statistics ===")
    print(run_stats(run, info=info, tree=tree).summary())
    print()

    scheme = DRL(spec, skeleton="tcl")
    labels = scheme.label_derivation(run)
    # pick a vertex whose context sits deep in the tree
    deepest = max(
        (v for v in run.graph.vertices()),
        key=lambda v: len(labels[v]),
    )
    label = labels[deepest]
    print(
        f"=== label of v{deepest} ({run.graph.name(deepest)}): "
        f"{len(label)} entries, {scheme.label_bits(label)} bits ==="
    )
    for position, entry in enumerate(label):
        print(describe_entry(position, entry))

    source = run.graph.topological_order()[0]
    print()
    print(
        f"query  v{source} ~> v{deepest}: "
        f"{scheme.query(labels[source], labels[deepest])}"
    )
    print(
        f"query  v{deepest} ~> v{source}: "
        f"{scheme.query(labels[deepest], labels[source])}"
    )
    r_chains = [n for n in tree.nodes() if n.kind is NodeKind.R]
    if r_chains:
        longest = max(len(n.children) for n in r_chains)
        print(
            f"\nrecursion: {len(r_chains)} chain(s), longest {longest} "
            f"elements -- flattened to constant tree depth ({tree.depth()})"
        )


if __name__ == "__main__":
    main()
