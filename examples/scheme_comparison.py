"""Compare the labeling schemes on one workload (mini Section 7.4).

Labels the same BioAID-like runs with:

* DRL  -- the paper's dynamic scheme (labels as the run grows);
* SKL  -- the static skeleton-based baseline (whole run required);
* the naive Section 3.2 dynamic scheme (n-1 bit labels, any DAG).

and reports label sizes, construction times and query times.

Run:  python examples/scheme_comparison.py
"""

from __future__ import annotations

import random
import time

from repro import DRL, NaiveDynamicScheme, SKL, bioaid, sample_run
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.workflow.execution import execution_from_derivation


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1e3


def query_us(query, labels, count=20000, seed=0):
    rng = random.Random(seed)
    vids = list(labels)
    pairs = [
        (labels[rng.choice(vids)], labels[rng.choice(vids)])
        for _ in range(count)
    ]
    start = time.perf_counter()
    for a, b in pairs:
        query(a, b)
    return (time.perf_counter() - start) / count * 1e6


def main() -> None:
    spec = bioaid(recursive=False)  # SKL cannot label recursive workflows
    run = sample_run(spec, target_size=4000, rng=random.Random(4))
    vertices = list(run.graph.vertices())
    print(f"workload: {spec.name}, run of {run.run_size()} vertices\n")

    rows = []

    # DRL, execution-based (the on-the-fly scheme)
    drl = DRL(spec, skeleton="tcl")
    exe = execution_from_derivation(run)
    labeler = DRLExecutionLabeler(drl, mode="name")
    _, build_ms = timed(lambda: labeler.run(exe))
    labels = {v: labeler.label(v) for v in vertices}
    bits = [drl.label_bits(l) for l in labels.values()]
    rows.append(
        ("DRL (dynamic)", max(bits), sum(bits) / len(bits), build_ms,
         query_us(drl.query, labels))
    )

    # SKL, static
    skl = SKL(spec, skeleton="tcl")
    skl_labels, build_ms = timed(lambda: skl.label_run(run))
    bits = [skl.label_bits(l) for l in skl_labels.values()]
    rows.append(
        ("SKL (static)", max(bits), sum(bits) / len(bits), build_ms,
         query_us(skl.query, skl_labels))
    )

    # naive Section 3.2 scheme
    naive = NaiveDynamicScheme()
    naive_labels, build_ms = timed(lambda: naive.insert_all(exe))
    bits = [l.bits for l in naive_labels.values()]
    rows.append(
        ("naive 3.2 (dynamic)", max(bits), sum(bits) / len(bits), build_ms,
         query_us(naive.query, naive_labels))
    )

    header = f"{'scheme':<22}{'max bits':>10}{'avg bits':>10}{'build ms':>10}{'query us':>10}"
    print(header)
    print("-" * len(header))
    for name, hi, avg, build, q in rows:
        print(f"{name:<22}{hi:>10.0f}{avg:>10.1f}{build:>10.1f}{q:>10.2f}")
    print(
        "\nDRL labels stay logarithmic and are available while the run is "
        "still executing;\nSKL needs the completed run; the naive scheme's "
        "labels grow linearly."
    )


if __name__ == "__main__":
    main()
