"""Demo: the provenance query service, client and server in one process.

Starts a :class:`ReproServer` on an ephemeral loopback port, then plays
a workflow engine on the client side: it streams a running BioAID-like
execution into a session batch by batch and, *between batches*, answers
provenance questions about the part of the run that already happened --
the paper's on-the-fly capability, over a socket.  Finally it
checkpoints the live session, restores it under a new name, and shows
the restored copy answering identically.
"""

from __future__ import annotations

import random
import tempfile
import threading
from pathlib import Path

from repro import ReproServer, ServiceClient, bioaid
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation


def main() -> int:
    server = ReproServer(("127.0.0.1", 0))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"service listening on 127.0.0.1:{server.port}")

    spec = bioaid()
    run = sample_run(spec, 400, random.Random(42))
    execution = execution_from_derivation(run)
    events = execution.insertions
    first = events[0].vid

    with ServiceClient("127.0.0.1", server.port) as client:
        client.create_session("bioaid-run", "bioaid")
        print(f"session created; streaming {len(events)} module "
              "executions in batches of 100")

        for start in range(0, len(events), 100):
            batch = events[start : start + 100]
            info = client.ingest("bioaid-run", batch)
            latest = batch[-1].vid
            # the run is still "executing", but this answer is already final
            answer = client.query("bioaid-run", first, latest)
            print(
                f"  after {start + len(batch):4d} events "
                f"(version {info['version']}): "
                f"start ~> v{latest} = {answer}"
            )

        vids = sorted(run.graph.vertices())
        rng = random.Random(7)
        pairs = [(rng.choice(vids), rng.choice(vids)) for _ in range(1000)]
        answers = client.query_batch("bioaid-run", pairs)
        print(
            f"batch of {len(pairs)} queries: "
            f"{sum(answers)} reachable, {len(answers) - sum(answers)} not"
        )
        stats = client.stats()
        print(
            f"engine stats: {stats['queries']} queries, "
            f"cache hit rate {stats['hit_rate']:.0%}"
        )

        with tempfile.TemporaryDirectory() as tmp:
            ckpt = Path(tmp) / "checkpoint"
            client.snapshot("bioaid-run", str(ckpt))
            client.create_session("recovered", checkpoint=str(ckpt))
            recovered = client.query_batch("recovered", pairs)
            match = "identical" if recovered == answers else "DIVERGED"
            print(f"checkpoint -> restore: {len(pairs)} answers {match}")

        client.shutdown_server()
    server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
