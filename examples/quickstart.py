"""Quickstart: label a workflow run on-the-fly and answer reachability.

Uses the paper's running example (Figure 2): a loop L, a fork F and a
linear recursion between modules A and C.  We derive a random run,
stream its module executions into the execution-based DRL labeler and
answer provenance reachability queries from labels alone.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    DRL,
    DRLExecutionLabeler,
    analyze_grammar,
    execution_from_derivation,
    running_example,
    sample_run,
)


def main() -> None:
    spec = running_example()
    info = analyze_grammar(spec)
    print(f"specification: {spec.stats()}")
    print(f"grammar class: {info.grammar_class.value}")

    # 1. configure the scheme: TCL skeleton labels over the spec graphs
    scheme = DRL(spec, skeleton="tcl")

    # 2. derive a run of ~1000 module executions and stream it
    run = sample_run(spec, target_size=1000, rng=random.Random(42))
    execution = execution_from_derivation(run, rng=random.Random(7))
    print(f"run size: {run.run_size()} module executions")

    labeler = DRLExecutionLabeler(scheme, mode="name")
    for insertion in execution:
        labeler.insert(insertion)  # labeled immediately, label never changes

    # 3. answer reachability queries from two labels, in O(1)
    order = run.graph.topological_order()
    first, mid, last = order[0], order[len(order) // 2], order[-1]
    for a, b in [(first, last), (last, first), (first, mid), (mid, last)]:
        answer = scheme.query(labeler.label(a), labeler.label(b))
        print(
            f"  {run.graph.name(a):>4} (v{a}) ~> {run.graph.name(b):<4} (v{b}): "
            f"{answer}"
        )

    # 4. inspect label sizes: logarithmic in the run size
    bits = [scheme.label_bits(labeler.label(v)) for v in run.graph.vertices()]
    print(f"label bits: max={max(bits)}, avg={sum(bits) / len(bits):.1f}")


if __name__ == "__main__":
    main()
