"""Define a custom linear recursive workflow with the public API.

A genomics assembly pipeline: quality-control loop, per-chromosome
alignment fork, and an iterative-refinement *recursion* (Polish calls
Realign which calls Polish again, until convergence).  Shows how to:

* build a specification from scratch with :func:`repro.make_spec`;
* verify it is linear recursive (so compact dynamic labeling applies);
* derive runs with controlled loop/fork/recursion repetitions;
* inspect the explicit parse tree the labels are built from.

Run:  python examples/genomics_pipeline.py
"""

from __future__ import annotations

import random

from repro import (
    DRL,
    GrammarClass,
    TwoTerminalGraph,
    analyze_grammar,
    make_spec,
)
from repro.parsetree.explicit import NodeKind, build_explicit_tree
from repro.workflow.derivation import DerivationPolicy, random_derivation


def graph(tag, inner, edges):
    """Two-terminal helper with per-graph unique terminal names."""
    names = [f"in_{tag}"] + inner + [f"out_{tag}"]
    return TwoTerminalGraph.build(list(enumerate(names)), edges)


def build_pipeline():
    """The genomics assembly specification."""
    g0 = graph(
        "run",
        ["load_reads", "QcLoop", "AlignFork", "Polish", "export_assembly"],
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (1, 3)],
    )
    qc_body = graph(
        "qc",
        ["trim_adapters", "filter_quality", "dedupe_reads", "qc_report"],
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)],
    )
    align_body = graph(
        "align",
        ["index_chromosome", "map_reads", "sort_bam", "call_variants"],
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 4)],
    )
    polish_iter = graph(
        "polA",
        ["score_assembly", "Realign", "apply_patches"],
        [(0, 1), (1, 2), (2, 3), (3, 4)],
    )
    polish_done = graph(
        "polB",
        ["final_scores", "freeze_assembly"],
        [(0, 1), (1, 2), (2, 3)],
    )
    realign_body = graph(
        "realign",
        ["select_regions", "Polish", "merge_regions"],
        [(0, 1), (1, 2), (2, 3), (3, 4)],
    )
    return make_spec(
        start=g0,
        implementations=[
            ("QcLoop", qc_body),
            ("AlignFork", align_body),
            ("Polish", polish_iter),
            ("Polish", polish_done),
            ("Realign", realign_body),
        ],
        loops=["QcLoop"],
        forks=["AlignFork"],
        name="genomics-assembly",
    )


def main() -> None:
    spec = build_pipeline()
    info = analyze_grammar(spec)
    print(f"specification: {spec.stats()}")
    print(f"grammar class: {info.grammar_class.value}")
    assert info.grammar_class is GrammarClass.LINEAR_RECURSIVE
    print(
        "recursion: Polish -> Realign -> Polish "
        f"(escape: {info.escape_impl['Polish']})"
    )

    scheme = DRL(spec, skeleton="tcl")
    # favour deep polish/realign recursion so the R-chain shows up
    policy = DerivationPolicy(
        rng=random.Random(1),
        target_size=600,
        recursion_continue_prob=0.9,
        mean_extra_copies=1.2,
        shuffle_order=True,
    )
    run = random_derivation(spec, policy)
    labels = scheme.label_derivation(run)
    print(f"run size: {run.run_size()}")

    tree = build_explicit_tree(run, info=info)
    kinds = [n.kind for n in tree.nodes()]
    print(
        f"explicit parse tree: {tree.node_count} nodes, depth {tree.depth()} "
        f"(bound {tree.depth_bound()}), "
        f"{kinds.count(NodeKind.L)} L / {kinds.count(NodeKind.F)} F / "
        f"{kinds.count(NodeKind.R)} R nodes"
    )
    chains = [n for n in tree.nodes() if n.kind is NodeKind.R]
    if chains:
        longest = max(len(n.children) for n in chains)
        print(f"longest polish/realign chain: {longest} flattened elements")

    run_labels = {v: labels[v] for v in run.graph.vertices()}
    bits = [scheme.label_bits(l) for l in run_labels.values()]
    print(f"label bits: max={max(bits)}, avg={sum(bits) / len(bits):.1f}")

    # lineage question: does the first QC pass influence the final export?
    order = run.graph.topological_order()
    first_qc = next(v for v in order if run.graph.name(v) == "trim_adapters")
    final = next(v for v in reversed(order) if run.graph.name(v) == "export_assembly")
    print(
        "trim_adapters (first) ~> export_assembly (last): "
        f"{scheme.query(labels[first_qc], labels[final])}"
    )


if __name__ == "__main__":
    main()
