"""Provenance monitoring over a *partial* workflow execution.

The motivating scenario of the paper's introduction: a long-running
scientific workflow (the BioAID-like protein discovery pipeline) logs
module executions as they happen; scientists ask "was data item A used
to produce data item B?" long before the workflow finishes.  Static
labeling schemes cannot answer until the run completes; the dynamic
scheme answers immediately.

Run:  python examples/provenance_monitoring.py
"""

from __future__ import annotations

import random

from repro import ProvenanceStore, bioaid, execution_from_derivation, sample_run


def main() -> None:
    spec = bioaid()
    print(f"workflow: {spec.stats()}")

    store = ProvenanceStore(spec, skeleton="tcl", mode="name")

    # Simulate the engine: replay a sampled run as streamed module
    # executions, each consuming its predecessors' outputs and producing
    # one data item.
    run = sample_run(spec, target_size=800, rng=random.Random(1))
    events = list(execution_from_derivation(run, rng=random.Random(2)))
    halfway = len(events) // 2

    watched: list = []
    for step, event in enumerate(events):
        inputs = [f"data/{p}" for p in sorted(event.preds)]
        store.record(
            event.name,
            inputs=inputs,
            outputs=[f"data/{event.vid}"],
            vid=event.vid,
        )
        if step == 10:
            watched.append(("early item", f"data/{event.vid}"))
        if step == halfway:
            # the workflow is only half done -- query NOW
            tag, early = watched[0]
            current = f"data/{event.vid}"
            print(f"after {step + 1}/{len(events)} module executions:")
            print(
                f"  used({tag} -> current): "
                f"{store.used(early, current)}"
            )
            print(
                f"  used(current -> {tag}): "
                f"{store.used(current, early)}"
            )
            watched.append(("mid item", current))

    # after completion: trace a final result back to both watched items
    final_item = f"data/{events[-1].vid}"
    print(f"after completion ({len(events)} executions):")
    for tag, item in watched:
        print(f"  used({tag} -> final): {store.used(item, final_item)}")
    sizes = [store.label_bits(e.vid) for e in events]
    print(f"label bits: max={max(sizes)}, avg={sum(sizes) / len(sizes):.1f}")


if __name__ == "__main__":
    main()
