"""Graphviz DOT export for specifications, runs and parse trees.

Produces plain DOT text (no graphviz dependency) so users can render
workflow structure with any graphviz installation:

* :func:`specification_to_dot` -- one cluster per specification graph,
  composite vertices boxed, loop/fork modules double-boxed;
* :func:`run_to_dot` -- the run DAG, optionally colored by the module
  executed;
* :func:`parse_tree_to_dot` -- the explicit parse tree with its
  ``L``/``F``/``R`` special nodes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graphs.digraph import NamedDAG
from repro.parsetree.explicit import ExplicitParseTree, NodeKind, ParseNode
from repro.workflow.specification import Specification


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def specification_to_dot(spec: Specification) -> str:
    """The whole specification as one DOT digraph with clusters."""
    lines: List[str] = [f"digraph {_quote(spec.name)} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  node [fontsize=10];")
    for cluster_id, key in enumerate(spec.graph_keys()):
        graph = spec.graph(key)
        head = spec.head_of(key)
        title = key if head is None else f"{key} (implements {head})"
        lines.append(f"  subgraph cluster_{cluster_id} {{")
        lines.append(f"    label={_quote(title)};")
        for vid in sorted(graph.vertices()):
            name = graph.name(vid)
            node_id = f"{key}_{vid}".replace("#", "_")
            if spec.is_loop(name) or spec.is_fork(name):
                shape = "doubleoctagon"
            elif spec.is_atomic(name):
                shape = "ellipse"
            else:
                shape = "box"
            lines.append(
                f"    {_quote(node_id)} [label={_quote(name)}, shape={shape}];"
            )
        for u, v in sorted(graph.edges()):
            a = f"{key}_{u}".replace("#", "_")
            b = f"{key}_{v}".replace("#", "_")
            lines.append(f"    {_quote(a)} -> {_quote(b)};")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def run_to_dot(
    graph: NamedDAG,
    title: str = "run",
    highlight: Optional[List[int]] = None,
) -> str:
    """A run graph as DOT; ``highlight`` marks a vertex set (e.g. a
    witness path) in a distinct style."""
    marked = set(highlight or ())
    lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
    for vid in sorted(graph.vertices()):
        attrs = [f"label={_quote(f'{graph.name(vid)}:{vid}')}"]
        if vid in marked:
            attrs.append("style=filled")
            attrs.append('fillcolor="lightblue"')
        lines.append(f"  v{vid} [{', '.join(attrs)}];")
    for u, v in sorted(graph.edges()):
        style = ' [penwidth=2]' if u in marked and v in marked else ""
        lines.append(f"  v{u} -> v{v}{style};")
    lines.append("}")
    return "\n".join(lines)


def parse_tree_to_dot(tree: ExplicitParseTree, title: str = "parse-tree") -> str:
    """The explicit parse tree as DOT (special nodes shaped distinctly)."""
    lines = [f"digraph {_quote(title)} {{"]
    shapes = {
        NodeKind.N: "box",
        NodeKind.L: "circle",
        NodeKind.F: "diamond",
        NodeKind.R: "octagon",
    }
    counter = 0
    ids = {}

    def visit(node: ParseNode) -> None:
        nonlocal counter
        ids[node] = counter
        if node.kind is NodeKind.N:
            assert node.instance is not None
            label = f"[{node.index}] {node.instance.key}"
        else:
            label = f"[{node.index}] {node.kind.value}"
        lines.append(
            f"  n{counter} [label={_quote(label)}, "
            f"shape={shapes[node.kind]}];"
        )
        counter += 1
        for child in node.children:
            visit(child)
            lines.append(f"  n{ids[node]} -> n{ids[child]};")

    if tree.root is not None:
        visit(tree.root)
    lines.append("}")
    return "\n".join(lines)
