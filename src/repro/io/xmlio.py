"""XML serialization of specifications and execution logs.

Formats (all attributes are strings; ids are decimal integers)::

    <specification name="...">
      <loops><module name="L"/></loops>
      <forks><module name="F"/></forks>
      <graph key="g0" source="0" sink="2">
        <vertex id="0" name="s0"/> ...
        <edge from="0" to="1"/> ...
      </graph>
      <graph key="L#0" head="L" ...> ... </graph>
    </specification>

    <execution spec="...">
      <insert vid="0" name="s0">
        <pred vid="..."/> ...
        <origin key="g0" token="0" tv="0"/>   <!-- optional -->
        <slot token="0" tv="1"/>              <!-- optional -->
      </insert> ...
    </execution>

Implementation graphs are emitted in key order so the reloaded
specification assigns identical graph keys.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Iterable, List

from repro.errors import ReproError
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.workflow.execution import Insertion
from repro.workflow.specification import Specification, make_spec


class FormatError(ReproError):
    """Malformed serialized document."""


# ---------------------------------------------------------------------------
# specifications
# ---------------------------------------------------------------------------


def _graph_element(key: str, head, graph: TwoTerminalGraph) -> ET.Element:
    element = ET.Element(
        "graph",
        {
            "key": key,
            "source": str(graph.source),
            "sink": str(graph.sink),
        },
    )
    if head is not None:
        element.set("head", head)
    for vid in sorted(graph.vertices()):
        ET.SubElement(
            element, "vertex", {"id": str(vid), "name": graph.name(vid)}
        )
    for u, v in sorted(graph.edges()):
        ET.SubElement(element, "edge", {"from": str(u), "to": str(v)})
    return element


def _graph_from_element(element: ET.Element) -> TwoTerminalGraph:
    vertices = [
        (int(v.get("id")), v.get("name")) for v in element.findall("vertex")
    ]
    edges = [
        (int(e.get("from")), int(e.get("to"))) for e in element.findall("edge")
    ]
    source = element.get("source")
    sink = element.get("sink")
    if source is None or sink is None:
        raise FormatError("graph element missing source/sink")
    return TwoTerminalGraph.build(
        vertices, edges, source=int(source), sink=int(sink)
    )


def specification_to_xml(spec: Specification) -> ET.Element:
    """Serialize a specification to an XML element tree."""
    root = ET.Element("specification", {"name": spec.name})
    loops = ET.SubElement(root, "loops")
    for name in sorted(spec.loops):
        ET.SubElement(loops, "module", {"name": name})
    forks = ET.SubElement(root, "forks")
    for name in sorted(spec.forks):
        ET.SubElement(forks, "module", {"name": name})
    for key in spec.graph_keys():
        root.append(_graph_element(key, spec.head_of(key), spec.graph(key)))
    return root


def specification_from_xml(root: ET.Element) -> Specification:
    """Rebuild a specification from :func:`specification_to_xml` output."""
    if root.tag != "specification":
        raise FormatError(f"expected <specification>, found <{root.tag}>")
    loops = [m.get("name") for m in root.findall("loops/module")]
    forks = [m.get("name") for m in root.findall("forks/module")]
    start = None
    implementations = []
    for element in root.findall("graph"):
        graph = _graph_from_element(element)
        head = element.get("head")
        if head is None:
            if start is not None:
                raise FormatError("multiple start graphs")
            start = graph
        else:
            implementations.append((head, graph))
    if start is None:
        raise FormatError("missing start graph")
    return make_spec(
        start=start,
        implementations=implementations,
        loops=loops,
        forks=forks,
        name=root.get("name", "spec"),
    )


def save_specification_xml(spec: Specification, path) -> None:
    """Write a specification to an XML file."""
    tree = ET.ElementTree(specification_to_xml(spec))
    ET.indent(tree)
    tree.write(path, encoding="unicode", xml_declaration=False)


def load_specification_xml(path) -> Specification:
    """Read a specification from an XML file."""
    return specification_from_xml(ET.parse(path).getroot())


# ---------------------------------------------------------------------------
# execution logs
# ---------------------------------------------------------------------------


def execution_to_xml(
    insertions: Iterable[Insertion], spec_name: str = ""
) -> ET.Element:
    """Serialize an insertion stream (an execution log) to XML."""
    root = ET.Element("execution", {"spec": spec_name})
    for ins in insertions:
        element = ET.SubElement(
            root, "insert", {"vid": str(ins.vid), "name": ins.name}
        )
        for pred in sorted(ins.preds):
            ET.SubElement(element, "pred", {"vid": str(pred)})
        if ins.origin is not None:
            key, token, tv = ins.origin
            ET.SubElement(
                element,
                "origin",
                {"key": key, "token": str(token), "tv": str(tv)},
            )
        if ins.slot is not None:
            token, tv = ins.slot
            ET.SubElement(
                element, "slot", {"token": str(token), "tv": str(tv)}
            )
    return root


def execution_from_xml(root: ET.Element) -> List[Insertion]:
    """Rebuild an insertion stream from :func:`execution_to_xml` output."""
    if root.tag != "execution":
        raise FormatError(f"expected <execution>, found <{root.tag}>")
    insertions: List[Insertion] = []
    for element in root.findall("insert"):
        preds = frozenset(
            int(p.get("vid")) for p in element.findall("pred")
        )
        origin = None
        origin_el = element.find("origin")
        if origin_el is not None:
            origin = (
                origin_el.get("key"),
                int(origin_el.get("token")),
                int(origin_el.get("tv")),
            )
        slot = None
        slot_el = element.find("slot")
        if slot_el is not None:
            slot = (int(slot_el.get("token")), int(slot_el.get("tv")))
        insertions.append(
            Insertion(
                vid=int(element.get("vid")),
                name=element.get("name"),
                preds=preds,
                origin=origin,
                slot=slot,
            )
        )
    return insertions


def save_execution_xml(insertions: Iterable[Insertion], path, spec_name="") -> None:
    """Write an execution log to an XML file."""
    tree = ET.ElementTree(execution_to_xml(insertions, spec_name))
    ET.indent(tree)
    tree.write(path, encoding="unicode", xml_declaration=False)


def load_execution_xml(path) -> List[Insertion]:
    """Read an execution log from an XML file."""
    return execution_from_xml(ET.parse(path).getroot())
