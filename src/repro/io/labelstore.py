"""Persisted label maps: the compact binary codec on disk.

A label store is a JSON document mapping vertex ids to base64-encoded
bitstrings produced by the scheme's codec (resolved through
:func:`repro.labeling.serialize.codec_for_scheme`, so any registered
dynamic scheme -- ``drl``, ``naive``, ``path-position`` -- persists
through the same format).  The document records which scheme produced
the labels; loading dispatches on that name, so a store is
self-describing.  This is what a provenance system would keep next to
its execution log: labels are written once (they never change) and
loaded back to answer queries without re-labeling the run.
"""

from __future__ import annotations

import base64
import json
from typing import Dict, Tuple

from repro.io.xmlio import FormatError
from repro.labeling.serialize import codec_for_scheme
from repro.workflow.specification import Specification

_FORMAT = "repro-labels"
_VERSION = 1


def save_labels(
    labels: Dict[int, object],
    spec: Specification,
    path,
    scheme: str = "drl",
) -> None:
    """Encode and write a vertex -> label map under one scheme's codec."""
    codec = codec_for_scheme(scheme, spec)
    entries = {}
    for vid, label in labels.items():
        payload, bits = codec.encode(label)
        entries[str(vid)] = {
            "bits": bits,
            "data": base64.b64encode(payload).decode("ascii"),
        }
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "spec": spec.name,
        "scheme": scheme,
        # the codec's per-label wire format (1 = the original entry
        # encoding; 2 = packed drl labels); readers dispatch on it
        "codec": getattr(codec, "wire_version", 1),
        "labels": entries,
    }
    with open(path, "w") as handle:
        json.dump(document, handle)


def peek_label_store(path) -> Tuple[str, int]:
    """Validate a label store's header without decoding any label.

    Returns ``(scheme name, label count)``.  Raises :class:`FormatError`
    when the file is missing, is not JSON, or lacks the label-store
    format tag -- a cheap up-front check for callers (checkpoint
    restore) that would otherwise pay a full O(n) relabeling before
    discovering the store is unusable.
    """
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise FormatError(f"label store {path} does not exist") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise FormatError(f"label store {path} is unreadable: {exc}") from None
    if not isinstance(document, dict) or document.get("format") != _FORMAT:
        tag = document.get("format") if isinstance(document, dict) else document
        raise FormatError(f"not a label store: {tag!r}")
    labels = document.get("labels", {})
    count = len(labels) if isinstance(labels, dict) else 0
    return document.get("scheme", "drl"), count


def load_label_store(
    spec: Specification, path
) -> Tuple[str, Dict[int, object]]:
    """Read a label store; returns ``(scheme name, vid -> label)``.

    Stores written before the scheme field existed decode as ``drl``
    (the only scheme that could have written them).
    """
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise FormatError(f"not a label store: {document.get('format')!r}")
    scheme = document.get("scheme", "drl")
    codec = codec_for_scheme(scheme, spec)
    wire = document.get("codec", 1)
    decode_compat = getattr(codec, "decode_compat", None)
    if decode_compat is not None:
        decode = lambda payload, bits: decode_compat(payload, bits, wire)
    elif wire != getattr(codec, "wire_version", 1):
        raise FormatError(
            f"label store {path} uses wire version {wire!r}, which the "
            f"{scheme!r} codec cannot read"
        )
    else:
        decode = codec.decode
    labels: Dict[int, object] = {}
    for vid, entry in document.get("labels", {}).items():
        payload = base64.b64decode(entry["data"])
        labels[int(vid)] = decode(payload, entry["bits"])
    return scheme, labels


def load_labels(spec: Specification, path) -> Dict[int, object]:
    """Read just the vertex -> label map written by :func:`save_labels`."""
    _, labels = load_label_store(spec, path)
    return labels
