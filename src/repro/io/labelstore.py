"""Persisted label maps: the compact binary codec on disk.

A label store is a JSON document mapping vertex ids to base64-encoded
bitstrings produced by :class:`repro.labeling.serialize.LabelCodec`.
This is what a provenance system would keep next to its execution log:
labels are written once (they never change) and loaded back to answer
queries without re-labeling the run.
"""

from __future__ import annotations

import base64
import json
from typing import Dict

from repro.io.xmlio import FormatError
from repro.labeling.drl import Label
from repro.labeling.serialize import LabelCodec
from repro.workflow.specification import Specification

_FORMAT = "repro-labels"
_VERSION = 1


def save_labels(
    labels: Dict[int, Label], spec: Specification, path
) -> None:
    """Encode and write a vertex -> label map."""
    codec = LabelCodec(spec)
    entries = {}
    for vid, label in labels.items():
        payload, bits = codec.encode(label)
        entries[str(vid)] = {
            "bits": bits,
            "data": base64.b64encode(payload).decode("ascii"),
        }
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "spec": spec.name,
        "labels": entries,
    }
    with open(path, "w") as handle:
        json.dump(document, handle)


def load_labels(spec: Specification, path) -> Dict[int, Label]:
    """Read a vertex -> label map written by :func:`save_labels`."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise FormatError(f"not a label store: {document.get('format')!r}")
    codec = LabelCodec(spec)
    labels: Dict[int, Label] = {}
    for vid, entry in document.get("labels", {}).items():
        payload = base64.b64decode(entry["data"])
        labels[int(vid)] = codec.decode(payload, entry["bits"])
    return labels
