"""JSON serialization of specifications and execution logs.

Mirrors :mod:`repro.io.xmlio` with plain dictionaries: practical for
modern pipelines and trivially diffable.  Documents carry a ``format``
tag and version for forward compatibility.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.graphs.two_terminal import TwoTerminalGraph
from repro.io.xmlio import FormatError
from repro.workflow.execution import Insertion
from repro.workflow.specification import Specification, make_spec

_SPEC_FORMAT = "repro-specification"
_EXEC_FORMAT = "repro-execution"
_VERSION = 1


def _graph_dict(graph: TwoTerminalGraph) -> Dict:
    return {
        "source": graph.source,
        "sink": graph.sink,
        "vertices": [
            {"id": vid, "name": graph.name(vid)}
            for vid in sorted(graph.vertices())
        ],
        "edges": [[u, v] for u, v in sorted(graph.edges())],
    }


def _graph_from_dict(doc: Dict) -> TwoTerminalGraph:
    try:
        vertices = [(v["id"], v["name"]) for v in doc["vertices"]]
        edges = [(u, v) for u, v in doc["edges"]]
        return TwoTerminalGraph.build(
            vertices, edges, source=doc["source"], sink=doc["sink"]
        )
    except KeyError as exc:
        raise FormatError(f"graph document missing field {exc}") from exc


def specification_to_json(spec: Specification) -> Dict:
    """Serialize a specification to a JSON-compatible dictionary."""
    graphs = []
    for key in spec.graph_keys():
        entry = {"key": key, "head": spec.head_of(key)}
        entry.update(_graph_dict(spec.graph(key)))
        graphs.append(entry)
    return {
        "format": _SPEC_FORMAT,
        "version": _VERSION,
        "name": spec.name,
        "loops": sorted(spec.loops),
        "forks": sorted(spec.forks),
        "graphs": graphs,
    }


def specification_from_json(doc: Dict) -> Specification:
    """Rebuild a specification from :func:`specification_to_json` output."""
    if doc.get("format") != _SPEC_FORMAT:
        raise FormatError(f"not a specification document: {doc.get('format')!r}")
    start = None
    implementations = []
    for entry in doc.get("graphs", []):
        graph = _graph_from_dict(entry)
        if entry.get("head") is None:
            if start is not None:
                raise FormatError("multiple start graphs")
            start = graph
        else:
            implementations.append((entry["head"], graph))
    if start is None:
        raise FormatError("missing start graph")
    return make_spec(
        start=start,
        implementations=implementations,
        loops=doc.get("loops", []),
        forks=doc.get("forks", []),
        name=doc.get("name", "spec"),
    )


def save_specification_json(spec: Specification, path) -> None:
    """Write a specification to a JSON file."""
    with open(path, "w") as handle:
        json.dump(specification_to_json(spec), handle, indent=2)


def load_specification_json(path) -> Specification:
    """Read a specification from a JSON file."""
    with open(path) as handle:
        return specification_from_json(json.load(handle))


# ---------------------------------------------------------------------------
# execution logs
# ---------------------------------------------------------------------------


def insertion_to_json(ins: Insertion) -> Dict:
    """Serialize a single insertion event to a JSON-compatible dictionary."""
    event: Dict = {
        "vid": ins.vid,
        "name": ins.name,
        "preds": sorted(ins.preds),
    }
    if ins.origin is not None:
        key, token, tv = ins.origin
        event["origin"] = {"key": key, "token": token, "tv": tv}
    if ins.slot is not None:
        token, tv = ins.slot
        event["slot"] = {"token": token, "tv": tv}
    return event


def insertion_from_json(event: Dict) -> Insertion:
    """Rebuild one insertion from :func:`insertion_to_json` output."""
    try:
        origin = None
        if "origin" in event:
            origin = (
                event["origin"]["key"],
                event["origin"]["token"],
                event["origin"]["tv"],
            )
        slot = None
        if "slot" in event:
            slot = (event["slot"]["token"], event["slot"]["tv"])
        return Insertion(
            vid=event["vid"],
            name=event["name"],
            preds=frozenset(event["preds"]),
            origin=origin,
            slot=slot,
        )
    except (KeyError, TypeError) as exc:
        raise FormatError(f"malformed insertion event: {exc}") from None


def execution_to_json(
    insertions: Iterable[Insertion], spec_name: str = ""
) -> Dict:
    """Serialize an insertion stream to a JSON-compatible dictionary."""
    return {
        "format": _EXEC_FORMAT,
        "version": _VERSION,
        "spec": spec_name,
        "insertions": [insertion_to_json(ins) for ins in insertions],
    }


def execution_from_json(doc: Dict) -> List[Insertion]:
    """Rebuild an insertion stream from :func:`execution_to_json` output."""
    if doc.get("format") != _EXEC_FORMAT:
        raise FormatError(f"not an execution document: {doc.get('format')!r}")
    return [insertion_from_json(event) for event in doc.get("insertions", [])]


def save_execution_json(insertions: Iterable[Insertion], path, spec_name="") -> None:
    """Write an execution log to a JSON file."""
    with open(path, "w") as handle:
        json.dump(execution_to_json(insertions, spec_name), handle, indent=2)


def load_execution_json(path) -> List[Insertion]:
    """Read an execution log from a JSON file."""
    with open(path) as handle:
        return execution_from_json(json.load(handle))
