"""Persistence: XML and JSON interchange for specifications and executions.

The paper's experimental setup stores all workflow data in XML files
(Section 7.1); this package provides that interchange plus a JSON
equivalent and a binary label store:

* :mod:`repro.io.xmlio`  -- specifications and execution logs as XML;
* :mod:`repro.io.jsonio` -- the same documents as JSON;
* :mod:`repro.io.labelstore` -- persisted label maps using the compact
  binary codec of :mod:`repro.labeling.serialize`.
"""

from repro.io.jsonio import (
    execution_from_json,
    execution_to_json,
    insertion_from_json,
    insertion_to_json,
    load_execution_json,
    load_specification_json,
    save_execution_json,
    save_specification_json,
    specification_from_json,
    specification_to_json,
)
from repro.io.labelstore import load_label_store, load_labels, save_labels
from repro.io.xmlio import (
    execution_from_xml,
    execution_to_xml,
    load_execution_xml,
    load_specification_xml,
    save_execution_xml,
    save_specification_xml,
    specification_from_xml,
    specification_to_xml,
)

__all__ = [
    "specification_to_xml",
    "specification_from_xml",
    "save_specification_xml",
    "load_specification_xml",
    "execution_to_xml",
    "execution_from_xml",
    "save_execution_xml",
    "load_execution_xml",
    "specification_to_json",
    "specification_from_json",
    "save_specification_json",
    "load_specification_json",
    "execution_to_json",
    "execution_from_json",
    "insertion_to_json",
    "insertion_from_json",
    "save_execution_json",
    "load_execution_json",
    "save_labels",
    "load_labels",
    "load_label_store",
]
