"""SARIF 2.1.0 emission for lint reports.

SARIF (Static Analysis Results Interchange Format) is what GitHub
code scanning ingests: uploading the report annotates the PR diff
with each finding at its file/line.  Only the small stable core of
the format is emitted -- tool driver with the rule catalog, one
``result`` per finding -- and :func:`validate_sarif` structurally
checks that core (the suite is dependency-free, so there is no JSON
Schema library to lean on; the validator is the schema check the
tests pin).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.core import Checker, LintReport

__all__ = ["report_to_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def report_to_sarif(report: LintReport,
                    checkers: Sequence[Checker]) -> Dict[str, object]:
    """The lint report as a SARIF 2.1.0 document (a plain dict)."""
    by_rule = {checker.rule: checker for checker in checkers}
    rule_ids = sorted(
        set(report.rules) | {finding.rule for finding in report.findings}
    )
    rules: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for position, rule_id in enumerate(rule_ids):
        checker = by_rule.get(rule_id)
        rules.append({
            "id": rule_id,
            "shortDescription": {
                "text": checker.summary if checker is not None
                else rule_id,
            },
            "help": {
                "text": checker.hint if checker is not None else "",
            },
        })
        rule_index[rule_id] = position
    results: List[Dict[str, object]] = []
    for finding in report.findings:
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": "error",
            "message": {
                "text": (finding.message +
                         (f" (hint: {finding.hint})" if finding.hint
                          else "")),
            },
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.file,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 0) + 1,
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/",  # repo-relative docs
                    "rules": rules,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def validate_sarif(document: object) -> List[str]:
    """Structural schema check; returns the list of violations.

    An empty list means the document satisfies the SARIF 2.1.0 core
    that GitHub code scanning requires: version, one run with a named
    tool driver carrying a rule array, and results whose ruleIds are
    declared and whose locations carry a uri plus a 1-based startLine.
    """
    errors: List[str] = []

    def need(cond: bool, message: str) -> bool:
        if not cond:
            errors.append(message)
        return cond

    if not need(isinstance(document, dict), "document is not an object"):
        return errors
    need(document.get("version") == SARIF_VERSION,
         f"version must be {SARIF_VERSION!r}")
    runs = document.get("runs")
    if not need(isinstance(runs, list) and len(runs) >= 1,
                "runs must be a non-empty array"):
        return errors
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not need(isinstance(run, dict), f"{where} is not an object"):
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if not need(isinstance(driver, dict),
                    f"{where}.tool.driver missing"):
            continue
        need(isinstance(driver.get("name"), str) and driver["name"],
             f"{where}.tool.driver.name must be a non-empty string")
        rules = driver.get("rules", [])
        declared = set()
        if need(isinstance(rules, list),
                f"{where}.tool.driver.rules must be an array"):
            for rule_pos, rule in enumerate(rules):
                rwhere = f"{where}.rules[{rule_pos}]"
                if need(isinstance(rule, dict) and
                        isinstance(rule.get("id"), str),
                        f"{rwhere}.id must be a string"):
                    declared.add(rule["id"])
        results = run.get("results")
        if not need(isinstance(results, list),
                    f"{where}.results must be an array"):
            continue
        for pos, result in enumerate(results):
            rwhere = f"{where}.results[{pos}]"
            if not need(isinstance(result, dict),
                        f"{rwhere} is not an object"):
                continue
            rule_id = result.get("ruleId")
            need(isinstance(rule_id, str) and bool(rule_id),
                 f"{rwhere}.ruleId must be a string")
            if isinstance(rule_id, str) and declared:
                need(rule_id in declared,
                     f"{rwhere}.ruleId {rule_id!r} not declared in "
                     "the driver rules")
            message = result.get("message")
            need(isinstance(message, dict) and
                 isinstance(message.get("text"), str),
                 f"{rwhere}.message.text must be a string")
            locations = result.get("locations")
            if not need(isinstance(locations, list) and locations,
                        f"{rwhere}.locations must be non-empty"):
                continue
            for lpos, location in enumerate(locations):
                lwhere = f"{rwhere}.locations[{lpos}]"
                physical = location.get("physicalLocation") \
                    if isinstance(location, dict) else None
                if not need(isinstance(physical, dict),
                            f"{lwhere}.physicalLocation missing"):
                    continue
                artifact = physical.get("artifactLocation")
                need(isinstance(artifact, dict) and
                     isinstance(artifact.get("uri"), str),
                     f"{lwhere}.artifactLocation.uri must be a string")
                region = physical.get("region")
                if need(isinstance(region, dict),
                        f"{lwhere}.region missing"):
                    need(isinstance(region.get("startLine"), int) and
                         region["startLine"] >= 1,
                         f"{lwhere}.region.startLine must be >= 1")
    return errors
