"""The committed findings baseline (``.reprolint-baseline.json``).

A new rule landing on a big tree surfaces pre-existing findings that
are real but not this change's job to fix.  The baseline records
those accepted findings so CI keeps passing, while *new* findings --
anything not in the baseline -- still fail the build.  Findings may
only leave the baseline (by being fixed), never accumulate: CI gates
on the file never growing.

Baselined findings are matched by a *fingerprint* that survives
unrelated edits: rule id, file basename, and the stripped source
line's text, plus an occurrence index for identical lines.  Line
numbers are recorded for humans but never matched on.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Finding, LintReport

__all__ = [
    "BASELINE_NAME",
    "apply_baseline",
    "compute_fingerprints",
    "load_baseline",
    "write_baseline",
]

BASELINE_NAME = ".reprolint-baseline.json"
_VERSION = 1


def _line_text(finding: Finding,
               cache: Dict[str, List[str]]) -> str:
    lines = cache.get(finding.file)
    if lines is None:
        try:
            lines = Path(finding.file).read_text(
                encoding="utf-8").splitlines()
        except OSError:
            lines = []
        cache[finding.file] = lines
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1].strip()
    return ""


def compute_fingerprints(findings: List[Finding]) -> List[str]:
    """One stable fingerprint per finding, order-aligned.

    ``sha256(rule | file-basename | stripped-line-text | index)`` --
    the index disambiguates identical lines flagged by the same rule
    in the same file, counted in finding order.
    """
    cache: Dict[str, List[str]] = {}
    seen: Dict[Tuple[str, str, str], int] = {}
    fingerprints: List[str] = []
    for finding in findings:
        text = _line_text(finding, cache)
        basename = finding.file.replace("\\", "/").rsplit("/", 1)[-1]
        key = (finding.rule, basename, text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha256(
            f"{finding.rule}|{basename}|{text}|{index}".encode("utf-8")
        ).hexdigest()[:20]
        fingerprints.append(digest)
    return fingerprints


def load_baseline(path: Path) -> Optional[Dict[str, object]]:
    """The parsed baseline, or None when the file does not exist."""
    if not path.is_file():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or \
            not isinstance(data.get("findings"), list):
        raise ValueError(
            f"{path}: not a reprolint baseline (expected an object "
            "with a 'findings' array)"
        )
    return data


def apply_baseline(report: LintReport,
                   baseline: Optional[Dict[str, object]]
                   ) -> Tuple[LintReport, List[Dict[str, object]]]:
    """Split baselined findings out of the report.

    Returns ``(report, baselined)`` where the report keeps only *new*
    findings (what CI gates on) and ``baselined`` lists the accepted
    ones that were seen again.  Without a baseline the report passes
    through untouched.
    """
    if baseline is None:
        return report, []
    accepted: Dict[str, Dict[str, object]] = {}
    for entry in baseline.get("findings", []):
        if isinstance(entry, dict) and isinstance(
                entry.get("fingerprint"), str):
            accepted[entry["fingerprint"]] = entry
    kept: List[Finding] = []
    baselined: List[Dict[str, object]] = []
    budget = dict.fromkeys(accepted, 1)
    for finding, fingerprint in zip(
            report.findings, compute_fingerprints(report.findings)):
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            record = dict(finding.to_dict())
            record["fingerprint"] = fingerprint
            baselined.append(record)
        else:
            kept.append(finding)
    report.findings = kept
    return report, baselined


def write_baseline(report: LintReport, path: Path) -> int:
    """Accept every current finding into the baseline; returns count."""
    entries: List[Dict[str, object]] = []
    for finding, fingerprint in zip(
            report.findings, compute_fingerprints(report.findings)):
        entries.append({
            "fingerprint": fingerprint,
            "rule": finding.rule,
            "file": finding.file,
            "line": finding.line,
            "message": finding.message,
        })
    entries.sort(key=lambda e: (e["file"], e["line"], e["rule"]))
    document = {
        "version": _VERSION,
        "comment": (
            "Accepted pre-existing lint findings. This file may only "
            "shrink: fix a finding and remove its entry. CI gates on "
            "it never growing."
        ),
        "findings": entries,
    }
    path.write_text(json.dumps(document, indent=2) + "\n",
                    encoding="utf-8")
    return len(entries)
