"""Cross-module checkers: op-surface drift and docs drift.

These rules compare artifacts that must agree but live in different
files: the ``protocol.OPS`` tuple, the server dispatch table, the
client wrappers and retry classification, the cluster routing tables,
and the operator-facing documentation.  They run once per lint
invocation and no-op when the tree under lint does not contain the
service (so per-file rules still work on arbitrary fixture trees).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Checker, Finding, Project, SourceFile

_PROTOCOL = "repro/service/protocol.py"
_SERVER = "repro/service/server.py"
_CLIENT = "repro/service/client.py"
_CLUSTER = "repro/service/cluster.py"


# ---------------------------------------------------------------------------
# tiny constant evaluators (just enough for this codebase's tables)
# ---------------------------------------------------------------------------


def _module_env(tree: ast.Module) -> Dict[str, ast.AST]:
    """Top-level ``NAME = <expr>`` assignments, by name."""
    env: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = node.value
    return env


def _eval_str_tuple(node: Optional[ast.AST]) -> Optional[Tuple[str, ...]]:
    """A literal tuple/list of string constants, or None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out: List[str] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append(elt.value)
        else:
            return None
    return tuple(out)


def _eval_str_set(
    node: Optional[ast.AST], env: Dict[str, ast.AST]
) -> Optional[Set[str]]:
    """Evaluate ``frozenset({...})`` / ``{...}`` / unions / names."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return _eval_str_set(env.get(node.id), env)
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in {"frozenset", "set"}:
            if not node.args:
                return set()
            if len(node.args) == 1:
                return _eval_str_set(node.args[0], env)
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: Set[str] = set()
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.add(elt.value)
            else:
                return None
        return out
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _eval_str_set(node.left, env)
        right = _eval_str_set(node.right, env)
        if left is None or right is None:
            return None
        return left | right
    return None


def _assign_line(tree: ast.Module, name: str) -> int:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.lineno
    return 1


def _protocol_ops(project: Project) -> Optional[Tuple[SourceFile,
                                                      Tuple[str, ...]]]:
    protocol = project.module(_PROTOCOL)
    if protocol is None:
        return None
    ops = _eval_str_tuple(_module_env(protocol.tree).get("OPS"))
    if ops is None:
        return None
    return protocol, ops


def _server_dispatch(
    server: SourceFile,
) -> Optional[Tuple[int, Dict[str, str]]]:
    """``self._ops = { "op": self._op_handler, ... }`` -> (line, map)."""
    for node in ast.walk(server.tree):
        if not isinstance(node, ast.Assign):
            continue
        target = node.targets[0] if node.targets else None
        named = (
            isinstance(target, ast.Attribute) and target.attr == "_ops"
        )
        if not named and isinstance(node, ast.Assign):
            continue
        if named and isinstance(node.value, ast.Dict):
            table: Dict[str, str] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ):
                    return None
                handler = (
                    value.attr if isinstance(value, ast.Attribute) else ""
                )
                table[key.value] = handler
            return node.lineno, table
    # AnnAssign variant: self._ops: Dict[...] = {...}
    for node in ast.walk(server.tree):
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Attribute)
            and node.target.attr == "_ops"
            and isinstance(node.value, ast.Dict)
        ):
            table = {}
            for key, value in zip(node.value.keys, node.value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ):
                    return None
                table[key.value] = (
                    value.attr if isinstance(value, ast.Attribute) else ""
                )
            return node.lineno, table
    return None


def _client_call_ops(client: SourceFile) -> Dict[str, List[str]]:
    """op -> wrapper method names whose bodies issue ``self.call(op)``."""
    by_op: Dict[str, List[str]] = {}
    for node in ast.walk(client.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for call in ast.walk(method):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr == "call"
                ):
                    continue
                if call.args and isinstance(
                    call.args[0], ast.Constant
                ) and isinstance(call.args[0].value, str):
                    by_op.setdefault(
                        call.args[0].value, []
                    ).append(method.name)
    return by_op


def _sorted(values) -> str:
    return ", ".join(sorted(values))


# ---------------------------------------------------------------------------
# rule: ops-surface
# ---------------------------------------------------------------------------


class OpsSurfaceRule(Checker):
    """Every table describing the op surface must agree with
    ``protocol.OPS``: the server dispatch dict, the client wrapper
    coverage, the retry classification
    (``IDEMPOTENT_OPS``/``MUTATING_OPS`` partitioning the surface),
    and the cluster routing tables."""

    rule = "ops-surface"
    summary = "an op table drifted from protocol.OPS"
    hint = (
        "a new op must land in protocol.OPS, the server _ops dict, a "
        "ServiceClient wrapper, exactly one of IDEMPOTENT_OPS/"
        "MUTATING_OPS, and a cluster routing table, all in one change"
    )
    project = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        anchored = _protocol_ops(project)
        if anchored is None:
            return
        protocol, ops_tuple = anchored
        ops = set(ops_tuple)
        if len(ops) != len(ops_tuple):
            yield self.finding(
                protocol, _assign_line(protocol.tree, "OPS"),
                "protocol.OPS contains duplicate entries",
            )

        server = project.module(_SERVER)
        if server is not None:
            dispatch = _server_dispatch(server)
            if dispatch is None:
                yield self.finding(
                    server, 1,
                    "could not locate the self._ops dispatch dict "
                    "(literal dict of op-name keys expected)",
                )
            else:
                line, table = dispatch
                missing = ops - set(table)
                extra = set(table) - ops
                if missing:
                    yield self.finding(
                        server, line,
                        f"server dispatch is missing op(s): "
                        f"{_sorted(missing)}",
                    )
                if extra:
                    yield self.finding(
                        server, line,
                        f"server dispatch handles op(s) absent from "
                        f"protocol.OPS: {_sorted(extra)}",
                    )

        client = project.module(_CLIENT)
        if client is not None:
            env = _module_env(client.tree)
            idempotent = _eval_str_set(env.get("IDEMPOTENT_OPS"), env)
            mutating = _eval_str_set(env.get("MUTATING_OPS"), env)
            if idempotent is None:
                yield self.finding(
                    client, 1,
                    "IDEMPOTENT_OPS is missing or not a literal "
                    "frozenset of op names",
                )
            if mutating is None:
                yield self.finding(
                    client, 1,
                    "MUTATING_OPS is missing or not a literal frozenset "
                    "of op names (every op must be classified for the "
                    "retry policy)",
                )
            if idempotent is not None and mutating is not None:
                overlap = idempotent & mutating
                if overlap:
                    yield self.finding(
                        client, _assign_line(client.tree, "MUTATING_OPS"),
                        f"op(s) classified both idempotent and mutating: "
                        f"{_sorted(overlap)}",
                    )
                unclassified = ops - (idempotent | mutating)
                if unclassified:
                    yield self.finding(
                        client, _assign_line(client.tree, "MUTATING_OPS"),
                        f"op(s) not classified for the retry policy: "
                        f"{_sorted(unclassified)}",
                    )
                phantom = (idempotent | mutating) - ops
                if phantom:
                    yield self.finding(
                        client,
                        _assign_line(client.tree, "IDEMPOTENT_OPS"),
                        f"retry classification names unknown op(s): "
                        f"{_sorted(phantom)}",
                    )
            wrapped = set(_client_call_ops(client))
            unwrapped = ops - wrapped
            if unwrapped:
                yield self.finding(
                    client, 1,
                    f"no ServiceClient wrapper issues op(s): "
                    f"{_sorted(unwrapped)}",
                )
            unknown = wrapped - ops
            if unknown:
                yield self.finding(
                    client, 1,
                    f"ServiceClient issues op(s) absent from "
                    f"protocol.OPS: {_sorted(unknown)}",
                )

        cluster = project.module(_CLUSTER)
        if cluster is not None:
            env = _module_env(cluster.tree)
            for name in ("_SESSION_OPS", "_BROADCAST_OPS", "_ROUTED_OPS"):
                table = _eval_str_set(env.get(name), env)
                if table is None:
                    yield self.finding(
                        cluster, 1,
                        f"{name} is missing or not statically evaluable",
                    )
                    continue
                phantom = table - ops
                if phantom:
                    yield self.finding(
                        cluster, _assign_line(cluster.tree, name),
                        f"{name} names unknown op(s): {_sorted(phantom)}",
                    )
                if name == "_ROUTED_OPS" and table != ops:
                    unrouted = ops - table
                    if unrouted:
                        yield self.finding(
                            cluster, _assign_line(cluster.tree, name),
                            f"the cluster router has no route for "
                            f"op(s): {_sorted(unrouted)}",
                        )


# ---------------------------------------------------------------------------
# rule: ops-idempotent
# ---------------------------------------------------------------------------

#: call names that mutate service state; an op advertised as
#: idempotent (and therefore auto-retried by the client) must never
#: reach one of these from its handler.  ``snapshot`` is deliberately
#: absent: ``metrics.snapshot()`` is a pure read of the registry.
_MUTATION_MARKERS = frozenset({
    "ingest", "ingest_many", "insert", "create", "create_session",
    "adopt", "close", "close_session", "checkpoint",
    "checkpoint_session", "checkpoint_pending", "restore_session",
    "finalize", "register", "truncate_to_base", "sync", "set",
    "shutdown", "drop_session_entries", "write", "append", "clear",
    "pop",
})


class OpsIdempotentRule(Checker):
    """Ops in ``IDEMPOTENT_OPS`` are silently retried after a socket
    failure, so their server handlers must be provably read-only: a
    retried mutation would double-apply."""

    rule = "ops-idempotent"
    summary = "an op advertised as idempotent reaches a mutating call"
    hint = (
        "move the op to MUTATING_OPS, or keep the handler read-only; "
        "the client reconnect-and-retry path assumes it can replay "
        "these ops blindly"
    )
    project = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        anchored = _protocol_ops(project)
        if anchored is None:
            return
        server = project.module(_SERVER)
        client = project.module(_CLIENT)
        if server is None or client is None:
            return
        env = _module_env(client.tree)
        idempotent = _eval_str_set(env.get("IDEMPOTENT_OPS"), env)
        dispatch = _server_dispatch(server)
        if idempotent is None or dispatch is None:
            return  # ops-surface already reports the structural failure
        _, table = dispatch
        methods: Dict[str, ast.FunctionDef] = {
            node.name: node
            for node in ast.walk(server.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for op in sorted(idempotent):
            handler_name = table.get(op)
            handler = methods.get(handler_name or "")
            if handler is None:
                continue  # dispatch drift is ops-surface's to report
            for node in ast.walk(handler):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name)
                    else None
                )
                if name in _MUTATION_MARKERS:
                    yield self.finding(
                        server, node.lineno,
                        f"op {op!r} is advertised idempotent but its "
                        f"handler {handler_name}() calls {name}()",
                        col=node.col_offset,
                    )


# ---------------------------------------------------------------------------
# rule: docs-drift
# ---------------------------------------------------------------------------

_BACKTICK_WORD = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")
_API_BULLET = re.compile(r"^\s*[*-]\s+`([A-Za-z_][A-Za-z0-9_]*)")


def _docstring_ops(protocol: SourceFile) -> Optional[Set[str]]:
    """First tokens of the indented block after ``Operations::``."""
    doc = ast.get_docstring(protocol.tree)
    if doc is None:
        return None
    lines = doc.splitlines()
    ops: Set[str] = set()
    collecting = False
    for line in lines:
        if line.strip() == "Operations::":
            collecting = True
            continue
        if not collecting:
            continue
        if not line.strip():
            if ops:
                break
            continue
        if not line.startswith((" ", "\t")):
            break
        ops.add(line.split()[0])
    return ops or None


def _service_md_ops(text: str) -> Optional[Tuple[int, Set[str]]]:
    """The op column of the SERVICE.md wire-protocol table."""
    lines = text.splitlines()
    for index, line in enumerate(lines):
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        if not cells or cells[0].strip("`").lower() != "op":
            continue
        ops: Set[str] = set()
        for row in lines[index + 1:]:
            row = row.strip()
            if not row.startswith("|"):
                break
            first = row.strip("|").split("|")[0].strip()
            if set(first) <= {"-", ":", " "}:
                continue  # the |---| separator row
            match = _BACKTICK_WORD.search(first)
            if match:
                ops.add(match.group(1))
        return index + 1, ops
    return None


def _api_md_client_methods(text: str) -> Optional[Tuple[int, Set[str]]]:
    """Method bullets inside the ``class ServiceClient`` section."""
    lines = text.splitlines()
    start: Optional[int] = None
    for index, line in enumerate(lines):
        if line.startswith("#") and "ServiceClient" in line and (
            "class" in line
        ):
            start = index
            break
    if start is None:
        return None
    methods: Set[str] = set()
    for line in lines[start + 1:]:
        if line.startswith("#"):
            break
        match = _API_BULLET.match(line)
        if match:
            methods.add(match.group(1))
    return start + 1, methods


class DocsDriftRule(Checker):
    """The operator docs must describe the real op surface: the
    SERVICE.md wire-protocol table, the generated API.md ServiceClient
    section, and the protocol module's own docstring."""

    rule = "docs-drift"
    summary = "documentation drifted from protocol.OPS"
    hint = (
        "update docs/SERVICE.md's op table and the protocol docstring "
        "by hand; regenerate docs/API.md with tools/gen_api_docs.py"
    )
    project = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        anchored = _protocol_ops(project)
        if anchored is None:
            return
        protocol, ops_tuple = anchored
        ops = set(ops_tuple)

        documented = _docstring_ops(protocol)
        if documented is None:
            yield self.finding(
                protocol, 1,
                "protocol docstring has no 'Operations::' block",
            )
        elif documented != ops:
            missing = ops - documented
            extra = documented - ops
            parts = []
            if missing:
                parts.append(f"missing {_sorted(missing)}")
            if extra:
                parts.append(f"stale {_sorted(extra)}")
            yield self.finding(
                protocol, 1,
                "protocol docstring Operations:: block drifted: "
                + "; ".join(parts),
            )

        service_md = project.doc("docs/SERVICE.md")
        if service_md is not None:
            parsed = _service_md_ops(
                service_md.read_text(encoding="utf-8")
            )
            if parsed is None:
                yield self.finding(
                    str(service_md), 1,
                    "no wire-protocol op table found (a markdown table "
                    "whose first column header is 'op')",
                )
            else:
                line, table_ops = parsed
                if table_ops != ops:
                    missing = ops - table_ops
                    extra = table_ops - ops
                    parts = []
                    if missing:
                        parts.append(f"missing {_sorted(missing)}")
                    if extra:
                        parts.append(f"stale {_sorted(extra)}")
                    yield self.finding(
                        str(service_md), line,
                        "SERVICE.md op table drifted from protocol.OPS: "
                        + "; ".join(parts),
                    )

        api_md = project.doc("docs/API.md")
        client = project.module(_CLIENT)
        if api_md is not None and client is not None:
            parsed = _api_md_client_methods(
                api_md.read_text(encoding="utf-8")
            )
            if parsed is None:
                yield self.finding(
                    str(api_md), 1,
                    "no 'class ServiceClient' section found",
                )
            else:
                line, documented_methods = parsed
                wrappers = _client_call_ops(client)
                for op in sorted(ops):
                    methods = wrappers.get(op, [])
                    if not methods:
                        continue  # ops-surface reports the missing wrapper
                    if not any(
                        method in documented_methods for method in methods
                    ):
                        yield self.finding(
                            str(api_md), line,
                            f"ServiceClient section documents no wrapper "
                            f"for op {op!r} (expected one of: "
                            f"{_sorted(methods)})",
                        )


PROJECT_RULES = (
    OpsSurfaceRule(),
    OpsIdempotentRule(),
    DocsDriftRule(),
)
