"""``repro.analysis``: the dependency-free AST lint suite.

The service's correctness rests on invariants no type checker sees:
striped state is only mutated under its stripe lock, WAL bytes are
fsynced before an ack, checkpoint rolls keep the gen-write ->
CURRENT-flip -> WAL-truncate order, placement never keys on the salted
builtin ``hash()``, metric/span names come from one registry, and the
op tables in the protocol, server, client, cluster and docs all agree.
This package turns each of those into a checker over stdlib ``ast``
(no third-party dependency), wired to ``repro lint`` and CI.

Suppress a deliberate violation inline with a reason::

    handle.write(data)  # repro: noqa[durability-fsync] -- caller fsyncs

See ``docs/ANALYSIS.md`` for the rule catalog and how to add a rule.
"""

from repro.analysis.core import (
    PARSE_RULE,
    Checker,
    Finding,
    LintReport,
    ParseCache,
    Project,
    SourceFile,
    iter_python_files,
    lint_paths,
)
from repro.analysis.flow_rules import FLOW_RULES
from repro.analysis.project_rules import PROJECT_RULES
from repro.analysis.rules import FILE_RULES

#: every checker: per-file rules, project rules, then the
#: interprocedural flow rules -- frozen registration order
ALL_CHECKERS = tuple(FILE_RULES) + tuple(PROJECT_RULES) + \
    tuple(FLOW_RULES)

#: frozen rule ids, in registration order (tests pin this set)
RULE_IDS = tuple(checker.rule for checker in ALL_CHECKERS)


def lint(paths, rules=None, jobs=1) -> LintReport:
    """Run the full suite (or ``rules``) over ``paths``."""
    return lint_paths(paths, ALL_CHECKERS, rules=rules, jobs=jobs)


__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "FILE_RULES",
    "FLOW_RULES",
    "Finding",
    "LintReport",
    "PARSE_RULE",
    "PROJECT_RULES",
    "ParseCache",
    "Project",
    "RULE_IDS",
    "SourceFile",
    "iter_python_files",
    "lint",
    "lint_paths",
]
