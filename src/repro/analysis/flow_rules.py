"""The interprocedural rules built on :mod:`repro.analysis.flow`.

Four rules ride the call-graph + locks-held dataflow:

* ``deadlock-cycle`` -- cycles in the global lock-acquisition-order
  graph, annotated with the witness call path that establishes each
  edge.  A self-cycle means the same lock *token* (e.g. one stripe of
  a striped collection) is re-acquired while a sibling may be held --
  safe only under a frozen total order, which a suppression documents.
* ``blocking-under-lock`` -- fsync / socket / subprocess / ``sleep`` /
  ``join`` reachable while a *stripe or session* lock may be held.
  The WAL's deliberate fsync-before-ack is the canonical suppression.
* ``exception-escape`` -- every ``server.py`` / ``cluster.py``
  handler must provably convert non-``ServiceError`` exceptions into
  structured protocol errors (``error_response``) before the response
  is written: the ``decode_request`` call needs a ``ProtocolError``
  (or broader) conversion, and every dispatch call -- one that passes
  the decoded request onward or came out of an ``_ops`` table -- needs
  an enclosing ``except Exception`` conversion, unless every resolved
  callee is *total* (its own body is wrapped in one).
* ``resource-leak`` -- file handles / sockets opened on paths where
  no ``close`` / ``with`` postdominates and the handle never escapes
  the function (returned, stored, or passed on).

All four are over-approximations: an unresolved dynamic call is
assumed to reach every same-named project function, so a finding can
be spurious -- that is what per-site suppressions with reasons are
for.  The rules never crash on dispatch they cannot resolve.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Checker, Finding, Project, SourceFile
from repro.analysis.flow import (
    FlowAnalysis,
    FunctionInfo,
    flow_for,
    render_witness,
    _dotted,
)

__all__ = ["FLOW_RULES"]


def _is_stripe_or_session(token: str) -> bool:
    """Is this lock token a stripe lock or a session lock?

    Stripe locks guard the hot path (engine shards, session-manager
    slots); a session lock is held across whole ingest batches.
    Matched: ``Session.lock`` (or any ``*session*.lock``), any
    ``*Shard*.lock``, and locks drawn from striped collections
    (``..._locks`` / ``..._slot[i]``).
    """
    if "_locks" in token or "_slot" in token:
        return True
    parts = token.split(".")
    if parts[-1].lower() != "lock":
        return False
    head = parts[0].lower()
    if "shard" in head:
        return True
    return head == "session" or head.endswith("session") or \
        head.startswith("session") and "manager" not in head


class DeadlockCycleRule(Checker):
    rule = "deadlock-cycle"
    summary = ("no cycles in the global lock-acquisition-order graph "
               "(two threads taking opposite orders deadlock)")
    hint = ("break the cycle by releasing the first lock before taking "
            "the second, or impose one frozen total order everywhere "
            "and suppress with the order as the reason")
    project = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = flow_for(project)
        for cycle in analysis.lock_cycles():
            anchor = cycle[0]
            func = analysis.functions.get(anchor.function)
            if func is None:  # pragma: no cover - defensive
                continue
            if len(cycle) == 1 and anchor.held == anchor.acquired:
                message = (
                    f"lock token {anchor.acquired!r} may be re-acquired "
                    f"while a sibling is already held "
                    f"(in {func.label}); two threads taking stripes in "
                    "opposite orders deadlock"
                )
            else:
                order = " -> ".join(
                    [cycle[0].held] + [edge.acquired for edge in cycle]
                )
                paths = "; ".join(
                    f"{edge.held} -> {edge.acquired} via "
                    f"{render_witness(edge.witness, analysis)}"
                    for edge in cycle
                )
                message = (
                    f"lock-acquisition cycle {order} "
                    f"(witness: {paths})"
                )
            yield self.finding(func.source, anchor.line, message)


class BlockingUnderLockRule(Checker):
    rule = "blocking-under-lock"
    summary = ("no fsync/socket/subprocess/sleep/join while a stripe "
               "or session lock may be held")
    hint = ("move the blocking call outside the lock, or -- if the "
            "blocking is the point, like the WAL's fsync-before-ack -- "
            "suppress at the call site with the reason")
    project = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = flow_for(project)
        results: List[Tuple[str, int, Finding]] = []
        for qual in sorted(analysis.blocking):
            func = analysis.functions[qual]
            for call in analysis.blocking[qual]:
                held = analysis.held_at(qual, call.held)
                watched = sorted(
                    token for token in held
                    if _is_stripe_or_session(token)
                )
                if not watched:
                    continue
                token = watched[0]
                witness = held[token]
                if witness:
                    path = render_witness(
                        witness + ((qual, call.line),), analysis)
                    via = f" (path: {path})"
                else:
                    via = " (held in this function)"
                message = (
                    f"blocking {call.reason} call {call.dotted}() may "
                    f"run while {token} is held{via}"
                )
                results.append((
                    func.source.display, call.line,
                    self.finding(func.source, call.line, message),
                ))
        for _, _, finding in sorted(results, key=lambda r: (r[0], r[1])):
            yield finding


#: except-clause type names that cover every exception
_BROAD_TYPES = frozenset({"Exception", "BaseException"})
#: except-clause type names that cover protocol decode failures
_PROTO_TYPES = frozenset({
    "ProtocolError", "ServiceError", "ReproError",
}) | _BROAD_TYPES


def _handler_types(handler: ast.ExceptHandler) -> Set[str]:
    node = handler.type
    if node is None:
        return {"BaseException"}
    names: Set[str] = set()
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    for elt in elts:
        dotted = _dotted(elt)
        if dotted:
            names.add(dotted.split(".")[-1])
    return names


def _converts_to_error(handler: ast.ExceptHandler) -> bool:
    """Does the handler body produce a structured error response?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted and dotted.split(".")[-1] == "error_response":
                return True
    return False


def _is_total(func: FunctionInfo) -> bool:
    """Is the function's body wrapped in an Exception->error_response
    conversion at the top level (so no exception can escape it)?"""
    for stmt in func.node.body:
        if isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                if _handler_types(handler) & _BROAD_TYPES and \
                        _converts_to_error(handler):
                    return True
    return False


def _is_ops_lookup(value: ast.AST) -> bool:
    """``self._ops.get(op)`` / ``self._ops[op]`` style table lookups."""
    if isinstance(value, ast.Call) and isinstance(
            value.func, ast.Attribute) and value.func.attr == "get":
        value = value.func.value
    if isinstance(value, ast.Subscript):
        value = value.value
    dotted = _dotted(value)
    return bool(dotted) and dotted.split(".")[-1].endswith("_ops")


class ExceptionEscapeRule(Checker):
    rule = "exception-escape"
    summary = ("server.py/cluster.py handlers must convert every "
               "exception into a structured protocol error before the "
               "response is written")
    hint = ("wrap the dispatch in try/except Exception producing "
            "error_response(...), or make the callee total (its own "
            "body wrapped in that conversion)")
    project = True

    _FILES = frozenset({"server.py", "cluster.py"})

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = flow_for(project)
        results: List[Tuple[str, int, Finding]] = []
        for qual in sorted(analysis.functions):
            func = analysis.functions[qual]
            if func.source.name not in self._FILES:
                continue
            results.extend(self._check_function(func, analysis))
        for _, _, finding in sorted(results, key=lambda r: (r[0], r[1])):
            yield finding

    def _check_function(self, func: FunctionInfo, analysis: FlowAnalysis
                        ) -> List[Tuple[str, int, Finding]]:
        node = func.node
        request_vars: Set[str] = set()
        ops_vars: Set[str] = set()
        has_decode = False
        for child in ast.walk(node):
            if isinstance(child, ast.Assign) and len(child.targets) == 1 \
                    and isinstance(child.targets[0], ast.Name):
                name = child.targets[0].id
                value = child.value
                if isinstance(value, ast.Call):
                    dotted = _dotted(value.func) or ""
                    if dotted.split(".")[-1] == "decode_request":
                        request_vars.add(name)
                        has_decode = True
                if _is_ops_lookup(value):
                    ops_vars.add(name)
        if not has_decode and not ops_vars:
            return []

        out: List[Tuple[str, int, Finding]] = []

        def passes_request(call: ast.Call) -> bool:
            for arg in list(call.args) + [kw.value
                                          for kw in call.keywords]:
                if isinstance(arg, ast.Name) and arg.id in request_vars:
                    return True
            return False

        def dispatch_targets(call: ast.Call) -> Optional[List[
                FunctionInfo]]:
            """Resolved callees for a dispatch call, [] if unresolved,
            None if this is not a dispatch call at all."""
            f = call.func
            if isinstance(f, ast.Name):
                if f.id in ops_vars:
                    return []  # table-driven: unknowable statically
                if not passes_request(call):
                    return None
                if f.id in ("error_response", "encode_response"):
                    return None
                target = func.module.functions.get(f.id)
                return [target] if target is not None else []
            if isinstance(f, ast.Attribute):
                if not passes_request(call):
                    return None
                dotted = _dotted(f) or ""
                if dotted.startswith("self.") and func.cls is not None:
                    method = func.cls.method(f.attr)
                    return [method] if method is not None else []
                return []
            return None

        def calls_in(stmt: ast.AST) -> Iterator[ast.Call]:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Call):
                    yield child

        def check_stmts(stmts, exc_ok: bool, proto_ok: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.Try):
                    body_exc, body_proto = exc_ok, proto_ok
                    for handler in stmt.handlers:
                        types = _handler_types(handler)
                        converts = _converts_to_error(handler)
                        if types & _BROAD_TYPES and converts:
                            body_exc = True
                        if types & _PROTO_TYPES and converts:
                            body_proto = True
                    check_stmts(stmt.body, body_exc, body_proto)
                    for handler in stmt.handlers:
                        check_stmts(handler.body, exc_ok, proto_ok)
                    check_stmts(stmt.orelse, exc_ok, proto_ok)
                    check_stmts(stmt.finalbody, exc_ok, proto_ok)
                    continue
                nested = [s for s in ast.iter_child_nodes(stmt)
                          if isinstance(s, ast.stmt)]
                if isinstance(stmt, (ast.If, ast.For, ast.While,
                                     ast.With, ast.AsyncWith,
                                     ast.AsyncFor)):
                    header_calls = [
                        call for call in calls_in(stmt)
                        if not any(call in set(calls_in(s))
                                   for s in nested)
                    ]
                    self._check_calls(func, header_calls, exc_ok,
                                      proto_ok, dispatch_targets, out)
                    if isinstance(stmt, (ast.With, ast.AsyncWith)):
                        check_stmts(stmt.body, exc_ok, proto_ok)
                    else:
                        check_stmts(stmt.body, exc_ok, proto_ok)
                        check_stmts(getattr(stmt, "orelse", []),
                                    exc_ok, proto_ok)
                    continue
                self._check_calls(func, list(calls_in(stmt)), exc_ok,
                                  proto_ok, dispatch_targets, out)

        check_stmts(node.body, False, False)
        return out

    def _check_calls(self, func, calls, exc_ok, proto_ok,
                     dispatch_targets, out) -> None:
        for call in calls:
            dotted = _dotted(call.func) or ""
            tail = dotted.split(".")[-1]
            if tail == "decode_request" and not proto_ok:
                out.append((
                    func.source.display, call.lineno,
                    self.finding(
                        func.source, call.lineno,
                        f"{func.label} decodes a request without a "
                        "ProtocolError -> error_response conversion "
                        "around it",
                    ),
                ))
                continue
            targets = dispatch_targets(call)
            if targets is None or exc_ok:
                continue
            if targets and all(_is_total(t) for t in targets):
                continue
            out.append((
                func.source.display, call.lineno,
                self.finding(
                    func.source, call.lineno,
                    f"{func.label} dispatches {dotted or 'a handler'}"
                    "(...) outside any except-Exception -> "
                    "error_response conversion; a raising handler "
                    "would escape as a protocol-less failure",
                ),
            ))


#: calls that open an OS resource needing an explicit close
_OPENER_TAILS = frozenset({
    "open", "fdopen", "create_connection", "create_server",
})


def _is_opener(call: ast.Call) -> bool:
    dotted = _dotted(call.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    tail = parts[-1]
    if tail == "socket" and parts[0] == "socket":
        return True  # socket.socket(...)
    if tail not in _OPENER_TAILS:
        return False
    if tail == "open" and len(parts) > 1 and parts[0] not in (
            "io", "os", "gzip", "bz2", "lzma"):
        # path.open() returns a handle too -- keep it; but
        # webbrowser.open etc. do not.  Only obvious file-ish roots.
        return parts[-2] in ("path", "p", "file") or \
            parts[0] in ("io", "os")
    return True


class ResourceLeakRule(Checker):
    rule = "resource-leak"
    summary = ("file handles/sockets are closed on every path: use "
               "with, close in finally, or hand the handle off")
    hint = ("wrap the open in a with-block (or contextlib.closing), "
            "close it in a finally, or store/return it so an owner "
            "with a close path exists")
    project = False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for func in self._functions(source.tree):
            yield from self._check_function(source, func)

    @staticmethod
    def _functions(tree: ast.Module):
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_function(self, source: SourceFile,
                        func: ast.AST) -> Iterator[Finding]:
        opened: Dict[str, Tuple[int, str]] = {}
        released: Set[str] = set()
        escaped: Set[str] = set()
        bare: List[Tuple[int, str]] = []

        own: List[ast.AST] = []
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            own.append(node)
            stack.extend(ast.iter_child_nodes(node))

        with_exprs: Set[int] = set()
        for node in own:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_exprs.add(id(item.context_expr))
                    if isinstance(item.context_expr, ast.Name):
                        released.add(item.context_expr.id)

        arg_of_call: Set[int] = set()
        for node in own:
            if isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    arg_of_call.add(id(arg))
                    if isinstance(arg, ast.Name):
                        escaped.add(arg.id)
                if isinstance(node.func, ast.Attribute):
                    recv = node.func.value
                    if isinstance(recv, ast.Name):
                        if node.func.attr in ("close", "shutdown",
                                              "detach"):
                            released.add(recv.id)

        assigned_values: Set[int] = set()
        for node in own:
            if isinstance(node, ast.Assign):
                assigned_values.add(id(node.value))
                if len(node.targets) == 1 and isinstance(
                        node.targets[0], ast.Name) and isinstance(
                        node.value, ast.Call) and _is_opener(node.value):
                    name = node.targets[0].id
                    opened[name] = (node.value.lineno,
                                    _dotted(node.value.func) or "open")
                elif isinstance(node.value, ast.Name):
                    # aliased or stored somewhere: ownership moved
                    escaped.add(node.value.id)
                else:
                    for part in ast.walk(node.value):
                        if isinstance(part, ast.Name):
                            escaped.add(part.id)
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        # self.x = fh / container[k] = fh: stored
                        for part in ast.walk(node.value):
                            if isinstance(part, ast.Name):
                                escaped.add(part.id)
            elif isinstance(node, (ast.Return, ast.Yield,
                                   ast.YieldFrom)):
                value = node.value
                if value is not None:
                    for part in ast.walk(value):
                        if isinstance(part, ast.Name):
                            escaped.add(part.id)
            elif isinstance(node, ast.Expr) and isinstance(
                    node.value, ast.Call) and _is_opener(node.value):
                if id(node.value) not in with_exprs:
                    bare.append((node.value.lineno,
                                 _dotted(node.value.func) or "open"))

        for line, dotted in bare:
            yield self.finding(
                source, line,
                f"{dotted}(...) opens a handle that is never bound, "
                "closed or used -- it leaks immediately",
            )
        for name in sorted(opened):
            line, dotted = opened[name]
            if name in released or name in escaped:
                continue
            yield self.finding(
                source, line,
                f"{dotted}(...) result {name!r} has no close/with on "
                "any path out of this function and never escapes it",
            )


FLOW_RULES = (
    DeadlockCycleRule(),
    BlockingUnderLockRule(),
    ExceptionEscapeRule(),
    ResourceLeakRule(),
)
