"""Per-file checkers: concurrency, durability, nondeterminism, names.

Each checker encodes one invariant the service's correctness argument
leans on; the rule ids are frozen (tests pin them) so suppressions and
CI configuration never rot when messages are reworded.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Checker, Finding, SourceFile

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def _call_name(node: ast.Call) -> Optional[str]:
    """The terminal identifier of a call: ``foo(...)`` / ``x.y.foo(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    """``self._shards`` -> ``"self._shards"`` (None for non-name chains)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every function/method in the module, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_str_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


# ---------------------------------------------------------------------------
# nondeterminism bans
# ---------------------------------------------------------------------------


class NondetHashRule(Checker):
    """The builtin ``hash()`` is salted per process (PYTHONHASHSEED):
    any routing or persistence decision keyed on it scatters across
    restarts.  The whole tree is in scope -- there is no legitimate
    use of ``hash()`` in this codebase outside ``__hash__`` protocol
    plumbing, which does not call the builtin."""

    rule = "nondet-hash"
    summary = "builtin hash() in a routing/persistence path"
    hint = (
        "use zlib.crc32(name.encode('utf-8')) for strings (see "
        "cluster.session_worker) or the int key directly (uid % n)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    source, node.lineno,
                    "builtin hash() is salted per process; any placement "
                    "or key derived from it changes across restarts",
                    col=node.col_offset,
                )


class NondetTimeRule(Checker):
    """``time.time()`` is wall-clock: NTP steps and DST make latency
    intervals measured with it negative or wildly wrong."""

    rule = "nondet-time"
    summary = "time.time() used where an interval/latency is measured"
    hint = (
        "use time.perf_counter() for latencies and time.monotonic() "
        "for deadlines; wall-clock timestamps need an explicit "
        "suppression with a reason"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        bare_time_imported = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "time"
            and any(alias.name == "time" for alias in node.names)
            for node in source.tree.body
        )
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            hit = (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ) or (
                bare_time_imported
                and isinstance(func, ast.Name)
                and func.id == "time"
            )
            if hit:
                yield self.finding(
                    source, node.lineno,
                    "time.time() is wall-clock, not monotonic",
                    col=node.col_offset,
                )


class MutableDefaultRule(Checker):
    """A mutable default argument is shared across every call."""

    rule = "mutable-default"
    summary = "mutable default argument"
    hint = "default to None and build the container inside the function"

    _MUTABLE_CALLS = {
        "list", "dict", "set", "bytearray",
        "OrderedDict", "defaultdict", "Counter", "deque",
    }

    def _is_mutable(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            return name in self._MUTABLE_CALLS
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for func in _functions(source.tree):
            defaults = list(func.args.defaults)
            defaults.extend(func.args.kw_defaults)
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        source, default.lineno,
                        f"function {func.name!r} has a mutable default "
                        "argument, shared across all calls",
                        col=default.col_offset,
                    )


class BroadExceptRule(Checker):
    """Bare ``except:`` (catches KeyboardInterrupt/SystemExit) and
    ``except Exception`` blocks that silently swallow (body is only
    ``pass``/``continue``/``...``) hide real failures."""

    rule = "broad-except"
    summary = "bare except, or a broad except that swallows silently"
    hint = (
        "catch the narrowest type that can actually occur; a deliberate "
        "broad catch must re-raise, record, or carry a "
        "'# repro: noqa[broad-except] -- reason'"
    )

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._BROAD
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(elt) for elt in node.elts)
        return False

    @staticmethod
    def _is_silent(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or ...
            return False
        return True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    source, node.lineno,
                    "bare 'except:' catches KeyboardInterrupt and "
                    "SystemExit too",
                    col=node.col_offset,
                )
            elif self._is_broad(node.type) and self._is_silent(node.body):
                yield self.finding(
                    source, node.lineno,
                    "broad except silently swallows the failure "
                    "(body is only pass/continue)",
                    col=node.col_offset,
                )


# ---------------------------------------------------------------------------
# lock discipline over striped shared state
# ---------------------------------------------------------------------------

#: files hosting lock-striped shared state
_STRIPED_FILES = {"engine.py", "sessions.py", "cluster.py"}

#: attributes of self that are striped shared state
_SHARED_ROOTS = {"_shards", "_tables", "_locks", "_entries"}

#: methods of self that hand out a stripe (their results are shared)
_STRIPE_DERIVERS = {"_shard_for", "_slot", "_entry"}

#: container methods that mutate their receiver
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "discard", "remove",
    "pop", "popitem", "clear", "update", "setdefault", "move_to_end",
}


def _is_lock_expr(node: ast.AST) -> bool:
    """``with <this>:`` counts as acquiring a lock."""
    if isinstance(node, ast.Name):
        return "lock" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "lock" in node.attr.lower()
    if isinstance(node, ast.Call):
        return _is_lock_expr(node.func)
    return False


def _is_exitstack(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node) in {"ExitStack", "contextlib.ExitStack"}
    )


class _LockScan:
    """One function's scan state for :class:`LockDisciplineRule`."""

    def __init__(self, checker: "LockDisciplineRule",
                 source: SourceFile) -> None:
        self.checker = checker
        self.source = source
        self.tainted: Set[str] = set()
        self.findings: List[Finding] = []

    # -- shared-state recognition ---------------------------------------
    def is_shared(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in _SHARED_ROOTS
            ):
                return True
            return self.is_shared(node.value)
        if isinstance(node, ast.Subscript):
            return self.is_shared(node.value)
        return False

    def expr_taints(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        for sub in ast.walk(node):
            if self.is_shared(sub):
                return True
            if (
                isinstance(sub, ast.Call)
                and _call_name(sub) in _STRIPE_DERIVERS
            ):
                return True
        return False

    def taint_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.taint_target(elt)
        elif isinstance(target, ast.Starred):
            self.taint_target(target.value)

    # -- mutation detection ----------------------------------------------
    def flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.checker.finding(
                self.source, node.lineno,
                f"{what} of striped shared state outside a lock",
                col=getattr(node, "col_offset", 0),
            )
        )

    def check_simple(self, stmt: ast.stmt, locked: bool) -> None:
        """Flag unlocked mutations inside one simple statement."""
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and self.is_shared(target):
                    if not locked:
                        self.flag(target, "write")
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if self.is_shared(target) and not locked:
                    self.flag(target, "deletion")
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and self.is_shared(node.func.value)
                and not locked
            ):
                self.flag(node, f"{node.func.attr}()")

    # -- statement walk ----------------------------------------------------
    def visit_block(self, body: Sequence[ast.stmt], locked: bool) -> None:
        for stmt in body:
            self.visit(stmt, locked)

    def visit(self, stmt: ast.stmt, locked: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are scanned as their own functions
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = locked
            stack_lock = False
            for item in stmt.items:
                if _is_lock_expr(item.context_expr):
                    inner = True
                if _is_exitstack(item.context_expr):
                    # ``stack.enter_context(x.lock)`` in the body is the
                    # frozen-order all-stripes idiom (engine.stats)
                    stack_lock = any(
                        isinstance(node, ast.Call)
                        and _call_name(node) == "enter_context"
                        and any(
                            _is_lock_expr(arg) for arg in node.args
                        )
                        for node in ast.walk(stmt)
                    )
                if self.expr_taints(item.context_expr) and (
                    item.optional_vars is not None
                ):
                    self.taint_target(item.optional_vars)
            self.visit_block(stmt.body, inner or stack_lock)
            return
        if isinstance(stmt, ast.For):
            if self.expr_taints(stmt.iter):
                self.taint_target(stmt.target)
            self.visit_block(stmt.body, locked)
            self.visit_block(stmt.orelse, locked)
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self.visit_block(stmt.body, locked)
            self.visit_block(stmt.orelse, locked)
            return
        if isinstance(stmt, ast.Try):
            self.visit_block(stmt.body, locked)
            for handler in stmt.handlers:
                self.visit_block(handler.body, locked)
            self.visit_block(stmt.orelse, locked)
            self.visit_block(stmt.finalbody, locked)
            return
        # simple statement: taint first (so `x = self._slot(n)` then a
        # later use of x is tracked), then look for unlocked mutations
        if isinstance(stmt, ast.Assign) and self.expr_taints(stmt.value):
            for target in stmt.targets:
                self.taint_target(target)
        if isinstance(stmt, ast.AnnAssign) and self.expr_taints(stmt.value):
            self.taint_target(stmt.target)
        self.check_simple(stmt, locked)


class LockDisciplineRule(Checker):
    """In the striped modules, every mutation of striped shared state
    (``self._shards[...]``/``self._tables[...]``/stripe objects handed
    out by ``_shard_for``/``_slot``) must happen under a ``with
    <lock>`` block.  ``__init__`` is exempt: construction
    happens-before publication."""

    rule = "lock-discipline"
    summary = "mutation of striped shared state outside its lock"
    hint = (
        "wrap the mutation in 'with <stripe>.lock:' (or enter_context "
        "over all stripes in frozen order, as engine.stats does)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.name not in _STRIPED_FILES:
            return
        for func in _functions(source.tree):
            if func.name == "__init__":
                continue
            scan = _LockScan(self, source)
            scan.visit_block(func.body, locked=False)
            yield from scan.findings


class LockOrderRule(Checker):
    """Nested acquisition of two stripe locks from the same striped
    collection (``with self._shards[i].lock: with self._shards[j].lock``)
    deadlocks as soon as two threads pick opposite orders."""

    rule = "lock-order"
    summary = "nested stripe-lock acquisition in non-frozen order"
    hint = (
        "hold one stripe at a time, or take every stripe in index "
        "order via ExitStack (engine.stats) so all holders agree"
    )

    @staticmethod
    def _stripe_base(node: ast.AST) -> Optional[str]:
        """``self._shards[i].lock`` -> ``"self._shards"``."""
        if (
            isinstance(node, ast.Attribute)
            and "lock" in node.attr.lower()
            and isinstance(node.value, ast.Subscript)
        ):
            return _dotted(node.value.value)
        return None

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.name not in _STRIPED_FILES:
            return
        findings: List[Finding] = []

        def visit(body: Sequence[ast.stmt], held: Tuple[str, ...]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    acquired = list(held)
                    for item in stmt.items:
                        base = self._stripe_base(item.context_expr)
                        if base is None:
                            continue
                        if base in acquired:
                            findings.append(
                                self.finding(
                                    source, item.context_expr.lineno,
                                    f"acquires a second stripe lock from "
                                    f"{base} while already holding one",
                                    col=item.context_expr.col_offset,
                                )
                            )
                        acquired.append(base)
                    visit(stmt.body, tuple(acquired))
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    visit(stmt.body, ())
                else:
                    for block in ("body", "orelse", "finalbody"):
                        inner = getattr(stmt, block, None)
                        if inner:
                            visit(inner, held)
                    for handler in getattr(stmt, "handlers", []) or []:
                        visit(handler.body, held)

        visit(source.tree.body, ())
        yield from findings


# ---------------------------------------------------------------------------
# durability ordering
# ---------------------------------------------------------------------------

_DURABLE_FILES = {"wal.py", "checkpoint.py"}

#: calls that put bytes into a file the durability story depends on
_WRITE_ATTRS = {"write", "writelines", "write_text"}

#: calls that make those bytes survive power loss
_SYNC_NAMES = {"fsync", "fsync_file", "fsync_dir"}


class DurabilityFsyncRule(Checker):
    """In the durability modules, a function that writes to a handle
    must also fsync (directly or via the ``fsync_file``/``fsync_dir``
    helpers) before it can possibly acknowledge -- a flush alone only
    survives process death, not power loss."""

    rule = "durability-fsync"
    summary = "durable write without an fsync in the same function"
    hint = (
        "fsync the handle (os.fsync) or the staged file/directory "
        "(fsync_file/fsync_dir) before returning; if a caller owns "
        "the fsync, say so in a noqa reason"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.name not in _DURABLE_FILES:
            return
        for func in _functions(source.tree):
            first_write: Optional[ast.Call] = None
            synced = False
            for node in _own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if name in _SYNC_NAMES:
                    synced = True
                is_write = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _WRITE_ATTRS
                ) or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "dump"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "json"
                )
                if is_write and first_write is None:
                    first_write = node
            if first_write is not None and not synced:
                yield self.finding(
                    source, first_write.lineno,
                    f"{func.name}() writes to a durable file but never "
                    "fsyncs it",
                    col=first_write.col_offset,
                )


class DurabilityOrderRule(Checker):
    """The crash-safety argument of a checkpoint roll is the order:
    write the new generation, flip ``CURRENT``, only then truncate the
    WAL.  Any function touching two of those steps must keep them in
    that order."""

    rule = "durability-order"
    summary = "gen-write / CURRENT-flip / WAL-truncate out of order"
    hint = (
        "write the checkpoint generation first, flip CURRENT second, "
        "truncate the WAL last -- a crash between any two steps must "
        "leave a complete checkpoint plus a covering WAL"
    )

    _GEN_CALLS = {"checkpoint_session", "_write_generation"}

    @staticmethod
    def _is_current_flip(node: ast.Call) -> bool:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "replace"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os"
        ):
            return False
        for arg in node.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name) and sub.id == "_CURRENT":
                    return True
                if (
                    isinstance(sub, ast.Constant)
                    and sub.value == "CURRENT"
                ):
                    return True
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.name not in _DURABLE_FILES:
            return
        for func in _functions(source.tree):
            gen = flip = trunc = None
            for node in _own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if name in self._GEN_CALLS and gen is None:
                    gen = node
                if self._is_current_flip(node) and flip is None:
                    flip = node
                if name == "truncate_to_base" and trunc is None:
                    trunc = node
            stages = [
                ("generation write", gen),
                ("CURRENT flip", flip),
                ("WAL truncation", trunc),
            ]
            present = [(label, node) for label, node in stages
                       if node is not None]
            for (before, first), (after, second) in zip(
                present, present[1:]
            ):
                if first.lineno > second.lineno:
                    yield self.finding(
                        source, second.lineno,
                        f"{func.name}() performs the {after} before the "
                        f"{before}; a crash in between loses "
                        "acknowledged state",
                        col=second.col_offset,
                    )


# ---------------------------------------------------------------------------
# metric & span name registry
# ---------------------------------------------------------------------------


class MetricNamesRule(Checker):
    """Series names, span names, and the ``stage`` label (which doubles
    as a span name) must be constants imported from
    :mod:`repro.obs.names`, never inline string literals -- a typo'd
    literal mints a bogus series that dashboards watch forever."""

    rule = "metric-names"
    summary = "inline metric/span name literal (use repro.obs.names)"
    hint = (
        "import the constant from repro.obs.names (add it there if the "
        "series is genuinely new)"
    )

    _INSTRUMENT_ATTRS = {"histogram", "counter"}
    _SPAN_ATTRS = {"add_span"}

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.path.as_posix().endswith("repro/obs/names.py"):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in self._INSTRUMENT_ATTRS:
                if node.args and _is_str_constant(node.args[0]):
                    yield self.finding(
                        source, node.lineno,
                        f"series name {node.args[0].value!r} is an inline "
                        f"literal at a {func.attr}() call site",
                        col=node.col_offset,
                    )
                for keyword in node.keywords:
                    if keyword.arg == "stage" and _is_str_constant(
                        keyword.value
                    ):
                        yield self.finding(
                            source, node.lineno,
                            f"stage label {keyword.value.value!r} is an "
                            "inline literal (stage values double as span "
                            "names)",
                            col=node.col_offset,
                        )
            elif func.attr in self._SPAN_ATTRS:
                if node.args and _is_str_constant(node.args[0]):
                    yield self.finding(
                        source, node.lineno,
                        f"span name {node.args[0].value!r} is an inline "
                        "literal at an add_span() call site",
                        col=node.col_offset,
                    )


# ---------------------------------------------------------------------------
# failpoint name registry
# ---------------------------------------------------------------------------


class FailpointNamesRule(Checker):
    """Every ``FAILPOINTS.hit(...)`` site must pass a string literal
    from the frozen :data:`repro.faults.FAILPOINT_NAMES` catalog -- a
    computed or unregistered name is a crash point the failpoint test
    matrix can never arm, so it silently escapes the crash sweep."""

    rule = "failpoint-names"
    summary = "FAILPOINTS.hit name not in the frozen catalog"
    hint = (
        "pass a string literal registered in "
        "repro.faults.FAILPOINT_NAMES (add it there first; the "
        "failpoint matrix in tests/test_faults.py sweeps that table)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        from repro.faults import FAILPOINT_NAMES

        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "hit"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "FAILPOINTS"
            ):
                continue
            if not node.args or not _is_str_constant(node.args[0]):
                yield self.finding(
                    source, node.lineno,
                    "FAILPOINTS.hit() with a non-literal name; the "
                    "crash matrix cannot enumerate it",
                    col=node.col_offset,
                )
                continue
            name = node.args[0].value
            if name not in FAILPOINT_NAMES:
                yield self.finding(
                    source, node.lineno,
                    f"failpoint {name!r} is not registered in "
                    "repro.faults.FAILPOINT_NAMES",
                    col=node.col_offset,
                )


FILE_RULES = (
    LockDisciplineRule(),
    LockOrderRule(),
    DurabilityFsyncRule(),
    DurabilityOrderRule(),
    NondetHashRule(),
    NondetTimeRule(),
    MutableDefaultRule(),
    BroadExceptRule(),
    MetricNamesRule(),
    FailpointNamesRule(),
)
