"""Interprocedural flow analysis: call graph + locks-held dataflow.

The per-file rules in :mod:`repro.analysis.rules` see one function at
a time, but the service's scariest failure modes are interprocedural:
a stripe lock held in ``engine.py`` while a callee in ``wal.py``
blocks on ``os.fsync``, or a lock-acquisition cycle spanning modules.
This module builds, from a :class:`repro.analysis.core.Project` and
stdlib ``ast`` alone:

* a **call graph** -- ``self.method`` resolved through a light type
  inference (parameter/attribute/return annotations, constructor
  assignments, container element types), module-level functions,
  cross-module ``repro.*`` imports, callback registrations
  (``obj.hook = self._impl`` makes ``obj.hook(...)`` call ``_impl``),
  and an explicit **may-call over-approximation** for anything left:
  an unresolved ``recv.name(...)`` may call every project function
  named ``name`` (or ``_name``);
* a **locks-held-at-point dataflow** -- ``with <lock>:`` contexts
  (and ``ExitStack.enter_context(<lock>)``) are tracked lexically and
  propagated through the call graph to a fixpoint, so every function
  knows which lock *tokens* may be held on entry, with a witness call
  path for each;
* the **lock-acquisition-order graph** -- an edge ``A -> B`` whenever
  ``B`` is acquired while ``A`` may be held -- plus its cycles, and
  the set of **blocking calls** (fsync / socket / subprocess / sleep /
  join) annotated with the locks held around them.

Lock *tokens* name the lock by owning class and attribute
(``Session.lock``, ``_Shard.lock``, ``WriteAheadLog.lock``); locks
pulled out of striped collections keep the collection's identity
(``SessionManager._locks``, ``SessionManager._slot[0]``).  Two
acquisitions of the same token are assumed to be *potentially* the
same (or sibling) lock -- exactly the over-approximation a deadlock
check wants.

Everything here is an over-approximation by design: the rules built
on top (:mod:`repro.analysis.flow_rules`) must never crash on dynamic
dispatch they cannot resolve, and a missed edge is worse than a
spurious one that a suppression can document.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Project, SourceFile

__all__ = [
    "BlockingCall",
    "CallSite",
    "ClassInfo",
    "FlowAnalysis",
    "FunctionInfo",
    "LockAcquisition",
    "LockEdge",
    "flow_for",
]

#: sentinel: a receiver/type that is definitely *not* a project class
#: (builtin, stdlib, literal) -- calls through it get no edges at all
EXTERNAL = "<external>"

#: builtins and typing names that resolve straight to EXTERNAL
_EXTERNAL_NAMES = frozenset({
    "int", "float", "str", "bytes", "bytearray", "bool", "object",
    "dict", "list", "set", "frozenset", "tuple", "type", "bytes",
    "Exception", "BaseException", "ValueError", "TypeError",
    "KeyError", "OSError", "RuntimeError", "StopIteration",
    "Any", "Callable", "Optional", "Union", "None",
})

#: builtin callables whose results we either know or ignore
_EXTERNAL_CALLS = frozenset({
    "open", "print", "len", "sorted", "min", "max", "sum", "abs",
    "range", "enumerate", "zip", "map", "filter", "repr", "str",
    "int", "float", "bool", "bytes", "list", "dict", "set", "tuple",
    "frozenset", "isinstance", "issubclass", "getattr", "setattr",
    "hasattr", "iter", "next", "vars", "dir", "id", "hash", "divmod",
    "round", "format", "any", "all", "reversed", "super",
})

#: subscripted annotation heads treated as containers of their value type
_CONTAINER_HEADS = frozenset({
    "List", "Sequence", "Iterable", "Iterator", "MutableSequence",
    "Set", "FrozenSet", "MutableSet", "Deque", "deque",
    "OrderedDict", "defaultdict", "Counter",
    "Dict", "Mapping", "MutableMapping",
})

#: container methods that hand back an *element* of the container
_ELEM_METHODS = frozenset({"get", "pop", "setdefault"})

#: blocking-call terminal names that need no receiver heuristics
_BLOCKING_SIMPLE = {
    "fsync": "fsync",
    "fsync_file": "fsync",
    "fsync_dir": "fsync",
    "sleep": "sleep",
    "create_connection": "socket",
    "create_server": "socket",
    "accept": "socket",
    "recv": "socket",
    "recvfrom": "socket",
    "recv_into": "socket",
    "sendall": "socket",
    "connect": "socket",
    "select": "socket",
}

#: subprocess entry points (require the ``subprocess.`` root)
_BLOCKING_SUBPROCESS = frozenset({
    "run", "call", "check_call", "check_output", "Popen",
})

#: receiver name hints that make ``.join()`` / ``.wait()`` a thread op
_THREADISH = frozenset({
    "process", "thread", "proc", "worker", "checkpointer", "child",
})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class _Container:
    """A container whose *elements* have the given type."""

    elem: object  # ClassInfo | EXTERNAL | None


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qual: str             # "module.Class.method" / "module.func"
    name: str
    module: "_ModuleIndex"
    source: SourceFile
    node: ast.AST         # FunctionDef | AsyncFunctionDef
    cls: Optional["ClassInfo"] = None
    return_type: object = None  # resolved lazily

    @property
    def label(self) -> str:
        """Short display name: last module component + qualname."""
        tail = self.qual.split(".")
        keep = 3 if self.cls is not None else 2
        return ".".join(tail[-keep:])


@dataclass
class ClassInfo:
    """One class: its methods, attribute types, and bases."""

    name: str
    qual: str
    module: "_ModuleIndex"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_annotations: Dict[str, ast.AST] = field(default_factory=dict)
    attr_types: Dict[str, object] = field(default_factory=dict)
    bases: List["ClassInfo"] = field(default_factory=list)
    base_names: List[str] = field(default_factory=list)

    def method(self, name: str) -> Optional[FunctionInfo]:
        """Resolve ``name`` through this class then its project bases."""
        seen: Set[str] = set()
        stack: List[ClassInfo] = [self]
        while stack:
            cls = stack.pop(0)
            if cls.qual in seen:
                continue
            seen.add(cls.qual)
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.bases)
        return None

    def attr_type(self, name: str) -> object:
        seen: Set[str] = set()
        stack: List[ClassInfo] = [self]
        while stack:
            cls = stack.pop(0)
            if cls.qual in seen:
                continue
            seen.add(cls.qual)
            if name in cls.attr_types:
                return cls.attr_types[name]
            stack.extend(cls.bases)
        return None


class _ModuleIndex:
    """One parsed module: functions, classes, imports, module vars."""

    def __init__(self, name: str, source: SourceFile) -> None:
        self.name = name
        self.source = source
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: ``import x.y as z`` -> {"z": "x.y"}
        self.imports: Dict[str, str] = {}
        #: ``from x import y as w`` -> {"w": ("x", "y")}
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: module-level variable types (resolved lazily)
        self.var_types: Dict[str, object] = {}
        self.var_values: Dict[str, ast.AST] = {}


#: a call-path hop: (function qual, line of the call site)
Hop = Tuple[str, int]


@dataclass
class CallSite:
    """One call expression, with resolution and locks held around it."""

    caller: str
    line: int
    dotted: Optional[str]
    targets: Tuple[str, ...]   # callee quals (empty for external calls)
    kind: str                  # "direct" | "hook" | "may" | "external"
    held: Tuple[str, ...]      # lock tokens held lexically at the site


@dataclass
class LockAcquisition:
    """One ``with <lock>:`` (or ``enter_context(<lock>)``) site."""

    function: str
    token: str
    line: int
    held: Tuple[str, ...]      # tokens already held lexically
    via_enter_context: bool = False
    in_loop: bool = False


@dataclass
class BlockingCall:
    """One fsync/socket/subprocess/sleep/join call site."""

    function: str
    line: int
    dotted: str
    reason: str                # "fsync" | "socket" | "subprocess" | ...
    held: Tuple[str, ...]      # tokens held lexically at the site


@dataclass
class LockEdge:
    """``acquired`` taken while ``held`` may be held; one witness path."""

    held: str
    acquired: str
    function: str              # function containing the acquisition
    line: int
    witness: Tuple[Hop, ...]   # call path establishing ``held``


class FlowAnalysis:
    """The project-wide call graph plus the locks-held dataflow."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.modules: Dict[str, _ModuleIndex] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: every function sharing a bare name (for may-call matching)
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        #: class qual -> direct project subclasses (for CHA dispatch)
        self._subclasses: Dict[str, List[ClassInfo]] = {}
        #: ``obj.attr = self._impl`` registrations: attr -> impl quals
        self.callbacks: Dict[str, List[str]] = {}
        self.call_sites: Dict[str, List[CallSite]] = {}
        self.acquisitions: Dict[str, List[LockAcquisition]] = {}
        self.blocking: Dict[str, List[BlockingCall]] = {}
        #: fixpoint result: function -> {token: witness path}
        self.entry_held: Dict[str, Dict[str, Tuple[Hop, ...]]] = {}
        self.lock_edges: List[LockEdge] = []
        self._build()

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    @staticmethod
    def _module_name(source: SourceFile) -> str:
        posix = source.path.as_posix()
        parts = posix.split("/")
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        else:
            parts = parts[-1:]
        parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
        if parts[-1] == "__init__":
            parts = parts[:-1] or ["__init__"]
        return ".".join(parts)

    def _index_module(self, source: SourceFile) -> None:
        name = self._module_name(source)
        module = _ModuleIndex(name, source)
        # last one wins on collisions (fixture trees with repeated stems)
        self.modules[name] = module
        for stmt in source.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    module.imports[alias.asname or
                                   alias.name.split(".")[0]] = alias.name
            elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    module.from_imports[alias.asname or alias.name] = (
                        stmt.module, alias.name
                    )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    module.var_values[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    module.var_values.setdefault(
                        stmt.target.id, stmt.annotation
                    )

    def _add_function(self, module: _ModuleIndex, node: ast.AST,
                      cls: Optional[ClassInfo]) -> FunctionInfo:
        if cls is not None:
            qual = f"{module.name}.{cls.name}.{node.name}"
        else:
            qual = f"{module.name}.{node.name}"
        info = FunctionInfo(qual=qual, name=node.name, module=module,
                            source=module.source, node=node, cls=cls)
        self.functions[qual] = info
        self._by_name.setdefault(node.name, []).append(info)
        if cls is not None:
            cls.methods[node.name] = info
        else:
            module.functions[node.name] = info
        # nested defs are indexed too (reachable via may-call by name),
        # but analysed with an empty entry context of their own
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_qual = f"{qual}.{child.name}"
                if nested_qual not in self.functions:
                    nested = FunctionInfo(
                        qual=nested_qual, name=child.name, module=module,
                        source=module.source, node=child, cls=cls,
                    )
                    self.functions[nested_qual] = nested
                    self._by_name.setdefault(child.name, []).append(nested)
        return info

    def _index_class(self, module: _ModuleIndex, node: ast.ClassDef) -> None:
        cls = ClassInfo(name=node.name, qual=f"{module.name}.{node.name}",
                        module=module, node=node)
        cls.base_names = [b for b in
                          (_dotted(base) for base in node.bases) if b]
        module.classes[node.name] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, cls=cls)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                cls.attr_annotations[stmt.target.id] = stmt.annotation

    # ------------------------------------------------------------------
    # name / type resolution
    # ------------------------------------------------------------------
    def _lookup_module(self, dotted: str) -> Optional[_ModuleIndex]:
        if dotted in self.modules:
            return self.modules[dotted]
        # ``repro.service.wal`` indexed, import said ``service.wal`` --
        # or a fixture tree importing bare stems
        for name, module in self.modules.items():
            if name.endswith("." + dotted):
                return module
        tail = dotted.split(".")[-1]
        for name, module in self.modules.items():
            if name.split(".")[-1] == tail:
                return module
        return None

    def _lookup_class(self, name: str,
                      module: _ModuleIndex) -> Optional[ClassInfo]:
        if name in module.classes:
            return module.classes[name]
        entry = module.from_imports.get(name)
        if entry is not None:
            target = self._lookup_module(entry[0])
            if target is not None:
                return target.classes.get(entry[1])
        return None

    def _resolve_annotation(self, node: Optional[ast.AST],
                            module: _ModuleIndex) -> object:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Name):
            if node.id in _EXTERNAL_NAMES:
                return EXTERNAL
            cls = self._lookup_class(node.id, module)
            if cls is not None:
                return cls
            return None
        if isinstance(node, ast.Attribute):
            # threading.Lock, socket.socket, pathlib.Path... -- if the
            # chain resolves to a project class keep it, else external
            dotted = _dotted(node)
            if dotted is not None:
                root = dotted.split(".")[0]
                target = module.imports.get(root)
                if target is not None:
                    owner = self._lookup_module(target)
                    if owner is not None:
                        return owner.classes.get(dotted.split(".")[-1])
            return EXTERNAL
        if isinstance(node, ast.Subscript):
            head = _dotted(node.value)
            if head is None:
                return None
            head = head.split(".")[-1]
            inner = node.slice
            if isinstance(inner, ast.Index):  # pragma: no cover - py38
                inner = inner.value
            if head == "Optional":
                return self._resolve_annotation(inner, module)
            if head == "Union":
                return None
            if head in _CONTAINER_HEADS:
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[-1]  # Dict[K, V] -> V
                return _Container(self._resolve_annotation(inner, module))
            if head == "Tuple":
                return EXTERNAL
            return None
        return None

    def _value_type(self, node: ast.AST, env: Dict[str, object],
                    func: FunctionInfo) -> object:
        """The (approximate) type of an expression, or None/EXTERNAL."""
        module = func.module
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in module.var_types:
                return module.var_types[node.id]
            value = module.var_values.get(node.id)
            if value is not None:
                # resolve module-level vars on demand (memoised; a
                # placeholder breaks self-referential cycles)
                module.var_types[node.id] = None
                module.var_types[node.id] = self._value_type(
                    value, {}, func)
                return module.var_types[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self._value_type(node.value, env, func)
            if isinstance(base, ClassInfo):
                annotation = None
                seen: Set[str] = set()
                stack = [base]
                while stack:
                    cls = stack.pop(0)
                    if cls.qual in seen:
                        continue
                    seen.add(cls.qual)
                    if node.attr in cls.attr_types:
                        return cls.attr_types[node.attr]
                    if node.attr in cls.attr_annotations:
                        annotation = (cls.attr_annotations[node.attr],
                                      cls.module)
                        break
                    stack.extend(cls.bases)
                if annotation is not None:
                    resolved = self._resolve_annotation(*annotation)
                    base.attr_types[node.attr] = resolved
                    return resolved
                return self._infer_attr(base, node.attr)
            if base is EXTERNAL or isinstance(base, _Container):
                return EXTERNAL
            return None
        if isinstance(node, ast.Subscript):
            base = self._value_type(node.value, env, func)
            if isinstance(base, _Container):
                return base.elem
            return None
        if isinstance(node, (ast.List, ast.Set, ast.ListComp,
                             ast.SetComp, ast.GeneratorExp)):
            elem: ast.AST
            if isinstance(node, (ast.List, ast.Set)):
                elem = node.elts[0] if node.elts else None
            else:
                elem = node.elt
            if elem is None:
                return _Container(EXTERNAL)
            return _Container(self._value_type(elem, env, func))
        if isinstance(node, (ast.Dict, ast.DictComp)):
            if isinstance(node, ast.Dict):
                elem = node.values[0] if node.values else None
            else:
                elem = node.value
            if elem is None:
                return _Container(EXTERNAL)
            return _Container(self._value_type(elem, env, func))
        if isinstance(node, (ast.Constant, ast.JoinedStr, ast.Tuple,
                             ast.Compare, ast.BoolOp, ast.BinOp,
                             ast.UnaryOp)):
            return EXTERNAL
        if isinstance(node, ast.Call):
            return self._call_result_type(node, env, func)
        if isinstance(node, ast.IfExp):
            then = self._value_type(node.body, env, func)
            if then is not None:
                return then
            return self._value_type(node.orelse, env, func)
        if isinstance(node, ast.Await):
            return self._value_type(node.value, env, func)
        return None

    def _param_env(self, func: FunctionInfo) -> Dict[str, object]:
        """Just the parameter-annotation bindings (plus ``self``)."""
        env: Dict[str, object] = {}
        node = func.node
        if func.cls is not None:
            decorators = {_dotted(d) for d in node.decorator_list}
            if "staticmethod" not in decorators:
                env["self"] = func.cls
        args = list(getattr(node.args, "posonlyargs", [])) + \
            node.args.args + node.args.kwonlyargs
        for arg in args:
            if arg.annotation is not None:
                resolved = self._resolve_annotation(
                    arg.annotation, func.module)
                if resolved is not None:
                    env[arg.arg] = resolved
        return env

    def _infer_attr(self, cls: ClassInfo, attr: str) -> object:
        """Infer ``self.attr``'s type from assignments in method bodies.

        Scans ``__init__`` first, then the other methods, for
        ``self.attr = value`` / ``self.attr: T = ...`` and types the
        right-hand side under a parameters-only environment.  A project
        class or container wins outright; any resolvable non-project
        value degrades to EXTERNAL (which *suppresses* the may-call
        fan-out -- ``self._sock.close()`` must not edge to every
        project ``close``).  Memoised on the class, with a placeholder
        to break self-referential constructors; project base classes
        are consulted when the class itself never assigns the attr.
        """
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        cls.attr_types[attr] = None
        wanted = f"self.{attr}"
        best: object = None
        methods = sorted(cls.methods.values(),
                         key=lambda m: m.name != "__init__")
        for method in methods:
            env = self._param_env(method)
            for child in self._own_nodes(method.node):
                candidate: object = None
                if isinstance(child, ast.AnnAssign) and isinstance(
                        child.target, ast.Attribute):
                    if _dotted(child.target) == wanted:
                        candidate = self._resolve_annotation(
                            child.annotation, method.module)
                elif isinstance(child, ast.Assign) and \
                        len(child.targets) == 1 and isinstance(
                            child.targets[0], ast.Attribute):
                    if _dotted(child.targets[0]) == wanted:
                        candidate = self._value_type(
                            child.value, env, method)
                if isinstance(candidate, (ClassInfo, _Container)):
                    cls.attr_types[attr] = candidate
                    return candidate
                if candidate is EXTERNAL:
                    best = EXTERNAL
        if best is None:
            for base in cls.bases:
                inherited = self._infer_attr(base, attr)
                if inherited is not None:
                    best = inherited
                    break
        cls.attr_types[attr] = best
        return best

    def _call_result_type(self, node: ast.Call, env: Dict[str, object],
                          func: FunctionInfo) -> object:
        f = node.func
        if isinstance(f, ast.Name):
            if f.id == "super" and func.cls is not None and func.cls.bases:
                return func.cls.bases[0]
            cls = self._lookup_class(f.id, func.module)
            if cls is not None:
                return cls
            target = self._function_named(f.id, func.module)
            if target is not None:
                return self._return_type(target)
            if f.id in _EXTERNAL_CALLS:
                return EXTERNAL
            return None
        if isinstance(f, ast.Attribute):
            base = self._value_type(f.value, env, func)
            if isinstance(base, _Container) and f.attr in _ELEM_METHODS:
                return base.elem
            if isinstance(base, ClassInfo):
                method = base.method(f.attr)
                if method is not None:
                    return self._return_type(method)
                return None
            if base is EXTERNAL:
                return EXTERNAL
            dotted = _dotted(f)
            if dotted is not None:
                owner = self._module_for_root(dotted, func.module)
                if owner is EXTERNAL:
                    return EXTERNAL
                if isinstance(owner, _ModuleIndex):
                    target = owner.functions.get(dotted.split(".")[-1])
                    if target is not None:
                        return self._return_type(target)
                    cls = owner.classes.get(dotted.split(".")[-1])
                    if cls is not None:
                        return cls
            return None
        return None

    def _return_type(self, target: FunctionInfo) -> object:
        if target.return_type is None:
            returns = getattr(target.node, "returns", None)
            if returns is None:
                return None
            resolved = self._resolve_annotation(returns, target.module)
            target.return_type = resolved if resolved is not None \
                else EXTERNAL
        return target.return_type

    def _function_named(self, name: str,
                        module: _ModuleIndex) -> Optional[FunctionInfo]:
        if name in module.functions:
            return module.functions[name]
        entry = module.from_imports.get(name)
        if entry is not None:
            owner = self._lookup_module(entry[0])
            if owner is not None:
                return owner.functions.get(entry[1])
        return None

    def _module_for_root(self, dotted: str, module: _ModuleIndex):
        """The module a dotted call roots in: project, EXTERNAL or None."""
        root = dotted.split(".")[0]
        target = module.imports.get(root)
        if target is None:
            return None
        owner = self._lookup_module(target)
        if owner is not None:
            return owner
        return EXTERNAL

    def _transitive_subclasses(self, cls: ClassInfo
                               ) -> Iterable[ClassInfo]:
        seen: Set[str] = set()
        stack = list(self._subclasses.get(cls.qual, ()))
        while stack:
            sub = stack.pop()
            if sub.qual in seen:
                continue
            seen.add(sub.qual)
            yield sub
            stack.extend(self._subclasses.get(sub.qual, ()))

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def _resolve_call(self, node: ast.Call, env: Dict[str, object],
                      func: FunctionInfo) -> Tuple[Tuple[str, ...], str]:
        f = node.func
        if isinstance(f, ast.Name):
            if f.id in env and env[f.id] is EXTERNAL:
                return (), "external"
            cls = self._lookup_class(f.id, func.module)
            if cls is not None:
                init = cls.method("__init__")
                return ((init.qual,) if init is not None else (),
                        "direct")
            target = self._function_named(f.id, func.module)
            if target is not None:
                return (target.qual,), "direct"
            if f.id in _EXTERNAL_CALLS or f.id in _EXTERNAL_NAMES:
                return (), "external"
            # unresolved bare name: over-approximate to every
            # module-level project function with the same name
            may = tuple(info.qual for info in self._by_name.get(f.id, ())
                        if info.cls is None)
            return may, ("may" if may else "external")
        if isinstance(f, ast.Attribute):
            hooks = tuple(self.callbacks.get(f.attr, ()))
            base = self._value_type(f.value, env, func)
            if isinstance(base, ClassInfo):
                method = base.method(f.attr)
                if method is not None:
                    # CHA: the resolved method plus every override in
                    # the receiver type's project subclasses -- sound
                    # for polymorphic calls through an abstract base,
                    # far tighter than a name-wide may-call
                    targets = [method.qual]
                    for sub in self._transitive_subclasses(base):
                        override = sub.methods.get(f.attr)
                        if override is not None and \
                                override.qual not in targets:
                            targets.append(override.qual)
                    return tuple(targets), "direct"
                if hooks:
                    return hooks, "hook"
            if isinstance(base, _Container) or base is EXTERNAL:
                return (), "external"
            dotted = _dotted(f)
            if dotted is not None and "." in dotted:
                owner = self._module_for_root(dotted, func.module)
                if owner is EXTERNAL:
                    return (), "external"
                if isinstance(owner, _ModuleIndex):
                    tail = dotted.split(".")[-1]
                    target = owner.functions.get(tail)
                    if target is not None:
                        return (target.qual,), "direct"
                    cls = owner.classes.get(tail)
                    if cls is not None:
                        init = cls.method("__init__")
                        return ((init.qual,) if init is not None else (),
                                "direct")
                    return (), "external"
            if hooks:
                return hooks, "hook"
            # the explicit may-call over-approximation: any project
            # function (or ``_``-prefixed implementation) of that name
            may = tuple(info.qual
                        for name in (f.attr, "_" + f.attr)
                        for info in self._by_name.get(name, ()))
            return may, ("may" if may else "external")
        # calls of calls / subscripts: nothing to resolve
        return (), "external"

    # ------------------------------------------------------------------
    # lock tokens
    # ------------------------------------------------------------------
    @staticmethod
    def _is_lock_expr(node: ast.AST) -> bool:
        dotted = _dotted(node)
        if dotted is None:
            return False
        last = dotted.split(".")[-1]
        return "lock" in last.lower() and "handle" not in last.lower()

    def _lock_token(self, node: ast.AST, env: Dict[str, object],
                    origins: Dict[str, str],
                    func: FunctionInfo) -> Optional[str]:
        if isinstance(node, ast.Subscript):
            # self._locks[i]: the collection is the identity
            inner = self._lock_token(node.value, env, origins, func)
            return inner
        dotted = _dotted(node)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and func.cls is not None:
            return ".".join([func.cls.name] + parts[1:])
        if parts[0] in origins and len(parts) == 1:
            return origins[parts[0]]
        base = env.get(parts[0])
        if isinstance(base, ClassInfo) and len(parts) > 1:
            return ".".join([base.name] + parts[1:])
        return dotted

    # ------------------------------------------------------------------
    # per-function walk
    # ------------------------------------------------------------------
    def _build_env(self, func: FunctionInfo
                   ) -> Tuple[Dict[str, object], Dict[str, str]]:
        env = self._param_env(func)
        origins: Dict[str, str] = {}
        node = func.node
        for child in self._own_nodes(node):
            if isinstance(child, ast.AnnAssign) and isinstance(
                    child.target, ast.Name):
                resolved = self._resolve_annotation(
                    child.annotation, func.module)
                if resolved is not None:
                    env[child.target.id] = resolved
            elif isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if isinstance(target, ast.Name):
                    resolved = self._value_type(child.value, env, func)
                    if resolved is not None and target.id not in env:
                        env[target.id] = resolved
                    origin = self._collection_origin(child.value, func)
                    if origin is not None:
                        origins[target.id] = origin
                elif isinstance(target, ast.Tuple) and isinstance(
                        child.value, ast.Call):
                    # lock, table = self._slot(name): keep the striped
                    # collection's identity for each unpacked slot
                    callee = _dotted(child.value.func)
                    if callee and callee.startswith("self.") and \
                            func.cls is not None:
                        base = f"{func.cls.name}.{callee[5:]}"
                        for index, elt in enumerate(target.elts):
                            if isinstance(elt, ast.Name):
                                origins[elt.id] = f"{base}[{index}]"
            elif isinstance(child, ast.For):
                self._for_target_env(child, env, origins, func)
        return env, origins

    def _collection_origin(self, value: ast.AST,
                           func: FunctionInfo) -> Optional[str]:
        """``x = self._locks[i]`` -> ``Class._locks`` (identity)."""
        if isinstance(value, ast.Subscript):
            dotted = _dotted(value.value)
            if dotted and dotted.startswith("self.") and \
                    func.cls is not None:
                return f"{func.cls.name}.{dotted[5:]}"
        return None

    def _for_target_env(self, node: ast.For, env: Dict[str, object],
                        origins: Dict[str, str],
                        func: FunctionInfo) -> None:
        """Infer loop-target types/origins from the iterated value."""
        def origin_of(value: ast.AST) -> Optional[str]:
            if isinstance(value, ast.Call):
                return None
            dotted = _dotted(value)
            if dotted and dotted.startswith("self.") and \
                    func.cls is not None:
                return f"{func.cls.name}.{dotted[5:]}"
            return None

        iters: List[ast.AST]
        targets: List[ast.AST]
        if isinstance(node.iter, ast.Call) and \
                isinstance(node.iter.func, ast.Name) and \
                node.iter.func.id == "zip" and \
                isinstance(node.target, ast.Tuple):
            iters = list(node.iter.args)
            targets = list(node.target.elts)
        else:
            iters = [node.iter]
            targets = [node.target]
        for target, source in zip(targets, iters):
            if not isinstance(target, ast.Name):
                continue
            value = self._value_type(source, env, func)
            if isinstance(value, _Container) and value.elem is not None \
                    and target.id not in env:
                env[target.id] = value.elem
            origin = origin_of(source)
            if origin is not None:
                origins.setdefault(target.id, origin)

    @staticmethod
    def _own_nodes(func_node: ast.AST) -> Iterable[ast.AST]:
        """Walk a function without descending into nested defs."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _collect_callbacks(self) -> None:
        for func in list(self.functions.values()):
            for node in self._own_nodes(func.node):
                if not isinstance(node, ast.Assign) or \
                        len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Attribute):
                    continue
                value = _dotted(node.value)
                if value is None:
                    continue
                impl: Optional[FunctionInfo] = None
                if value.startswith("self.") and func.cls is not None:
                    impl = func.cls.method(value[5:])
                elif "." not in value:
                    impl = self._function_named(value, func.module)
                if impl is not None:
                    bucket = self.callbacks.setdefault(target.attr, [])
                    if impl.qual not in bucket:
                        bucket.append(impl.qual)

    def _walk_function(self, func: FunctionInfo) -> None:
        env, origins = self._build_env(func)
        sites: List[CallSite] = []
        acquisitions: List[LockAcquisition] = []
        blocking: List[BlockingCall] = []
        sticky: List[str] = []  # enter_context acquisitions never release

        def held_now(held: Tuple[str, ...]) -> Tuple[str, ...]:
            merged = list(held)
            for token in sticky:
                if token not in merged:
                    merged.append(token)
            return tuple(merged)

        def visit_calls(node: ast.AST, held: Tuple[str, ...],
                        in_loop: bool) -> None:
            for child in self._expr_nodes(node):
                if isinstance(child, ast.Call):
                    self._record_call(child, func, env, origins,
                                      held_now(held), in_loop,
                                      sites, acquisitions, blocking,
                                      sticky)

        def walk(stmts: Sequence[ast.stmt], held: Tuple[str, ...],
                 in_loop: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    tokens: List[str] = []
                    for item in stmt.items:
                        expr = item.context_expr
                        visit_calls(expr, held + tuple(tokens), in_loop)
                        if self._is_lock_expr(expr):
                            token = self._lock_token(
                                expr, env, origins, func)
                            if token is not None:
                                acquisitions.append(LockAcquisition(
                                    function=func.qual, token=token,
                                    line=expr.lineno,
                                    held=held_now(held + tuple(tokens)),
                                    in_loop=in_loop,
                                ))
                                tokens.append(token)
                    walk(stmt.body, held + tuple(tokens), in_loop)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    visit_calls(stmt.iter, held, in_loop)
                    walk(stmt.body, held, True)
                    walk(stmt.orelse, held, in_loop)
                elif isinstance(stmt, ast.While):
                    visit_calls(stmt.test, held, in_loop)
                    walk(stmt.body, held, True)
                    walk(stmt.orelse, held, in_loop)
                elif isinstance(stmt, ast.If):
                    visit_calls(stmt.test, held, in_loop)
                    walk(stmt.body, held, in_loop)
                    walk(stmt.orelse, held, in_loop)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body, held, in_loop)
                    for handler in stmt.handlers:
                        walk(handler.body, held, in_loop)
                    walk(stmt.orelse, held, in_loop)
                    walk(stmt.finalbody, held, in_loop)
                else:
                    visit_calls(stmt, held, in_loop)

        walk(func.node.body, (), False)
        self.call_sites[func.qual] = sites
        self.acquisitions[func.qual] = acquisitions
        self.blocking[func.qual] = blocking

    @staticmethod
    def _expr_nodes(node: ast.AST) -> Iterable[ast.AST]:
        """All expression nodes, skipping nested function bodies."""
        stack = [node]
        while stack:
            item = stack.pop()
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            yield item
            stack.extend(ast.iter_child_nodes(item))

    def _record_call(self, node: ast.Call, func: FunctionInfo,
                     env: Dict[str, object], origins: Dict[str, str],
                     held: Tuple[str, ...], in_loop: bool,
                     sites: List[CallSite],
                     acquisitions: List[LockAcquisition],
                     blocking: List[BlockingCall],
                     sticky: List[str]) -> None:
        dotted = _dotted(node.func)
        # ExitStack.enter_context(<lock>): an acquisition that is held
        # for the rest of the function (conservatively)
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "enter_context" and node.args:
            arg = node.args[0]
            if self._is_lock_expr(arg):
                token = self._lock_token(arg, env, origins, func)
                if token is not None:
                    acquisitions.append(LockAcquisition(
                        function=func.qual, token=token,
                        line=node.lineno, held=held,
                        via_enter_context=True, in_loop=in_loop,
                    ))
                    if token not in sticky:
                        sticky.append(token)
                return
        reason = self._blocking_reason(node, dotted, env, func)
        if reason is not None:
            blocking.append(BlockingCall(
                function=func.qual, line=node.lineno,
                dotted=dotted or "<call>", reason=reason, held=held,
            ))
        targets, kind = self._resolve_call(node, env, func)
        sites.append(CallSite(
            caller=func.qual, line=node.lineno, dotted=dotted,
            targets=targets, kind=kind, held=held,
        ))

    def _blocking_reason(self, node: ast.Call, dotted: Optional[str],
                         env: Dict[str, object],
                         func: FunctionInfo) -> Optional[str]:
        if dotted is None:
            return None
        parts = dotted.split(".")
        last = parts[-1]
        root = parts[0]
        if last in ("fsync", "fsync_file", "fsync_dir"):
            return "fsync"
        if dotted in ("time.sleep", "sleep"):
            return "sleep"
        if root == "subprocess" and last in _BLOCKING_SUBPROCESS:
            return "subprocess"
        if last in _BLOCKING_SIMPLE and last not in ("fsync",):
            if last == "sleep":
                return "sleep"
            # ``x.connect`` style socket ops: skip receivers we can
            # prove are project classes (e.g. a Graph.connect method)
            if isinstance(node.func, ast.Attribute):
                base = self._value_type(node.func.value, env, func)
                if isinstance(base, ClassInfo):
                    return None
            return _BLOCKING_SIMPLE[last]
        if last in ("join", "wait"):
            if not isinstance(node.func, ast.Attribute):
                return None
            recv = node.func.value
            if isinstance(recv, ast.Constant):
                return None  # ", ".join(...)
            recv_dotted = _dotted(recv) or ""
            recv_last = recv_dotted.split(".")[-1].lower()
            has_timeout = any(kw.arg == "timeout" for kw in node.keywords)
            threadish = any(hint in recv_last for hint in _THREADISH)
            if threadish or has_timeout:
                return "join" if last == "join" else "wait"
            base = self._value_type(recv, env, func)
            if base is EXTERNAL or isinstance(base, ClassInfo):
                return None
            if recv_dotted == "self" and func.cls is not None and any(
                    "Thread" in name for name in func.cls.base_names):
                return "join"
            return None
        return None

    # ------------------------------------------------------------------
    # build + fixpoint
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for source in self.project.files:
            self._index_module(source)
        # resolve base classes once every module is indexed
        for module in self.modules.values():
            for cls in module.classes.values():
                cls.bases = [
                    resolved for resolved in (
                        self._lookup_class(name.split(".")[-1], module)
                        for name in cls.base_names
                    ) if resolved is not None and resolved is not cls
                ]
        for module in self.modules.values():
            for cls in module.classes.values():
                for base in cls.bases:
                    self._subclasses.setdefault(base.qual, []).append(cls)
        self._collect_callbacks()
        for func in list(self.functions.values()):
            self._walk_function(func)
        self._propagate()
        self._collect_lock_edges()

    def _propagate(self) -> None:
        """Fixpoint: push held-lock sets through the call graph."""
        self.entry_held = {qual: {} for qual in self.functions}
        worklist: List[str] = list(self.functions)
        max_hops = 12
        while worklist:
            caller = worklist.pop()
            inherited = self.entry_held.get(caller, {})
            for site in self.call_sites.get(caller, ()):
                if not site.targets:
                    continue
                carried: Dict[str, Tuple[Hop, ...]] = {}
                hop: Hop = (caller, site.line)
                for token in site.held:
                    carried[token] = (hop,)
                for token, witness in inherited.items():
                    if token not in carried and len(witness) < max_hops:
                        carried[token] = witness + (hop,)
                if not carried:
                    continue
                for target in site.targets:
                    bucket = self.entry_held.get(target)
                    if bucket is None:
                        continue
                    changed = False
                    for token, witness in carried.items():
                        if token not in bucket:
                            bucket[token] = witness
                            changed = True
                    if changed:
                        worklist.append(target)

    def _collect_lock_edges(self) -> None:
        edges: Dict[Tuple[str, str], LockEdge] = {}

        def add(held: str, acquired: str, function: str, line: int,
                witness: Tuple[Hop, ...]) -> None:
            key = (held, acquired)
            if key not in edges:
                edges[key] = LockEdge(held=held, acquired=acquired,
                                      function=function, line=line,
                                      witness=witness)

        for qual in sorted(self.acquisitions):
            for acq in self.acquisitions[qual]:
                for token in acq.held:
                    add(token, acq.token, qual, acq.line,
                        ((qual, acq.line),))
                for token, witness in sorted(
                        self.entry_held.get(qual, {}).items()):
                    add(token, acq.token, qual, acq.line,
                        witness + ((qual, acq.line),))
                if acq.via_enter_context and acq.in_loop:
                    # the ExitStack-in-a-loop idiom holds earlier
                    # stripes while taking later ones: a self-edge on
                    # the token, safe only under a frozen total order
                    add(acq.token, acq.token, qual, acq.line,
                        ((qual, acq.line),))
        self.lock_edges = list(edges.values())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def held_at(self, qual: str,
                lexical: Tuple[str, ...]) -> Dict[str, Tuple[Hop, ...]]:
        """Lexically held tokens plus the function's entry set."""
        merged: Dict[str, Tuple[Hop, ...]] = {
            token: () for token in lexical
        }
        for token, witness in self.entry_held.get(qual, {}).items():
            merged.setdefault(token, witness)
        return merged

    def lock_cycles(self) -> List[List[LockEdge]]:
        """Cycles in the lock-order graph, one witness cycle per SCC."""
        graph: Dict[str, List[LockEdge]] = {}
        nodes: Set[str] = set()
        for edge in self.lock_edges:
            graph.setdefault(edge.held, []).append(edge)
            nodes.add(edge.held)
            nodes.add(edge.acquired)
        for bucket in graph.values():
            bucket.sort(key=lambda e: (e.acquired, e.function, e.line))

        # iterative Tarjan SCC
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(graph.get(root, ())))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, edges_iter = work[-1]
                advanced = False
                for edge in edges_iter:
                    succ = edge.acquired
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(graph.get(succ, ()))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(component)

        for node in sorted(nodes):
            if node not in index:
                strongconnect(node)

        cycles: List[List[LockEdge]] = []
        for component in sccs:
            members = set(component)
            internal = [
                edge for edge in self.lock_edges
                if edge.held in members and edge.acquired in members
            ]
            if len(component) == 1:
                token = component[0]
                self_edges = [e for e in internal
                              if e.held == e.acquired == token]
                if self_edges:
                    cycles.append([min(
                        self_edges,
                        key=lambda e: (e.function, e.line))])
                continue
            # walk a concrete cycle inside the SCC, starting from the
            # smallest token for determinism
            start = min(component)
            path: List[LockEdge] = []
            seen_tokens: Set[str] = set()
            current = start
            by_source: Dict[str, List[LockEdge]] = {}
            for edge in internal:
                by_source.setdefault(edge.held, []).append(edge)
            for bucket in by_source.values():
                bucket.sort(key=lambda e: (e.acquired, e.function,
                                           e.line))
            while current not in seen_tokens:
                seen_tokens.add(current)
                options = by_source.get(current, [])
                if not options:
                    break
                # prefer closing the loop, else the smallest successor
                closing = [e for e in options if e.acquired == start]
                edge = closing[0] if closing and len(path) > 0 \
                    else options[0]
                path.append(edge)
                current = edge.acquired
                if current == start:
                    break
            if path and path[-1].acquired == start:
                cycles.append(path)
            elif path:
                # trim to the back-edge cycle that was actually closed
                for position, edge in enumerate(path):
                    if edge.held == current:
                        cycles.append(path[position:])
                        break
        cycles.sort(key=lambda c: (c[0].function, c[0].line))
        return cycles

    # ------------------------------------------------------------------
    # DOT dump
    # ------------------------------------------------------------------
    def to_dot(self, full: bool = False) -> str:
        """The call+lock graph in DOT.  ``full`` keeps lock-free code."""
        interesting: Set[str] = set()
        for qual, acqs in self.acquisitions.items():
            if acqs:
                interesting.add(qual)
        for qual, calls in self.blocking.items():
            if calls:
                interesting.add(qual)
        for qual, held in self.entry_held.items():
            if held:
                interesting.add(qual)
        if full:
            interesting = set(self.functions)
        else:
            # keep direct callers of interesting functions for context
            for qual, sites in self.call_sites.items():
                if any(set(site.targets) & interesting
                       for site in sites):
                    interesting.add(qual)

        def node_id(name: str) -> str:
            return '"%s"' % name.replace('"', "'")

        lines = [
            "digraph repro_flow {",
            "  rankdir=LR;",
            '  node [fontname="monospace", fontsize=10];',
        ]
        for qual in sorted(interesting):
            func = self.functions.get(qual)
            if func is None:
                continue
            lines.append(
                f"  {node_id(qual)} [label={node_id(func.label)}, "
                "shape=ellipse];"
            )
        tokens = sorted({edge.held for edge in self.lock_edges} |
                        {edge.acquired for edge in self.lock_edges} |
                        {acq.token for acqs in self.acquisitions.values()
                         for acq in acqs})
        for token in tokens:
            lines.append(
                f"  {node_id('lock:' + token)} [label={node_id(token)}, "
                "shape=box, color=red];"
            )
        emitted: Set[Tuple[str, str, str]] = set()
        for qual in sorted(interesting):
            for site in self.call_sites.get(qual, ()):
                for target in site.targets:
                    if target not in interesting:
                        continue
                    style = "dashed" if site.kind in ("may", "hook") \
                        else "solid"
                    key = (qual, target, style)
                    if key in emitted:
                        continue
                    emitted.add(key)
                    lines.append(
                        f"  {node_id(qual)} -> {node_id(target)} "
                        f"[style={style}];"
                    )
        acq_emitted: Set[Tuple[str, str]] = set()
        for qual in sorted(self.acquisitions):
            for acq in self.acquisitions[qual]:
                key = (qual, acq.token)
                if key in acq_emitted:
                    continue
                acq_emitted.add(key)
                lines.append(
                    f"  {node_id(qual)} -> {node_id('lock:' + acq.token)}"
                    " [style=dotted, color=red];"
                )
        for edge in sorted(self.lock_edges,
                           key=lambda e: (e.held, e.acquired)):
            lines.append(
                f"  {node_id('lock:' + edge.held)} -> "
                f"{node_id('lock:' + edge.acquired)} "
                "[color=red, penwidth=2];"
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


def render_witness(witness: Tuple[Hop, ...],
                   analysis: FlowAnalysis) -> str:
    """``a.f:12 -> b.g:34`` using short labels."""
    hops = []
    for qual, line in witness:
        func = analysis.functions.get(qual)
        hops.append(f"{func.label if func else qual}:{line}")
    return " -> ".join(hops)


def flow_for(project: Project) -> FlowAnalysis:
    """The (memoised) flow analysis for a project."""
    cached = getattr(project, "_flow_analysis", None)
    if cached is None:
        cached = FlowAnalysis(project)
        project._flow_analysis = cached  # type: ignore[attr-defined]
    return cached
