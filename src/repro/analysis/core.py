"""The checker framework: files, findings, suppressions, the runner.

Dependency-free by construction (stdlib ``ast`` only): the lint suite
is the safety rail for refactoring the service, so it must never be
the thing a missing dependency breaks.

Pieces:

* :class:`Finding` -- one violation: rule id, ``file:line:col``, a
  message, and a fix hint.
* :class:`SourceFile` -- a parsed module plus its inline suppressions
  (``# repro: noqa[rule]`` or ``# repro: noqa[rule-a,rule-b]``,
  optionally ``-- reason``, on the flagged line).
* :class:`Checker` -- base class; per-file checkers implement
  :meth:`Checker.check`, cross-module ones set ``project = True`` and
  implement :meth:`Checker.check_project` against a :class:`Project`.
* :func:`lint_paths` -- walk the given paths, run the selected
  checkers, apply suppressions, and return a :class:`LintReport`.

A file that does not parse yields one finding under the reserved
``parse`` rule (not suppressible -- the rest of the suite is blind to
that file, so the failure must be loud).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: the suppression comment: ``# repro: noqa[rule]`` or
#: ``# repro: noqa[rule-a, rule-b] -- why this is deliberate``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\["
    r"(?P<rules>[a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)"
    r"\]"
    r"(?:\s*--\s*(?P<reason>\S.*?)\s*)?$"
)

#: rule id reserved for unparseable files; never suppressible
PARSE_RULE = "parse"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    file: str
    line: int
    col: int
    message: str
    hint: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.file}:{self.line}:{self.col}: [{self.rule}] "
        text += self.message
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]
    used: bool = False

    def covers(self, rule: str) -> bool:
        return rule in self.rules


class SourceFile:
    """One parsed Python file plus its suppression table."""

    def __init__(self, path: Path, display: str, text: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.display = display  # the path as reported in findings
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.suppressions: Dict[int, Suppression] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",")
            )
            self.suppressions[number] = Suppression(
                line=number, rules=rules, reason=match.group("reason")
            )

    @property
    def name(self) -> str:
        return self.path.name

    def suppression_for(self, rule: str, line: int) -> Optional[Suppression]:
        """The suppression covering ``rule`` on ``line``, if any."""
        candidate = self.suppressions.get(line)
        if candidate is not None and candidate.covers(rule):
            return candidate
        return None


class ParseCache:
    """Parse each file exactly once per run, keyed by resolved path."""

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[Optional["SourceFile"],
                                       Optional[Finding]]] = {}

    def parse(self, path: Path) -> Tuple[Optional["SourceFile"],
                                         Optional[Finding]]:
        try:
            key = str(path.resolve())
        except OSError:  # pragma: no cover - exotic filesystems
            key = str(path)
        if key not in self._entries:
            self._entries[key] = parse_file(path)
        return self._entries[key]

    def __len__(self) -> int:
        return len(self._entries)


class Project:
    """Everything the walker found, for cross-module checkers.

    The *source root* is the directory that contains the ``repro``
    package (located by finding ``repro/service/protocol.py`` among the
    parsed files); the *repo root* is its parent, where ``docs/``
    lives.  When no source root is present -- the paths under lint are
    fixture snippets, not the service -- project checkers no-op, so the
    per-file rules still work on arbitrary trees.

    A project carries the run's :class:`ParseCache`, so any checker
    needing an extra file parsed (or the runner expanding a single
    file to its anchored tree) parses each path at most once.
    """

    def __init__(self, files: Sequence[SourceFile],
                 cache: Optional[ParseCache] = None) -> None:
        self.files = list(files)
        self.cache = cache if cache is not None else ParseCache()
        self._by_suffix: Dict[str, SourceFile] = {}
        for source in self.files:
            self._by_suffix[source.path.as_posix()] = source

    def parse(self, path: Path) -> Tuple[Optional["SourceFile"],
                                         Optional[Finding]]:
        """Parse through the run's cache (once per path per run)."""
        return self.cache.parse(Path(path))

    def module(self, suffix: str) -> Optional[SourceFile]:
        """The parsed file whose path ends with ``suffix`` (posix)."""
        suffix = "/" + suffix.lstrip("/")
        for posix, source in self._by_suffix.items():
            if ("/" + posix).endswith(suffix):
                return source
        return None

    @property
    def source_root(self) -> Optional[Path]:
        anchor = self.module("repro/service/protocol.py")
        if anchor is None:
            return None
        return anchor.path.parents[2]

    @property
    def repo_root(self) -> Optional[Path]:
        root = self.source_root
        return root.parent if root is not None else None

    def doc(self, relative: str) -> Optional[Path]:
        """A documentation file under the repo root, if it exists."""
        root = self.repo_root
        if root is None:
            return None
        candidate = root / relative
        return candidate if candidate.is_file() else None


class Checker:
    """Base class: one frozen rule id, one invariant."""

    rule: str = ""
    summary: str = ""
    hint: str = ""
    #: True for cross-module checkers (run once per project, not per file)
    project: bool = False

    def finding(self, source_or_file, line: int, message: str,
                col: int = 0, hint: Optional[str] = None) -> Finding:
        display = (
            source_or_file.display
            if isinstance(source_or_file, SourceFile)
            else str(source_or_file)
        )
        return Finding(
            rule=self.rule,
            file=display,
            line=line,
            col=col,
            message=message,
            hint=self.hint if hint is None else hint,
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Per-file entry point (per-file checkers override this)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Whole-project entry point (project checkers override this)."""
        return iter(())


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files: int
    rules: List[str]
    suppressed: List[Dict[str, object]] = field(default_factory=list)
    #: the analysed project (for graph export); never serialised
    project: Optional["Project"] = field(
        default=None, repr=False, compare=False)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "rules": self.rules,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": list(self.suppressed),
            "ok": not self.findings,
        }


def iter_python_files(paths: Iterable) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted.

    Hidden directories and ``__pycache__`` are skipped; a path that is
    itself a ``.py`` file is taken as-is.
    """
    collected: List[Path] = []
    seen: set = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                collected.append(path)
            continue
        for candidate in path.rglob("*.py"):
            parts = candidate.relative_to(path).parts
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in parts
            ):
                continue
            collected.append(candidate)
    unique: List[Path] = []
    for candidate in sorted(collected, key=lambda p: p.as_posix()):
        try:
            key = str(candidate.resolve())
        except OSError:  # pragma: no cover - exotic filesystems
            key = str(candidate)
        if key in seen:
            continue
        seen.add(key)
        unique.append(candidate)
    return unique


def _display(path: Path) -> str:
    """Report paths relative to the working directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_file(path: Path) -> Tuple[Optional[SourceFile], Optional[Finding]]:
    """Parse one file; returns ``(source, None)`` or ``(None, finding)``."""
    display = _display(path)
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return None, Finding(
            rule=PARSE_RULE,
            file=display,
            line=getattr(exc, "lineno", 0) or 0,
            col=getattr(exc, "offset", 0) or 0,
            message=f"file does not parse: {exc}",
            hint="the rest of the suite is blind to this file; fix it first",
        )
    return SourceFile(path, display, text, tree), None


#: anchored-tree marker: a file path ending in this activates project
#: rules; a lone file *inside* such a tree pulls the tree in as context
_ANCHOR_SUFFIX = ("repro", "service", "protocol.py")


def _find_anchor_root(path: Path) -> Optional[Path]:
    """The directory above ``path`` containing the anchored tree."""
    try:
        resolved = path.resolve()
    except OSError:  # pragma: no cover - exotic filesystems
        return None
    for parent in resolved.parents:
        candidate = parent.joinpath(*_ANCHOR_SUFFIX)
        if candidate.is_file():
            return parent
    return None


def _file_lint_job(args: Tuple[str, Tuple[str, ...]]) -> List[Finding]:
    """Worker for ``jobs > 1``: per-file rules over one file."""
    path_str, rule_ids = args
    from repro.analysis import ALL_CHECKERS

    source, failure = parse_file(Path(path_str))
    if failure is not None:
        return [failure]
    out: List[Finding] = []
    for checker in ALL_CHECKERS:
        if checker.project or checker.rule not in rule_ids:
            continue
        out.extend(checker.check(source))
    return out


def _run_file_checkers_parallel(
    sources: Sequence[SourceFile],
    file_checkers: Sequence[Checker],
    jobs: int,
) -> List[Finding]:
    """Fan the per-file rules out over a process pool.

    Falls back to serial execution when the platform refuses to give
    us a pool (restricted sandboxes) -- the lint must never fail for
    infrastructure reasons.
    """
    rule_ids = tuple(checker.rule for checker in file_checkers)
    job_args = [(str(source.path), rule_ids) for source in sources]
    try:
        import multiprocessing

        with multiprocessing.Pool(min(jobs, len(sources))) as pool:
            buckets = pool.map(_file_lint_job, job_args)
        return [finding for bucket in buckets for finding in bucket]
    except (ImportError, OSError, PermissionError,
            ValueError):  # pragma: no cover - sandbox-dependent
        out: List[Finding] = []
        for checker in file_checkers:
            for source in sources:
                out.extend(checker.check(source))
        return out


def lint_paths(
    paths: Iterable,
    checkers: Sequence[Checker],
    rules: Optional[Iterable[str]] = None,
    jobs: int = 1,
) -> LintReport:
    """Run ``checkers`` (optionally narrowed to ``rules``) over ``paths``.

    Files are linted in sorted order, each parsed once per run.  With
    ``jobs > 1`` the per-file rules fan out over a multiprocessing
    pool (project rules always run in-process -- they need the whole
    tree).  A *file* argument that lives inside an anchored service
    tree pulls the rest of the tree in as context, so project rules
    still apply; findings are then scoped to the requested files.
    """
    if rules is not None:
        wanted = set(rules)
        known = {checker.rule for checker in checkers}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown rule(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        checkers = [c for c in checkers if c.rule in wanted]
    cache = ParseCache()
    target_paths = iter_python_files(paths)
    # single-file anchoring: explicit .py arguments inside an anchored
    # tree activate project rules with the whole tree as context
    context_paths: List[Path] = []
    has_anchor = any(
        path.as_posix().endswith("/".join(_ANCHOR_SUFFIX))
        for path in target_paths
    )
    explicit_files = [
        Path(raw) for raw in paths
        if Path(raw).is_file() and Path(raw).suffix == ".py"
    ]
    if explicit_files and not has_anchor:
        roots: List[Path] = []
        for path in explicit_files:
            root = _find_anchor_root(path)
            if root is not None and root not in roots:
                roots.append(root)
        if roots:
            target_keys = {str(p.resolve()) for p in target_paths}
            for candidate in iter_python_files(sorted(roots)):
                if str(candidate.resolve()) not in target_keys:
                    context_paths.append(candidate)
    scoped = bool(context_paths)

    sources: List[SourceFile] = []
    findings: List[Finding] = []
    for path in target_paths:
        source, failure = cache.parse(path)
        if failure is not None:
            findings.append(failure)
        else:
            sources.append(source)
    context_sources: List[SourceFile] = []
    for path in context_paths:
        source, _ = cache.parse(path)  # context parse errors stay quiet
        if source is not None:
            context_sources.append(source)
    project = Project(sources + context_sources, cache=cache)
    raw: List[Finding] = []
    file_checkers = [c for c in checkers if not c.project]
    if jobs > 1 and file_checkers and len(sources) > 1:
        raw.extend(_run_file_checkers_parallel(
            sources, file_checkers, jobs))
    else:
        for checker in file_checkers:
            for source in sources:
                raw.extend(checker.check(source))
    for checker in checkers:
        if checker.project:
            for finding in checker.check_project(project):
                if scoped and not any(
                        finding.file == source.display
                        for source in sources):
                    continue
                raw.extend([finding])
    suppressed: List[Dict[str, object]] = []
    by_display = {source.display: source for source in sources}
    for finding in raw:
        source = by_display.get(finding.file)
        suppression = (
            source.suppression_for(finding.rule, finding.line)
            if source is not None
            else None
        )
        if suppression is not None:
            suppression.used = True
            suppressed.append(
                {
                    "rule": finding.rule,
                    "file": finding.file,
                    "line": finding.line,
                    "reason": suppression.reason,
                }
            )
        else:
            findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return LintReport(
        findings=findings,
        files=len(sources),
        rules=[checker.rule for checker in checkers],
        suppressed=suppressed,
        project=project,
    )
