"""The checker framework: files, findings, suppressions, the runner.

Dependency-free by construction (stdlib ``ast`` only): the lint suite
is the safety rail for refactoring the service, so it must never be
the thing a missing dependency breaks.

Pieces:

* :class:`Finding` -- one violation: rule id, ``file:line:col``, a
  message, and a fix hint.
* :class:`SourceFile` -- a parsed module plus its inline suppressions
  (``# repro: noqa[rule]`` or ``# repro: noqa[rule-a,rule-b]``,
  optionally ``-- reason``, on the flagged line).
* :class:`Checker` -- base class; per-file checkers implement
  :meth:`Checker.check`, cross-module ones set ``project = True`` and
  implement :meth:`Checker.check_project` against a :class:`Project`.
* :func:`lint_paths` -- walk the given paths, run the selected
  checkers, apply suppressions, and return a :class:`LintReport`.

A file that does not parse yields one finding under the reserved
``parse`` rule (not suppressible -- the rest of the suite is blind to
that file, so the failure must be loud).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: the suppression comment: ``# repro: noqa[rule]`` or
#: ``# repro: noqa[rule-a, rule-b] -- why this is deliberate``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\["
    r"(?P<rules>[a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)"
    r"\]"
    r"(?:\s*--\s*(?P<reason>\S.*?)\s*)?$"
)

#: rule id reserved for unparseable files; never suppressible
PARSE_RULE = "parse"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    file: str
    line: int
    col: int
    message: str
    hint: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.file}:{self.line}:{self.col}: [{self.rule}] "
        text += self.message
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]
    used: bool = False

    def covers(self, rule: str) -> bool:
        return rule in self.rules


class SourceFile:
    """One parsed Python file plus its suppression table."""

    def __init__(self, path: Path, display: str, text: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.display = display  # the path as reported in findings
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.suppressions: Dict[int, Suppression] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",")
            )
            self.suppressions[number] = Suppression(
                line=number, rules=rules, reason=match.group("reason")
            )

    @property
    def name(self) -> str:
        return self.path.name

    def suppression_for(self, rule: str, line: int) -> Optional[Suppression]:
        """The suppression covering ``rule`` on ``line``, if any."""
        candidate = self.suppressions.get(line)
        if candidate is not None and candidate.covers(rule):
            return candidate
        return None


class Project:
    """Everything the walker found, for cross-module checkers.

    The *source root* is the directory that contains the ``repro``
    package (located by finding ``repro/service/protocol.py`` among the
    parsed files); the *repo root* is its parent, where ``docs/``
    lives.  When no source root is present -- the paths under lint are
    fixture snippets, not the service -- project checkers no-op, so the
    per-file rules still work on arbitrary trees.
    """

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)
        self._by_suffix: Dict[str, SourceFile] = {}
        for source in self.files:
            self._by_suffix[source.path.as_posix()] = source

    def module(self, suffix: str) -> Optional[SourceFile]:
        """The parsed file whose path ends with ``suffix`` (posix)."""
        suffix = "/" + suffix.lstrip("/")
        for posix, source in self._by_suffix.items():
            if ("/" + posix).endswith(suffix):
                return source
        return None

    @property
    def source_root(self) -> Optional[Path]:
        anchor = self.module("repro/service/protocol.py")
        if anchor is None:
            return None
        return anchor.path.parents[2]

    @property
    def repo_root(self) -> Optional[Path]:
        root = self.source_root
        return root.parent if root is not None else None

    def doc(self, relative: str) -> Optional[Path]:
        """A documentation file under the repo root, if it exists."""
        root = self.repo_root
        if root is None:
            return None
        candidate = root / relative
        return candidate if candidate.is_file() else None


class Checker:
    """Base class: one frozen rule id, one invariant."""

    rule: str = ""
    summary: str = ""
    hint: str = ""
    #: True for cross-module checkers (run once per project, not per file)
    project: bool = False

    def finding(self, source_or_file, line: int, message: str,
                col: int = 0, hint: Optional[str] = None) -> Finding:
        display = (
            source_or_file.display
            if isinstance(source_or_file, SourceFile)
            else str(source_or_file)
        )
        return Finding(
            rule=self.rule,
            file=display,
            line=line,
            col=col,
            message=message,
            hint=self.hint if hint is None else hint,
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Per-file entry point (per-file checkers override this)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Whole-project entry point (project checkers override this)."""
        return iter(())


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files: int
    rules: List[str]
    suppressed: List[Dict[str, object]] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "rules": self.rules,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": list(self.suppressed),
            "ok": not self.findings,
        }


def iter_python_files(paths: Iterable) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted.

    Hidden directories and ``__pycache__`` are skipped; a path that is
    itself a ``.py`` file is taken as-is.
    """
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                collected.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in parts
            ):
                continue
            collected.append(candidate)
    return collected


def _display(path: Path) -> str:
    """Report paths relative to the working directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_file(path: Path) -> Tuple[Optional[SourceFile], Optional[Finding]]:
    """Parse one file; returns ``(source, None)`` or ``(None, finding)``."""
    display = _display(path)
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return None, Finding(
            rule=PARSE_RULE,
            file=display,
            line=getattr(exc, "lineno", 0) or 0,
            col=getattr(exc, "offset", 0) or 0,
            message=f"file does not parse: {exc}",
            hint="the rest of the suite is blind to this file; fix it first",
        )
    return SourceFile(path, display, text, tree), None


def lint_paths(
    paths: Iterable,
    checkers: Sequence[Checker],
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run ``checkers`` (optionally narrowed to ``rules``) over ``paths``."""
    if rules is not None:
        wanted = set(rules)
        known = {checker.rule for checker in checkers}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown rule(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        checkers = [c for c in checkers if c.rule in wanted]
    sources: List[SourceFile] = []
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        source, failure = parse_file(path)
        if failure is not None:
            findings.append(failure)
        else:
            sources.append(source)
    project = Project(sources)
    raw: List[Finding] = []
    for checker in checkers:
        if checker.project:
            raw.extend(checker.check_project(project))
        else:
            for source in sources:
                raw.extend(checker.check(source))
    suppressed: List[Dict[str, object]] = []
    by_display = {source.display: source for source in sources}
    for finding in raw:
        source = by_display.get(finding.file)
        suppression = (
            source.suppression_for(finding.rule, finding.line)
            if source is not None
            else None
        )
        if suppression is not None:
            suppression.used = True
            suppressed.append(
                {
                    "rule": finding.rule,
                    "file": finding.file,
                    "line": finding.line,
                    "reason": suppression.reason,
                }
            )
        else:
            findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return LintReport(
        findings=findings,
        files=len(sources),
        rules=[checker.rule for checker in checkers],
        suppressed=suppressed,
    )
