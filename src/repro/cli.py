"""Command-line interface.

Subcommands::

    python -m repro info SPEC                      # stats + grammar class
    python -m repro derive SPEC -o EXEC [--size N] # sample a run, write log
    python -m repro label SPEC EXEC -o LABELS      # label a log on-the-fly
    python -m repro query SPEC LABELS A B          # reachability from labels
    python -m repro schemes                        # list labeling backends
    python -m repro normalize SPEC -o OUT          # Section 5.3 rewriting
    python -m repro bench [EXPERIMENT...]          # Section 7 tables
    python -m repro serve [--port P | --stdio]     # provenance query service
    python -m repro loadgen [SCENARIO]             # drive a load scenario
    python -m repro stats [--watch]                # a live server's telemetry
    python -m repro lint [PATH...]                 # AST invariant lint suite

``label`` and ``serve`` take ``--scheme`` to pick any registered
*dynamic* labeling backend (``drl`` by default; see ``repro schemes``);
``query`` reads the scheme back from the label store, which records it.
``serve`` and ``loadgen`` take ``--shards`` to stripe the session
registry and query cache across independent locks; ``loadgen`` replays
a named scenario (``repro loadgen --list``) against an in-process
engine or, with ``--port``, a live server over TCP.  ``serve
--data-dir`` makes the service durable -- sessions recovered on boot,
every ingest write-ahead-logged under ``--fsync`` before it is
acknowledged, WALs rolled into checkpoints every
``--checkpoint-interval`` seconds -- and ``loadgen crash-recovery``
SIGKILLs such a server mid-ingest and verifies that recovery loses no
acknowledged insertion.

Observability: ``serve --metrics-port`` exposes the server's latency
histograms and counters as a Prometheus text endpoint
(``GET /metrics``), ``--log-level``/``--log-format`` configure the
structured (text or JSON-lines) event log on stderr, and ``repro
stats`` polls a live server's ``stats`` and ``metrics`` ops --
``--watch`` keeps refreshing, a terminal-friendly top for the service.

Specifications and execution logs are read/written as JSON or XML,
chosen by file extension (``.json`` / ``.xml``).
"""

from __future__ import annotations

import argparse
import random
from typing import List, Optional

from repro.io import (
    load_execution_json,
    load_execution_xml,
    load_label_store,
    save_execution_json,
    save_execution_xml,
    save_labels,
    save_specification_json,
    save_specification_xml,
)
from repro.errors import ReproError, ServiceError
from repro.schemes import registry as scheme_registry
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation
from repro.workflow.grammar import analyze_grammar
from repro.workflow.normalize import normalize_specification
from repro.workflow.specification import Specification
from repro.workflow.validation import naming_condition_violations


def _save_spec(spec: Specification, path: str) -> None:
    if path.endswith(".xml"):
        save_specification_xml(spec, path)
    else:
        save_specification_json(spec, path)


def _load_execution(path: str):
    if path.endswith(".xml"):
        return load_execution_xml(path)
    return load_execution_json(path)


def _builtin_or_file(name: str) -> Specification:
    """Resolve a spec argument: a bundled dataset name or a file path."""
    from repro.service.sessions import resolve_spec

    try:
        return resolve_spec(name)
    except ServiceError as exc:
        raise SystemExit(str(exc)) from None


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def cmd_info(args) -> int:
    spec = _builtin_or_file(args.spec)
    info = analyze_grammar(spec)
    print(f"name:            {spec.name}")
    print(f"graphs:          {len(list(spec.graph_keys()))}")
    print(f"composites:      {sorted(spec.composite_names)}")
    print(f"loops:           {sorted(spec.loops)}")
    print(f"forks:           {sorted(spec.forks)}")
    print(f"max graph size:  {spec.max_graph_size}")
    print(f"avg graph size:  {spec.average_graph_size:.2f}")
    print(f"grammar class:   {info.grammar_class.value}")
    print(f"parallel rec.:   {info.parallel_recursive}")
    problems = naming_condition_violations(spec)
    if problems:
        print(f"naming conditions: {len(problems)} violation(s) "
              "(use 'normalize' or logged mode)")
        for problem in problems[:5]:
            print(f"  - {problem}")
    else:
        print("naming conditions: satisfied (name-inference mode available)")
    return 0


def cmd_derive(args) -> int:
    spec = _builtin_or_file(args.spec)
    run = sample_run(spec, args.size, random.Random(args.seed))
    rng = random.Random(args.seed + 1) if args.shuffle else None
    execution = execution_from_derivation(run, rng)
    if args.out.endswith(".xml"):
        save_execution_xml(execution.insertions, args.out, spec.name)
    else:
        save_execution_json(execution.insertions, args.out, spec.name)
    print(f"derived run of {run.run_size()} vertices -> {args.out}")
    return 0


def cmd_label(args) -> int:
    spec = _builtin_or_file(args.spec)
    insertions = _load_execution(args.execution)
    try:
        scheme = scheme_registry.open_dynamic(
            args.scheme, spec, skeleton=args.skeleton, mode=args.mode
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from None
    for insertion in insertions:
        scheme.insert(insertion)
    save_labels(dict(scheme.labels), spec, args.out, scheme=scheme.name)
    bits = [scheme.label_bits_of(v) for v in scheme.labeled_vertices()]
    print(
        f"labeled {len(bits)} vertices with {scheme.name!r} -> {args.out} "
        f"(max {max(bits)} bits, avg {sum(bits) / len(bits):.1f})"
    )
    return 0


def cmd_query(args) -> int:
    spec = _builtin_or_file(args.spec)
    scheme_name, labels = load_label_store(spec, args.labels)
    scheme = scheme_registry.open_dynamic(
        scheme_name, spec, skeleton=args.skeleton
    )
    try:
        label_a, label_b = labels[args.source], labels[args.target]
    except KeyError as exc:
        raise SystemExit(f"vertex {exc} has no stored label")
    answer = scheme.reaches_labels(label_a, label_b)
    print(f"{args.source} ~> {args.target}: {answer}  [{scheme_name}]")
    return 0 if answer else 1


def cmd_schemes(args) -> int:
    for record in scheme_registry.describe():
        kind = "dynamic" if record["dynamic"] else "static"
        exact = "exact" if record["exact"] else "filter+fallback"
        spec = "spec-aware" if record["needs_spec"] else "spec-free"
        print(
            f"{record['name']:<15} {kind:<8} {exact:<16} {spec:<11} "
            f"{record['summary']}"
        )
    return 0


def cmd_normalize(args) -> int:
    spec = _builtin_or_file(args.spec)
    normalized, name_map = normalize_specification(spec)
    _save_spec(normalized, args.out)
    renamed = len(name_map.to_original)
    print(f"normalized -> {args.out} ({renamed} names rewritten)")
    for new, old in sorted(name_map.to_original.items())[:10]:
        print(f"  {new} <- {old}")
    return 0


def cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(["bench"] + args.experiments)


def _parse_endpoint(value: str, flag: str):
    """Parse one ``host:port`` argument into a ``(host, port)`` pair."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"{flag} must be host:port, got {value!r}")
    try:
        return (host, int(port))
    except ValueError:
        raise SystemExit(
            f"{flag} has a non-numeric port: {value!r}"
        ) from None


def cmd_serve(args) -> int:
    import sys

    from repro.faults import FAILPOINTS
    from repro.obs.logs import configure_logging
    from repro.obs.metrics import MetricsExporter
    from repro.service.server import ReproServer, ReproService, serve_stdio

    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0 (0 = in-process)")
    if args.workers and args.stdio:
        raise SystemExit("--stdio needs the in-process server; "
                         "drop --workers")
    if args.workers and args.metrics_port is not None:
        raise SystemExit(
            "--metrics-port needs the in-process server (workers are "
            "separate processes; scrape the 'metrics' op through the "
            "router instead); drop --workers or --metrics-port"
        )
    if args.data_dir and args.checkpoint_interval <= 0:
        raise SystemExit("--checkpoint-interval must be positive")
    if args.keep_generations < 1:
        raise SystemExit("--keep-generations must be >= 1")
    replicate_from = None
    if args.replicate_from:
        if args.workers:
            raise SystemExit(
                "--replicate-from pairs whole servers; a replica of a "
                "cluster follows each worker directly -- drop --workers"
            )
        if not args.data_dir:
            raise SystemExit("--replicate-from needs --data-dir (a "
                             "replica applies into its own WAL)")
        replicate_from = _parse_endpoint(args.replicate_from,
                                         "--replicate-from")
    repl_peers = tuple(
        _parse_endpoint(peer.strip(), "--peers")
        for peer in (args.peers or "").split(",") if peer.strip()
    )
    if args.repl_min_acks < 0:
        raise SystemExit("--repl-min-acks must be >= 0")
    try:
        FAILPOINTS.arm_from_env()
        if args.failpoints:
            FAILPOINTS.arm_from_spec(args.failpoints)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    # stderr always: stdout may be the protocol stream under --stdio
    configure_logging(level=args.log_level, fmt=args.log_format)
    if args.selftest:
        from repro.service.selftest import run_selftest, run_selftest_all_dynamic

        if args.scheme == "all":
            return run_selftest_all_dynamic(
                size=args.size, seed=args.seed, shards=args.shards,
                metrics_port=args.metrics_port, workers=args.workers,
            )
        return run_selftest(
            spec_name=args.spec, size=args.size, seed=args.seed,
            scheme=args.scheme, shards=args.shards,
            metrics_port=args.metrics_port, workers=args.workers,
        )
    if args.workers:
        from repro.service.cluster import ClusterSupervisor

        supervisor = ClusterSupervisor(
            workers=args.workers,
            host=args.host,
            port=args.port,
            cache_size=args.cache_size,
            shards=args.shards,
            data_dir=args.data_dir,
            fsync=args.fsync,
            checkpoint_interval=(
                args.checkpoint_interval if args.data_dir else None
            ),
            slow_threshold=args.slow_threshold,
            keep_generations=args.keep_generations,
        )
        supervisor.start()
        print(
            f"repro cluster listening on {args.host}:{supervisor.port} "
            f"({args.workers} workers x {args.shards} shards"
            + (f", durable under {args.data_dir}" if args.data_dir else "")
            + ")"
        )
        try:
            supervisor.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            supervisor.stop()
        return 0
    service = ReproService(
        cache_size=args.cache_size,
        shards=args.shards,
        data_dir=args.data_dir,
        fsync=args.fsync,
        checkpoint_interval=(
            args.checkpoint_interval if args.data_dir else None
        ),
        slow_threshold=args.slow_threshold,
        keep_generations=args.keep_generations,
        replicate_from=replicate_from,
        repl_peers=repl_peers,
        repl_min_acks=args.repl_min_acks,
        replica_id=args.replica_id,
    )
    exporter = None
    if args.metrics_port is not None:
        exporter = MetricsExporter(
            service.metrics.render_prometheus, port=args.metrics_port
        ).start()
        print(
            f"repro metrics on http://127.0.0.1:{exporter.port}/metrics",
            file=sys.stderr if args.stdio else sys.stdout,
        )
    if args.data_dir:
        recovered = [
            report["session"]
            for report in service.store.recovery
            if not report.get("skipped")
        ]
        print(
            f"repro service durable under {args.data_dir} "
            f"(fsync={args.fsync}, checkpoint every "
            f"{args.checkpoint_interval:.0f}s, "
            f"{len(recovered)} session(s) recovered"
            + (f": {', '.join(sorted(recovered))}" if recovered else "")
            + ")",
            # stdout is the protocol stream under --stdio
            file=sys.stderr if args.stdio else sys.stdout,
        )
    if replicate_from is not None:
        print(
            f"repro replica following "
            f"{replicate_from[0]}:{replicate_from[1]} "
            f"(read-only until promoted)",
            file=sys.stderr if args.stdio else sys.stdout,
        )
    try:
        if args.stdio:
            return serve_stdio(service, sys.stdin, sys.stdout)
        server = ReproServer((args.host, args.port), service)
        print(f"repro service listening on {args.host}:{server.port}")
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            server.server_close()
        return 0
    finally:
        service.close()
        if exporter is not None:
            exporter.stop()


def cmd_stats(args) -> int:
    import time

    from repro.errors import ReproError
    from repro.service.client import ServiceClient

    if not args.port:
        raise SystemExit("stats needs --port (the live server's TCP port)")

    def sample() -> int:
        try:
            with ServiceClient(args.host, args.port) as client:
                stats = client.stats()
                metrics = client.metrics()
        except (OSError, ReproError) as exc:
            print(f"stats: cannot reach {args.host}:{args.port}: {exc}")
            return 1
        # against a cluster the merged payload carries per-worker rows;
        # show each worker, then the merged total, so the dashboard
        # works unchanged against either serving tier
        per_worker = stats.get("per_worker") or []
        for row in per_worker:
            print(
                f"worker {row.get('worker')}: "
                f"sessions={row.get('sessions')} "
                f"queries={row.get('queries')} "
                f"hits={row.get('cache_hits')} "
                f"ingested={row.get('ingested')} "
                f"hit_rate={row.get('hit_rate', 0.0):.3f}"
            )
        total_tag = (
            f"total ({stats.get('workers')} workers): "
            if per_worker else ""
        )
        print(
            f"{total_tag}"
            f"sessions={stats.get('sessions')} "
            f"queries={stats.get('queries')} "
            f"hits={stats.get('cache_hits')} "
            f"misses={stats.get('cache_misses')} "
            f"errors={stats.get('query_errors')} "
            f"ingested={stats.get('ingested')} "
            f"cache={stats.get('cache_entries')}/"
            f"{stats.get('cache_capacity')}"
        )
        traces = metrics.get("traces", {})
        print(
            f"traces: finished={traces.get('finished')} "
            f"slow={traces.get('slow')} "
            f"(threshold {traces.get('slow_threshold_s')}s)"
        )
        rows = [h for h in metrics.get("histograms", []) if h.get("count")]
        if rows:
            print(
                f"{'series':<44} {'count':>8} {'mean':>9} "
                f"{'p50':>9} {'p95':>9} {'p99':>9}"
            )
        for row in rows:
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(row["labels"].items())
            )
            series = row["name"] + (f"{{{labels}}}" if labels else "")
            print(
                f"{series:<44} {row['count']:>8} "
                f"{_ms(row['mean']):>9} {_ms(row['p50']):>9} "
                f"{_ms(row['p95']):>9} {_ms(row['p99']):>9}"
            )
        return 0

    if not args.watch:
        return sample()
    try:
        while True:
            # clear + home, a terminal-friendly top for the service
            print("\x1b[2J\x1b[H", end="")
            print(f"repro stats {args.host}:{args.port} "
                  f"(every {args.interval:.1f}s, ctrl-C to stop)")
            sample()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _ms(seconds) -> str:
    """Render a seconds quantity as fixed-width milliseconds."""
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.3f}ms"


def cmd_lint(args) -> int:
    import json
    import os
    import time

    from repro.analysis import ALL_CHECKERS, RULE_IDS, lint
    from repro.analysis.baseline import (
        BASELINE_NAME,
        apply_baseline,
        load_baseline,
        write_baseline,
    )

    if args.list_rules:
        width = max(len(rule) for rule in RULE_IDS)
        for checker in ALL_CHECKERS:
            scope = "project" if checker.project else "file"
            print(f"{checker.rule:<{width}}  [{scope:>7}]  "
                  f"{checker.summary}")
        return 0
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    paths = args.paths
    if not paths:
        # default: the source tree and the tooling next to this package
        paths = [
            candidate
            for candidate in (os.path.join(root, "src"),
                              os.path.join(root, "tools"))
            if os.path.isdir(candidate)
        ] or ["."]
    rules = None
    if args.rules:
        rules = [part.strip() for part in args.rules.split(",")
                 if part.strip()]
    started = time.perf_counter()
    try:
        report = lint(paths, rules=rules, jobs=max(args.jobs, 1))
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    elapsed = time.perf_counter() - started

    baseline_path = args.baseline or os.path.join(root, BASELINE_NAME)
    if args.update_baseline:
        from pathlib import Path

        count = write_baseline(report, Path(baseline_path))
        print(f"lint: baseline updated with {count} finding(s) "
              f"-> {baseline_path}")
        return 0
    baselined = []
    if not args.no_baseline:
        from pathlib import Path

        try:
            baseline = load_baseline(Path(baseline_path))
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        report, baselined = apply_baseline(report, baseline)

    if args.graph:
        from repro.analysis.flow import flow_for

        dot = flow_for(report.project).to_dot(full=args.graph_full)
        with open(args.graph, "w", encoding="utf-8") as handle:
            handle.write(dot)
    if args.sarif:
        from repro.analysis.sarif import report_to_sarif

        document = report_to_sarif(report, ALL_CHECKERS)
        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")

    if args.json:
        payload = report.to_dict()
        payload["baselined"] = baselined
        payload["elapsed_seconds"] = round(elapsed, 6)
        print(json.dumps(payload, indent=2))
        return report.exit_code
    for finding in report.findings:
        print(finding.render())
    suffix = (
        f", {len(report.suppressed)} suppressed"
        if report.suppressed else ""
    )
    if baselined:
        suffix += f", {len(baselined)} baselined"
    print(
        f"lint: {len(report.findings)} finding(s) across "
        f"{report.files} file(s), {len(report.rules)} rule(s)"
        f"{suffix} in {elapsed:.2f}s"
        + (f" with {args.jobs} jobs" if args.jobs > 1 else "")
    )
    return report.exit_code


def cmd_loadgen(args) -> int:
    import json

    from repro.loadgen import (
        client_driver_factory,
        engine_driver_factory,
        get_scenario,
        run_scenario,
        scenarios,
    )

    from repro.loadgen.crash import (
        KILL_PRIMARY_SCENARIO,
        KILL_PRIMARY_SUMMARY,
        KILL_WORKER_SCENARIO,
        KILL_WORKER_SUMMARY,
        SCENARIO_NAME as CRASH_SCENARIO,
        SCENARIO_SUMMARY as CRASH_SUMMARY,
        run_crash_recovery,
        run_kill_primary,
        run_kill_worker,
    )

    if args.list:
        for name, scenario in sorted(scenarios().items()):
            print(f"{name:<24} {scenario.summary}")
        print(f"{CRASH_SCENARIO:<24} {CRASH_SUMMARY}")
        print(f"{KILL_WORKER_SCENARIO:<24} {KILL_WORKER_SUMMARY}")
        print(f"{KILL_PRIMARY_SCENARIO:<24} {KILL_PRIMARY_SUMMARY}")
        return 0
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.scenario in (CRASH_SCENARIO, KILL_WORKER_SCENARIO,
                         KILL_PRIMARY_SCENARIO):
        # not a closed-loop scenario: it owns its server subprocess
        if args.port:
            raise SystemExit(
                f"{args.scenario} manages its own server; drop --port"
            )
        try:
            if args.scenario == KILL_WORKER_SCENARIO:
                report = run_kill_worker(
                    data_dir=args.data_dir,
                    fsync=args.fsync,
                    kill_after=max(0.2, args.duration / 2),
                    seed=args.seed,
                    workers=args.cluster_workers,
                    verbose=not args.json,
                )
            elif args.scenario == KILL_PRIMARY_SCENARIO:
                report = run_kill_primary(
                    data_dir=args.data_dir,
                    fsync=args.fsync,
                    kill_after=max(0.2, args.duration / 2),
                    seed=args.seed,
                    replicas=args.replicas,
                    verbose=not args.json,
                )
            else:
                report = run_crash_recovery(
                    data_dir=args.data_dir,
                    fsync=args.fsync,
                    kill_after=max(0.2, args.duration / 2),
                    seed=args.seed,
                    verbose=not args.json,
                )
        except ReproError as exc:
            raise SystemExit(str(exc)) from None
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            for error in report.errors:
                print(f"loadgen: ERROR {error}")
            print(
                f"loadgen: {args.scenario} "
                f"{'PASSED' if report.ok else 'FAILED'} "
                f"-- {report.acknowledged} acknowledged, "
                f"{len(report.lost)} lost, {report.verified_pairs} "
                f"answers BFS-verified ({report.wrong_answers} wrong)"
                + (
                    f", {report.worker_restarts} worker restart(s)"
                    if args.scenario == KILL_WORKER_SCENARIO
                    else ""
                )
                + (
                    f", promoted port {report.promoted_port} at "
                    f"epoch {report.promoted_epoch}"
                    if args.scenario == KILL_PRIMARY_SCENARIO
                    else ""
                )
            )
        return 0 if report.ok else 1
    try:
        scenario = get_scenario(args.scenario)
    except ReproError as exc:
        raise SystemExit(str(exc)) from None
    if args.port:
        factory = client_driver_factory(args.host, args.port)
        where = f"tcp://{args.host}:{args.port}"
    else:
        from repro.service import QueryEngine, SessionManager

        manager = SessionManager(shards=args.shards)
        engine = QueryEngine(
            manager, cache_size=args.cache_size, shards=args.shards
        )
        factory = engine_driver_factory(engine)
        where = f"in-process ({args.shards} shards)"
    if not args.json:
        print(
            f"loadgen: scenario {scenario.name!r} for {args.duration:.1f}s "
            f"against {where}"
        )
    report = run_scenario(
        scenario,
        factory,
        duration=args.duration,
        workers=args.workers,
        seed=args.seed,
        verify=args.verify,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(
            f"loadgen: {report.operations} ops in {report.elapsed:.2f}s -- "
            f"{report.qps:,.0f} queries/sec ({report.queries} queries), "
            f"{report.ingest_eps:,.0f} events/sec ({report.ingested} "
            f"events), {report.sessions_created} sessions"
        )
        for kind, latency in (
            ("query", report.query_latency),
            ("ingest", report.ingest_latency),
        ):
            if latency.get("count"):
                print(
                    f"loadgen: {kind} latency p50={_ms(latency['p50'])} "
                    f"p95={_ms(latency['p95'])} p99={_ms(latency['p99'])} "
                    f"max={_ms(latency['max'])}"
                )
        for error in report.errors:
            print(f"loadgen: ERROR {error}")
    return 0 if report.ok else 1


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic reachability labeling for workflow executions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="inspect a specification")
    p.add_argument("spec", help="spec file (.json/.xml) or a builtin name")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("derive", help="sample a run, write its execution log")
    p.add_argument("spec")
    p.add_argument("-o", "--out", required=True)
    p.add_argument("--size", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shuffle", action="store_true",
                   help="random topological order instead of deterministic")
    p.set_defaults(func=cmd_derive)

    dynamic_schemes = scheme_registry.available(dynamic=True)

    p = sub.add_parser("label", help="label an execution log on-the-fly")
    p.add_argument("spec")
    p.add_argument("execution")
    p.add_argument("-o", "--out", required=True)
    p.add_argument("--scheme", choices=dynamic_schemes, default="drl",
                   help="dynamic labeling backend (see 'repro schemes')")
    p.add_argument("--skeleton", choices=["tcl", "bfs"], default="tcl")
    p.add_argument("--mode", choices=["name", "logged"], default="logged")
    p.set_defaults(func=cmd_label)

    p = sub.add_parser("query", help="answer reachability from stored labels")
    p.add_argument("spec")
    p.add_argument("labels")
    p.add_argument("source", type=int)
    p.add_argument("target", type=int)
    p.add_argument("--skeleton", choices=["tcl", "bfs"], default="tcl")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("schemes", help="list the registered labeling backends")
    p.set_defaults(func=cmd_schemes)

    p = sub.add_parser("normalize", help="rewrite to the naming conditions")
    p.add_argument("spec")
    p.add_argument("-o", "--out", required=True)
    p.set_defaults(func=cmd_normalize)

    p = sub.add_parser("bench", help="regenerate the paper's tables")
    p.add_argument("experiments", nargs="*")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("serve", help="run the provenance query service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--stdio", action="store_true",
                   help="speak the protocol over stdin/stdout instead")
    p.add_argument("--cache-size", type=int, default=65536,
                   help="query cache capacity, in entries")
    p.add_argument("--shards", type=int, default=4,
                   help="lock stripes for the session registry and "
                        "query cache (1 = the classic single lock)")
    p.add_argument("--workers", type=int, default=0,
                   help="fork this many worker processes, each owning "
                        "a disjoint slice of sessions by stable name "
                        "hash, behind a hash-routing frontend -- the "
                        "multi-core path (0 = today's in-process "
                        "threaded server)")
    p.add_argument("--data-dir", default=None,
                   help="durability: recover every session found here "
                        "on boot, then write-ahead-log all ingests "
                        "(with --workers: one subdir per worker)")
    p.add_argument("--fsync", choices=["always", "batch", "never"],
                   default="always",
                   help="WAL fsync policy (with --data-dir): 'always' "
                        "fsyncs every ingest before acknowledging it, "
                        "'batch' amortizes, 'never' leaves it to the OS")
    p.add_argument("--checkpoint-interval", type=float, default=30.0,
                   help="with --data-dir: seconds between background "
                        "rolls of outstanding WALs into checkpoints")
    p.add_argument("--keep-generations", type=int, default=1,
                   help="with --data-dir: retain this many checkpoint "
                        "generations per session for 'as_of' time-"
                        "travel reads (1 = only the current one)")
    p.add_argument("--replicate-from", default=None, metavar="HOST:PORT",
                   help="run as a read replica of the primary at this "
                        "address (needs --data-dir): apply its shipped "
                        "WAL stream, serve reads, accept 'promote'")
    p.add_argument("--peers", default=None, metavar="H:P,H:P",
                   help="replica only: other endpoints to probe for "
                        "the new primary after a failover")
    p.add_argument("--repl-min-acks", type=int, default=0,
                   help="primary only: acknowledge an ingest only "
                        "after this many replicas cover it (0 = "
                        "asynchronous shipping)")
    p.add_argument("--replica-id", default=None,
                   help="replica only: stable id reported in acks "
                        "(default: one derived from host/pid)")
    p.add_argument("--failpoints", default=None, metavar="SPEC",
                   help="arm deterministic failpoints, e.g. "
                        "'wal.pre_fsync=crash,ckpt.pre_flip=raise@2' "
                        "(also read from $REPRO_FAILPOINTS)")
    from repro.obs.logs import LOG_FORMATS, LOG_LEVELS
    from repro.service.server import DEFAULT_SLOW_THRESHOLD

    p.add_argument("--metrics-port", type=int, default=None,
                   help="expose Prometheus text metrics on this HTTP "
                        "port (0 picks an ephemeral one); with "
                        "--selftest, also scrape-validate the endpoint")
    p.add_argument("--log-level", choices=list(LOG_LEVELS), default="info",
                   help="structured event log verbosity (on stderr)")
    p.add_argument("--log-format", choices=list(LOG_FORMATS), default="text",
                   help="event log rendering: human text or JSON lines")
    p.add_argument("--slow-threshold", type=float,
                   default=DEFAULT_SLOW_THRESHOLD,
                   help="requests slower than this many seconds are "
                        "dumped to the slow-query log with their full "
                        "span timeline")
    p.add_argument("--selftest", action="store_true",
                   help="run one scripted session end-to-end and exit")
    p.add_argument("--scheme", choices=dynamic_schemes + ["all"],
                   default="drl",
                   help="selftest: dynamic scheme to exercise "
                        "('all' sweeps every registered one)")
    p.add_argument("--spec", default=None,
                   help="selftest: spec to exercise (default: one the "
                        "chosen scheme supports)")
    p.add_argument("--size", type=int, default=300,
                   help="selftest: run size in vertices")
    p.add_argument("--seed", type=int, default=0,
                   help="selftest: RNG seed")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("loadgen",
                       help="replay a synthesized load scenario")
    p.add_argument("scenario", nargs="?", default="mixed",
                   help="scenario name (see --list); default: mixed")
    p.add_argument("--list", action="store_true",
                   help="list the scenario catalog and exit")
    p.add_argument("--duration", type=float, default=5.0,
                   help="seconds of closed-loop load per worker")
    p.add_argument("--workers", type=int, default=None,
                   help="worker threads (default: the scenario's "
                        "session count)")
    p.add_argument("--shards", type=int, default=4,
                   help="in-process only: engine lock stripes")
    p.add_argument("--cache-size", type=int, default=65536,
                   help="in-process only: query cache capacity")
    p.add_argument("--host", default="127.0.0.1",
                   help="drive a live server at this host (with --port)")
    p.add_argument("--port", type=int, default=0,
                   help="drive a live server over TCP instead of an "
                        "in-process engine (0 = in-process)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload synthesis RNG seed")
    p.add_argument("--verify", action="store_true",
                   help="check every answer against BFS ground truth "
                        "(slow; smoke tests)")
    p.add_argument("--data-dir", default=None,
                   help="crash-recovery only: durable data dir for the "
                        "spawned server (default: a temp dir)")
    p.add_argument("--fsync", choices=["always", "batch", "never"],
                   default="always",
                   help="crash-recovery only: the spawned server's WAL "
                        "fsync policy")
    p.add_argument("--cluster-workers", type=int, default=2,
                   help="kill-worker only: worker processes in the "
                        "spawned cluster (>= 2)")
    p.add_argument("--replicas", type=int, default=2,
                   help="kill-primary only: read replicas following "
                        "the spawned primary (>= 1)")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("lint",
                       help="run the AST invariant lint suite "
                            "(repro.analysis)")
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint (default: the "
                        "repo's src/ and tools/)")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule ids to run "
                        "(default: all; see --list-rules)")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="run the per-file rules across N processes "
                        "(default: 1, serial)")
    p.add_argument("--graph", default=None, metavar="OUT.dot",
                   help="write the interprocedural call/lock graph "
                        "as Graphviz DOT (pruned to lock-relevant "
                        "functions; --graph-full for everything)")
    p.add_argument("--graph-full", action="store_true",
                   help="with --graph: keep every function, not just "
                        "the lock-relevant slice")
    p.add_argument("--sarif", default=None, metavar="OUT.sarif",
                   help="also write the report as SARIF 2.1.0 "
                        "(GitHub code scanning)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="findings baseline to subtract "
                        "(default: .reprolint-baseline.json next to "
                        "the anchored tree, when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="accept every current finding into the "
                        "baseline file and exit 0")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("stats",
                       help="poll a live server's stats and latency "
                            "percentiles")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="the live server's TCP port")
    p.add_argument("--watch", action="store_true",
                   help="keep refreshing instead of sampling once")
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh period under --watch, in seconds")
    p.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
