"""The name-keyed scheme registry.

One flat namespace of reachability schemes, the piece every consumer
shares: the service resolves a session's wire-visible ``scheme`` field
here, the CLI turns ``--scheme`` arguments into labelers here, and the
benchmarks/conformance tests iterate :func:`available` instead of
hand-constructing scheme objects.

Registering is declarative::

    @register
    class MyScheme(DynamicScheme):
        name = "my-scheme"
        capabilities = SchemeCapabilities(...)

Names are case-insensitive and normalized to lower-case kebab form.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Type

from repro.errors import LabelingError, ServiceError
from repro.schemes.base import DynamicScheme, Scheme, Workload
from repro.workflow.specification import Specification

_REGISTRY: Dict[str, Type[Scheme]] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register(cls: Type[Scheme]) -> Type[Scheme]:
    """Class decorator: add a scheme class under its ``name``."""
    name = _normalize(cls.name)
    if not name or name == "abstract":
        raise LabelingError(f"scheme class {cls.__name__} has no usable name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise LabelingError(
            f"scheme name {name!r} already registered by "
            f"{existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def get(name: str) -> Type[Scheme]:
    """The scheme class registered under ``name``.

    Raises :class:`LabelingError` for unknown names (the service maps it
    to its wire code, the CLI to an exit message).
    """
    try:
        return _REGISTRY[_normalize(name)]
    except KeyError:
        raise LabelingError(
            f"unknown scheme {name!r}; available: {available()}"
        ) from None


def available(dynamic: Optional[bool] = None) -> List[str]:
    """Registered scheme names, sorted; filter by the dynamic capability."""
    names = [
        name
        for name, cls in _REGISTRY.items()
        if dynamic is None or cls.capabilities.dynamic == dynamic
    ]
    return sorted(names)


def describe() -> List[Dict[str, Any]]:
    """One capability record per registered scheme (wire-serializable)."""
    records = []
    for name in available():
        cls = _REGISTRY[name]
        doc = (cls.__doc__ or "").strip().splitlines()
        record: Dict[str, Any] = {"name": name}
        record.update(cls.capabilities.to_dict())
        record["summary"] = doc[0] if doc else ""
        records.append(record)
    return records


def open_dynamic(
    name: str, spec: Optional[Specification] = None, **options: Any
) -> DynamicScheme:
    """An empty dynamic scheme ready to ingest, validated by capability.

    The service's session layer calls this with the wire-visible scheme
    name; asking for a static scheme is a :class:`ServiceError` (static
    schemes need the frozen run, which a live session never has).
    """
    cls = get(name)
    if not cls.capabilities.dynamic:
        raise ServiceError(
            f"scheme {cls.name!r} is static (needs the whole run); "
            f"dynamic schemes: {available(dynamic=True)}"
        )
    assert issubclass(cls, DynamicScheme)
    return cls.open(spec, **options)


def build(name: str, workload: Workload, **options: Any) -> Scheme:
    """Build any registered scheme, fully labeled, over one workload."""
    return get(name).build(workload, **options)
