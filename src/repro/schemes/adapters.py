"""Adapters: every existing labeling class behind the scheme protocol.

Each adapter is deliberately thin -- it owns configuration and label
bookkeeping but delegates all per-scheme math to the labeling classes
in :mod:`repro.labeling`, which keep their original APIs.  What the
adapters normalize is exactly the historical drift: one ``reaches``
query method, one ``build``/``open`` construction path, one bit
accounting surface, one capability record per scheme.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

import random

from repro.errors import LabelingError
from repro.labeling.chains import ChainIndex
from repro.labeling.compact import CompactDRL
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.labeling.grail import GrailIndex
from repro.labeling.naive_dynamic import NaiveDynamicScheme
from repro.labeling.path_position import PathPositionScheme, runs_are_paths
from repro.labeling.skl import SKL
from repro.labeling.tree_transform import TreeTransformIndex
from repro.labeling.twohop import TwoHopIndex
from repro.schemes.base import (
    DynamicScheme,
    SchemeCapabilities,
    StaticScheme,
    Workload,
)
from repro.schemes.registry import register
from repro.workflow.execution import Insertion
from repro.workflow.grammar import analyze_grammar
from repro.workflow.specification import Specification


# ---------------------------------------------------------------------------
# dynamic schemes
# ---------------------------------------------------------------------------


@register
class DRLScheme(DynamicScheme):
    """The paper's DRL: logarithmic labels, O(1) queries, on-the-fly.

    Labels use the packed integer representation of
    :mod:`repro.labeling.compact` by default (same answers, same bit
    accounting, a fraction of the per-query cost); pass
    ``packed=False`` to run the reference entry-tuple representation
    instead -- benchmarks do, to measure the gap.
    """

    name = "drl"
    capabilities = SchemeCapabilities(
        dynamic=True, exact=True, needs_spec=True, batch=True
    )

    def __init__(self, drl: DRL, labeler: DRLExecutionLabeler) -> None:
        self.drl = drl
        self.labeler = labeler
        self.skeleton = getattr(drl.skeleton, "name", "tcl").lower()
        self.mode = labeler.mode
        self.packed = getattr(drl, "packed", False)

    @classmethod
    def _open(
        cls,
        spec: Optional[Specification],
        skeleton: str = "tcl",
        mode: str = "logged",
        packed: bool = True,
        **_options: Any,
    ) -> "DRLScheme":
        drl_cls = CompactDRL if packed else DRL
        drl = drl_cls(spec, skeleton=skeleton)
        return cls(drl, DRLExecutionLabeler(drl, mode=mode))

    def insert(self, insertion: Insertion) -> Any:
        return self.labeler.insert(insertion)

    @property
    def labels(self) -> Dict[int, Any]:
        return self.labeler.labels

    def reaches_labels(self, label_u: Any, label_v: Any) -> bool:
        return self.drl.query(label_u, label_v)

    def reaches(self, u: int, v: int) -> bool:
        # the generic DynamicScheme.reaches pays three extra call
        # frames per probe (label_of twice + reaches_labels); on the
        # innermost loop that dispatch costs more than the kernel
        labels = self.labeler.labels
        try:
            label_u = labels[u]
            label_v = labels[v]
        except KeyError as exc:
            raise LabelingError(f"vertex {exc} has no label") from None
        return self.drl.query(label_u, label_v)

    def query_many(self, pairs: Iterable[Sequence[int]]) -> List[bool]:
        if not isinstance(pairs, (list, tuple)):
            pairs = list(pairs)
        try:
            return self.drl.query_many_from(self.labeler.labels, pairs)
        except KeyError as exc:
            raise LabelingError(f"vertex {exc} has no label") from None

    def label_bits_of(self, vid: int) -> int:
        return self.drl.label_bits(self.label_of(vid))


@register
class NaiveScheme(DynamicScheme):
    """Section 3.2's naive dynamic scheme: n-1-bit labels, any DAG."""

    name = "naive"
    capabilities = SchemeCapabilities(
        dynamic=True, exact=True, needs_spec=False, batch=True
    )

    def __init__(self) -> None:
        self.inner = NaiveDynamicScheme()

    @classmethod
    def _open(
        cls, spec: Optional[Specification], **_options: Any
    ) -> "NaiveScheme":
        return cls()

    def insert(self, insertion: Insertion) -> Any:
        return self.inner.insert(insertion.vid, insertion.preds)

    @property
    def labels(self) -> Dict[int, Any]:
        return self.inner.labels

    def reaches_labels(self, label_u: Any, label_v: Any) -> bool:
        return NaiveDynamicScheme.query(label_u, label_v)

    def reaches(self, u: int, v: int) -> bool:
        labels = self.inner.labels
        try:
            label_u = labels[u]
            label_v = labels[v]
        except KeyError as exc:
            raise LabelingError(f"vertex {exc} has no label") from None
        rank_u = label_u.index
        rank_v = label_v.index
        if rank_u == rank_v:
            return True
        if rank_u > rank_v:
            return False
        return bool(label_v.ancestors >> (rank_u - 1) & 1)

    def query_many(self, pairs: Iterable[Sequence[int]]) -> List[bool]:
        # the query is a rank compare plus one shift-and-mask; inlining
        # it removes a method dispatch and a dataclass call per pair
        labels = self.inner.labels
        answers: List[bool] = []
        append = answers.append
        try:
            for pair in pairs:
                label_u = labels[pair[0]]
                label_v = labels[pair[1]]
                rank_u = label_u.index
                rank_v = label_v.index
                if rank_u == rank_v:
                    append(True)
                elif rank_u > rank_v:
                    append(False)
                else:
                    append(bool(label_v.ancestors >> (rank_u - 1) & 1))
        except KeyError as exc:
            raise LabelingError(f"vertex {exc} has no label") from None
        return answers

    def label_bits_of(self, vid: int) -> int:
        return self.label_of(vid).bits


@register
class PathPositionAdapter(DynamicScheme):
    """Example 15's position labels, sound only for path-shaped runs."""

    name = "path-position"
    capabilities = SchemeCapabilities(
        dynamic=True, exact=True, needs_spec=True, batch=True
    )

    def __init__(self, inner: PathPositionScheme) -> None:
        self.inner = inner

    @classmethod
    def supports(cls, workload: Workload) -> Optional[str]:
        reason = super().supports(workload)
        if reason is not None:
            return reason
        if not runs_are_paths(workload.spec):
            return (
                "path-position needs a specification whose every run is "
                "a simple path"
            )
        return None

    @classmethod
    def _open(
        cls, spec: Optional[Specification], **_options: Any
    ) -> "PathPositionAdapter":
        return cls(PathPositionScheme(spec))

    def insert(self, insertion: Insertion) -> Any:
        return self.inner.insert(insertion.vid, insertion.preds)

    @property
    def labels(self) -> Dict[int, Any]:
        return self.inner.labels

    def reaches_labels(self, label_u: Any, label_v: Any) -> bool:
        return PathPositionScheme.query(label_u, label_v)

    def reaches(self, u: int, v: int) -> bool:
        labels = self.inner.labels
        try:
            return labels[u] <= labels[v]
        except KeyError as exc:
            raise LabelingError(f"vertex {exc} has no label") from None

    def query_many(self, pairs: Iterable[Sequence[int]]) -> List[bool]:
        # a position label *is* an int: the whole batch is <= compares
        labels = self.inner.labels
        try:
            return [labels[pair[0]] <= labels[pair[1]] for pair in pairs]
        except KeyError as exc:
            raise LabelingError(f"vertex {exc} has no label") from None

    def label_bits_of(self, vid: int) -> int:
        return PathPositionScheme.label_bits(self.label_of(vid))


# ---------------------------------------------------------------------------
# static schemes
# ---------------------------------------------------------------------------


@register
class SKLScheme(StaticScheme):
    """The SKL static baseline [Bao et al. 2010]: whole run required."""

    name = "skl"
    capabilities = SchemeCapabilities(
        dynamic=False, exact=True, needs_spec=True
    )

    def __init__(self, skl: SKL, labels: Dict[int, Any]) -> None:
        self.skl = skl
        self._labels = labels

    @classmethod
    def supports(cls, workload: Workload) -> Optional[str]:
        reason = super().supports(workload)
        if reason is not None:
            return reason
        if workload.derivation is None:
            return "skl labels whole recorded runs (needs a derivation)"
        if analyze_grammar(workload.spec).is_recursive:
            return "skl supports only non-recursive workflows"
        return None

    @classmethod
    def _build(
        cls, workload: Workload, skeleton: str = "tcl", **_options: Any
    ) -> "SKLScheme":
        skl = SKL(workload.spec, skeleton=skeleton)
        return cls(skl, skl.label_run(workload.derivation))

    def reaches(self, u: int, v: int) -> bool:
        return self.skl.query(self.label_of(u), self.label_of(v))

    def label_of(self, vid: int) -> Any:
        try:
            return self._labels[vid]
        except KeyError:
            raise LabelingError(f"vertex {vid} has no label") from None

    def labeled_vertices(self) -> Iterable[int]:
        return self._labels.keys()

    def label_bits_of(self, vid: int) -> int:
        return self.skl.label_bits(self.label_of(vid))


class _IndexScheme(StaticScheme):
    """Shared plumbing for the general-purpose static DAG indexes."""

    def __init__(self, index: Any, graph: Any) -> None:
        self.index = index
        self.graph = graph

    def reaches(self, u: int, v: int) -> bool:
        return self.index.reaches(u, v)

    def label_of(self, vid: int) -> Any:
        return self.index.label(vid)

    def labeled_vertices(self) -> Iterable[int]:
        return self.graph.vertices()

    def total_bits(self) -> int:
        return self.index.total_bits()


@register
class GrailScheme(_IndexScheme):
    """GRAIL [24]: k random interval labels; filter + guided fallback."""

    name = "grail"
    capabilities = SchemeCapabilities(
        dynamic=False, exact=False, needs_spec=False
    )

    @classmethod
    def _build(
        cls,
        workload: Workload,
        traversals: int = 3,
        rng: Optional[random.Random] = None,
        **_options: Any,
    ) -> "GrailScheme":
        graph = workload.graph
        index = GrailIndex(
            graph, traversals=traversals, rng=rng or random.Random(0)
        )
        return cls(index, graph)

    def label_bits_of(self, vid: int) -> int:
        return self.index.label(vid).bits


@register
class TwoHopScheme(_IndexScheme):
    """2-hop cover [9] via pruned landmark labeling; exact and static."""

    name = "twohop"
    capabilities = SchemeCapabilities(
        dynamic=False, exact=True, needs_spec=False
    )

    @classmethod
    def _build(cls, workload: Workload, **_options: Any) -> "TwoHopScheme":
        graph = workload.graph
        return cls(TwoHopIndex(graph), graph)

    def label_bits_of(self, vid: int) -> int:
        return self.index.label_bits(self.index.label(vid))


@register
class ChainScheme(_IndexScheme):
    """Chain-decomposition closure compression [15]; exact and static."""

    name = "chains"
    capabilities = SchemeCapabilities(
        dynamic=False, exact=True, needs_spec=False
    )

    @classmethod
    def _build(cls, workload: Workload, **_options: Any) -> "ChainScheme":
        graph = workload.graph
        return cls(ChainIndex(graph), graph)

    def label_bits_of(self, vid: int) -> int:
        return self.index.label_bits(self.index.label(vid))


@register
class TreeTransformScheme(_IndexScheme):
    """DAG-to-tree unfolding [13]; exact, static, can blow up."""

    name = "tree-transform"
    capabilities = SchemeCapabilities(
        dynamic=False, exact=True, needs_spec=False
    )

    @classmethod
    def _build(
        cls, workload: Workload, max_tree_size: int = 200_000, **_options: Any
    ) -> "TreeTransformScheme":
        graph = workload.graph
        index = TreeTransformIndex(graph, max_tree_size=max_tree_size)
        return cls(index, graph)

    def label_bits_of(self, vid: int) -> int:
        return self.index.label_bits(self.index.label(vid))
