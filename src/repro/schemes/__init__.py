"""Pluggable reachability schemes behind one capability-typed protocol.

* :mod:`repro.schemes.base` -- the protocol: :class:`Scheme` with the
  one canonical ``reaches(u, v)`` query method, split into
  :class:`StaticScheme` (frozen DAG) and :class:`DynamicScheme`
  (incremental ``insert``), plus :class:`SchemeCapabilities` flags
  (``dynamic``, ``exact``, ``needs_spec``) and the :class:`Workload`
  construction context.
* :mod:`repro.schemes.adapters` -- thin adapters conforming every
  labeling class (DRL, naive, SKL, GRAIL, 2-hop, chains, tree
  transform, path positions) without changing their per-scheme math.
* :mod:`repro.schemes.registry` -- the name-keyed registry
  (``get``/``register``/``available``/``open_dynamic``/``build``)
  shared by the service (wire-visible ``scheme`` session field), the
  CLI (``--scheme``) and the registry-driven benchmarks.
"""

from repro.schemes.base import (
    DynamicScheme,
    Scheme,
    SchemeCapabilities,
    StaticScheme,
    Workload,
)
from repro.schemes import registry
from repro.schemes import adapters as _adapters  # noqa: F401  (populates registry)
from repro.schemes.registry import available, build, get, open_dynamic

__all__ = [
    "Scheme",
    "StaticScheme",
    "DynamicScheme",
    "SchemeCapabilities",
    "Workload",
    "registry",
    "get",
    "available",
    "build",
    "open_dynamic",
]
