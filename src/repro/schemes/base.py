"""The scheme protocol: one typed interface over every labeling scheme.

The repository hosts many reachability schemes -- the paper's DRL, the
Section 3.2 naive dynamic scheme, the SKL static baseline, and the
general-purpose index family (GRAIL, 2-hop, chains, tree transform,
path positions).  Each grew its own ad-hoc API (``label/query/reaches/
may_reach/total_bits``); this module defines the single protocol they
all conform to through thin adapters (:mod:`repro.schemes.adapters`),
so the service, the CLI and the benchmarks can swap schemes per
workload the way the reachability-index literature treats GRAIL and
2-hop as interchangeable indexes.

Capability typing
-----------------
:class:`SchemeCapabilities` records what a scheme can do, statically:

* ``dynamic`` -- vertices are labeled incrementally as they are
  inserted and labels never change (:class:`DynamicScheme`); static
  schemes need the frozen run up front (:class:`StaticScheme`);
* ``exact`` -- a label-only comparison answers reachability exactly.
  GRAIL's interval containment is only a *necessary* condition: a
  positive filter answer falls back to a guided graph search, so its
  ``exact`` flag is False (``reaches`` is still always correct);
* ``needs_spec`` -- the scheme exploits the workflow specification
  (DRL, SKL, path positions); spec-free schemes index any DAG.

The one protocol query method is :meth:`Scheme.reaches`; the drifted
historical names (``query`` over vertex ids, ``may_reach``) survive as
deprecation shims on the base class.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
)

from repro.errors import LabelingError, UnsupportedWorkflowError
from repro.workflow.derivation import Derivation
from repro.workflow.execution import Insertion
from repro.workflow.specification import Specification


@dataclass(frozen=True)
class SchemeCapabilities:
    """What a registered scheme supports, decidable without building it."""

    dynamic: bool
    exact: bool
    needs_spec: bool
    #: the scheme ships a specialized :meth:`Scheme.query_many` batch
    #: kernel (the base-class default -- a per-pair loop over
    #: :meth:`Scheme.reaches` -- is always available as the fallback)
    batch: bool = False

    def to_dict(self) -> Dict[str, bool]:
        return {
            "dynamic": self.dynamic,
            "exact": self.exact,
            "needs_spec": self.needs_spec,
            "batch": self.batch,
        }


class Workload:
    """Everything a scheme may need to label one run.

    Static schemes consume the frozen ``graph`` (and, for SKL, the
    ``spec`` + ``derivation``); dynamic schemes consume the
    ``insertions`` stream.  All views are derived lazily from whatever
    the caller provides, so graph-only workloads (random DAGs) and full
    workflow runs share one type.
    """

    def __init__(
        self,
        spec: Optional[Specification] = None,
        derivation: Optional[Derivation] = None,
        graph=None,
        insertions: Optional[Sequence[Insertion]] = None,
    ) -> None:
        self.spec = spec
        self.derivation = derivation
        self._graph = graph
        self._insertions = list(insertions) if insertions is not None else None

    @classmethod
    def from_run(
        cls, spec: Specification, derivation: Derivation
    ) -> "Workload":
        """The workload of one sampled/recorded workflow run."""
        return cls(spec=spec, derivation=derivation)

    @classmethod
    def from_graph(cls, graph) -> "Workload":
        """A spec-free workload: just a frozen DAG."""
        return cls(graph=graph)

    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The frozen run DAG (materialized from the derivation)."""
        if self._graph is None:
            if self.derivation is None:
                raise LabelingError("workload has neither graph nor derivation")
            self._graph = self.derivation.graph
        return self._graph

    @property
    def insertions(self) -> List[Insertion]:
        """A topological insertion stream over the run."""
        if self._insertions is None:
            if self.derivation is None:
                graph = self.graph
                self._insertions = [
                    Insertion(
                        vid=v,
                        name=graph.name(v),
                        preds=frozenset(graph.predecessors(v)),
                    )
                    for v in graph.topological_order()
                ]
            else:
                from repro.workflow.execution import execution_from_derivation

                self._insertions = list(
                    execution_from_derivation(self.derivation).insertions
                )
        return self._insertions


class Scheme(ABC):
    """One built reachability scheme over one run: the shared protocol.

    Every adapter answers :meth:`reaches` over *vertex ids* (reflexive,
    always exact -- inexact filters fall back internally), exposes the
    per-vertex labels it assigned, and accounts its storage in bits.
    """

    name: ClassVar[str] = "abstract"
    capabilities: ClassVar[SchemeCapabilities]

    # -- construction ---------------------------------------------------
    @classmethod
    def supports(cls, workload: Workload) -> Optional[str]:
        """None when the scheme can label ``workload``, else the reason.

        The default implementation only enforces the ``needs_spec``
        capability; adapters refine it (SKL rejects recursive grammars,
        path positions reject non-path run languages).
        """
        if cls.capabilities.needs_spec and workload.spec is None:
            return f"{cls.name} needs a workflow specification"
        return None

    @classmethod
    @abstractmethod
    def build(cls, workload: Workload, **options: Any) -> "Scheme":
        """A fully labeled instance over ``workload``.

        Raises :class:`UnsupportedWorkflowError` when :meth:`supports`
        would have returned a reason.
        """

    @classmethod
    def check_supported(cls, workload: Workload) -> None:
        reason = cls.supports(workload)
        if reason is not None:
            raise UnsupportedWorkflowError(reason)

    # -- the protocol query method --------------------------------------
    @abstractmethod
    def reaches(self, u: int, v: int) -> bool:
        """Does vertex ``u`` reach vertex ``v``?  Reflexive and exact."""

    def query_many(self, pairs: Iterable[Sequence[int]]) -> List[bool]:
        """Batch :meth:`reaches` over ``(u, v)`` vertex pairs.

        This default is the universal per-pair fallback; schemes whose
        capability record sets ``batch`` override it with a kernel that
        hoists dispatch out of the loop (packed DRL's integer LCA scan,
        the naive scheme's shift-and-mask, path positions' integer
        compare).  Answers are identical either way.
        """
        reaches = self.reaches
        return [reaches(pair[0], pair[1]) for pair in pairs]

    # -- labels and accounting ------------------------------------------
    @abstractmethod
    def label_of(self, vid: int) -> Any:
        """The label assigned to ``vid`` (scheme-specific type)."""

    @abstractmethod
    def labeled_vertices(self) -> Iterable[int]:
        """The vertex ids this scheme has labeled."""

    @abstractmethod
    def label_bits_of(self, vid: int) -> int:
        """Accounted size of one vertex's label, in bits."""

    def total_bits(self) -> int:
        """Total accounted label storage, in bits."""
        return sum(self.label_bits_of(v) for v in self.labeled_vertices())

    # -- deprecation shims for the historical naming drift ---------------
    def query(self, u: int, v: int) -> bool:
        """Deprecated vertex-id alias of :meth:`reaches`."""
        warnings.warn(
            f"{type(self).__name__}.query(u, v) is deprecated; "
            "use reaches(u, v)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.reaches(u, v)

    def may_reach(self, u: int, v: int) -> bool:
        """Deprecated alias of :meth:`reaches` (GRAIL's historical name).

        Despite the name this answers *exactly*: inexact filters fall
        back internally, as :meth:`reaches` always has.
        """
        warnings.warn(
            f"{type(self).__name__}.may_reach(u, v) is deprecated; "
            "use reaches(u, v)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.reaches(u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class StaticScheme(Scheme):
    """A scheme built over a frozen, fully known run graph."""

    @classmethod
    def build(cls, workload: Workload, **options: Any) -> "StaticScheme":
        cls.check_supported(workload)
        return cls._build(workload, **options)

    @classmethod
    @abstractmethod
    def _build(cls, workload: Workload, **options: Any) -> "StaticScheme":
        """Construct the fully labeled instance (support already checked)."""


class DynamicScheme(Scheme):
    """A scheme labeling vertices as they are inserted, labels final.

    Instances come in two ways: :meth:`open` starts an *empty* scheme
    ready for incremental :meth:`insert` calls (what a service session
    does), and :meth:`build` replays a whole workload through it (what
    benchmarks and conformance tests do).
    """

    @classmethod
    def open(
        cls, spec: Optional[Specification] = None, **options: Any
    ) -> "DynamicScheme":
        """An empty instance ready to ingest an insertion stream."""
        if cls.capabilities.needs_spec and spec is None:
            raise UnsupportedWorkflowError(
                f"{cls.name} needs a workflow specification"
            )
        return cls._open(spec, **options)

    @classmethod
    @abstractmethod
    def _open(
        cls, spec: Optional[Specification], **options: Any
    ) -> "DynamicScheme":
        """Construct the empty instance (spec requirement already checked)."""

    @classmethod
    def build(cls, workload: Workload, **options: Any) -> "DynamicScheme":
        cls.check_supported(workload)
        scheme = cls._open(workload.spec, **options)
        scheme.insert_all(workload.insertions)
        return scheme

    # ------------------------------------------------------------------
    @abstractmethod
    def insert(self, insertion: Insertion) -> Any:
        """Label one inserted vertex; returns its (final) label."""

    def insert_all(self, insertions: Iterable[Insertion]) -> None:
        for insertion in insertions:
            self.insert(insertion)

    @property
    @abstractmethod
    def labels(self) -> Dict[int, Any]:
        """The write-once vid -> label map (readable without locking)."""

    @abstractmethod
    def reaches_labels(self, label_u: Any, label_v: Any) -> bool:
        """Reachability decided from two labels alone (dynamic schemes
        are all exact, so this never needs the graph)."""

    # dynamic schemes share the label-map plumbing ----------------------
    def label_of(self, vid: int) -> Any:
        try:
            return self.labels[vid]
        except KeyError:
            raise LabelingError(f"vertex {vid} has no label") from None

    def labeled_vertices(self) -> Iterable[int]:
        return self.labels.keys()

    def reaches(self, u: int, v: int) -> bool:
        return self.reaches_labels(self.label_of(u), self.label_of(v))

    def __len__(self) -> int:
        return len(self.labels)
