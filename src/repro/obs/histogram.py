"""Fixed-bucket log2 latency histograms with mergeable snapshots.

The histogram is the one latency primitive every layer of the service
shares (engine stages, protocol ops, WAL appends/fsyncs, checkpoint
rolls, loadgen reports).  Design constraints, in order:

* **dependency-free and cheap to record** -- one integer ``bit_length``
  picks the bucket, so a ``record`` is a few dict-free integer ops
  under a small lock; recording happens per *batch*, never per pair,
  so the hot query path pays one record per request.
* **exactly mergeable** -- all internal state is integral (bucket
  counts, a nanosecond sum, min/max nanoseconds), so merging snapshots
  is associative and commutative *exactly*, not merely up to float
  rounding.  Per-worker or per-shard histograms aggregate into one
  global view with no coordination while recording.
* **bounded error quantiles** -- buckets double (bucket ``i`` covers
  ``[2^i, 2^(i+1))`` nanoseconds, bucket 0 covers ``[0, 2)``), so a
  quantile estimated by linear interpolation inside its bucket is
  always within a factor of two of the true sample quantile, and the
  observed ``min``/``max`` clamp tightens the tails further (p0 and
  p100 are exact).

64 buckets cover 1 ns .. ~584 years, so no latency a Python service
can produce ever clips.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

NUM_BUCKETS = 64
_NS_PER_SECOND = 1_000_000_000


def bucket_index(ns: int) -> int:
    """The bucket holding a duration of ``ns`` nanoseconds."""
    if ns < 2:
        return 0
    return min(ns.bit_length() - 1, NUM_BUCKETS - 1)


def bucket_bounds(index: int) -> Tuple[int, int]:
    """The ``[lo, hi)`` nanosecond range of bucket ``index``."""
    if index <= 0:
        return 0, 2
    return 1 << index, 1 << (index + 1)


def bucket_upper_seconds(index: int) -> float:
    """The bucket's exclusive upper bound, in seconds (for exposition)."""
    return bucket_bounds(index)[1] / _NS_PER_SECOND


@dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable point-in-time copy of a histogram.

    All fields are integers (counts and nanoseconds), so :meth:`merge`
    is exactly associative: merging per-shard or per-worker snapshots
    in any grouping yields the identical aggregate.
    """

    counts: Tuple[int, ...]
    count: int
    sum_ns: int
    min_ns: int  # 0 when empty
    max_ns: int  # 0 when empty

    @classmethod
    def empty(cls) -> "HistogramSnapshot":
        return cls((0,) * NUM_BUCKETS, 0, 0, 0, 0)

    def raw_dict(self) -> Dict[str, object]:
        """The full integer state, JSON-friendly and exactly mergeable.

        This is the wire form a cluster worker ships to the router so
        per-worker histograms can be merged *exactly* (all fields are
        integers; :meth:`from_raw` round-trips losslessly).
        """
        return {
            "counts": list(self.counts),
            "count": self.count,
            "sum_ns": self.sum_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }

    @classmethod
    def from_raw(cls, doc: Dict[str, object]) -> "HistogramSnapshot":
        """Rebuild a snapshot from :meth:`raw_dict` output.

        Raises ``ValueError`` on a malformed document (wrong bucket
        count, non-integer state) rather than guessing.
        """
        counts = doc.get("counts")
        if not isinstance(counts, (list, tuple)) or len(counts) > NUM_BUCKETS:
            raise ValueError("raw histogram has a bad 'counts' vector")
        padded = tuple(int(c) for c in counts)
        padded += (0,) * (NUM_BUCKETS - len(padded))
        return cls(
            counts=padded,
            count=int(doc.get("count", 0)),
            sum_ns=int(doc.get("sum_ns", 0)),
            min_ns=int(doc.get("min_ns", 0)),
            max_ns=int(doc.get("max_ns", 0)),
        )

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """The snapshot of both populations combined (exact)."""
        if not self.count:
            return other
        if not other.count:
            return self
        return HistogramSnapshot(
            counts=tuple(
                a + b for a, b in zip(self.counts, other.counts)
            ),
            count=self.count + other.count,
            sum_ns=self.sum_ns + other.sum_ns,
            min_ns=min(self.min_ns, other.min_ns),
            max_ns=max(self.max_ns, other.max_ns),
        )

    # ------------------------------------------------------------------
    # derived statistics (seconds at the API edge)
    # ------------------------------------------------------------------
    @property
    def sum_seconds(self) -> float:
        return self.sum_ns / _NS_PER_SECOND

    @property
    def mean_seconds(self) -> float:
        return self.sum_ns / self.count / _NS_PER_SECOND if self.count else 0.0

    @property
    def min_seconds(self) -> float:
        return self.min_ns / _NS_PER_SECOND

    @property
    def max_seconds(self) -> float:
        return self.max_ns / _NS_PER_SECOND

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile of the recorded durations, in
        seconds.

        The estimate interpolates linearly inside the bucket holding
        the target rank, then clamps to the observed ``[min, max]``.
        Because the true sample value lies in the same bucket and
        buckets double, the estimate is always within a factor of two
        of the true sorted-sample quantile (and exact at q=0 / q=1).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min_seconds
        if q >= 1.0:
            return self.max_seconds
        # rank of the target element in the sorted sample (0-indexed,
        # nearest-rank: the smallest rank covering a q fraction)
        rank = max(0, -(-int(q * self.count * 1_000_000) // 1_000_000) - 1)
        rank = min(rank, self.count - 1)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if rank < cumulative + bucket_count:
                lo, hi = bucket_bounds(index)
                position = rank - cumulative
                estimate = lo + (hi - lo) * (position + 0.5) / bucket_count
                estimate = min(max(estimate, self.min_ns), self.max_ns)
                return estimate / _NS_PER_SECOND
            cumulative += bucket_count
        return self.max_seconds  # pragma: no cover - counts sum to count

    def percentiles(self) -> Dict[str, float]:
        """The standard p50/p95/p99 summary, in seconds."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> Dict[str, float]:
        """A JSON-friendly summary (counts elided, percentiles in)."""
        doc: Dict[str, float] = {
            "count": self.count,
            "sum": self.sum_seconds,
            "mean": self.mean_seconds,
            "min": self.min_seconds,
            "max": self.max_seconds,
        }
        doc.update(self.percentiles())
        return doc


class Histogram:
    """A thread-safe log2 latency histogram recording seconds.

    ``record`` converts to integer nanoseconds and updates five
    integers under a lock; ``snapshot`` returns an immutable
    :class:`HistogramSnapshot` for merging/quantiles, leaving the live
    histogram recording.
    """

    __slots__ = ("_lock", "_counts", "_count", "_sum_ns", "_min_ns",
                 "_max_ns")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: List[int] = [0] * NUM_BUCKETS
        self._count = 0
        self._sum_ns = 0
        self._min_ns = 0
        self._max_ns = 0

    def record(self, seconds: float) -> None:
        """Record one duration, clamped at zero."""
        self.record_ns(int(seconds * _NS_PER_SECOND))

    def record_ns(self, ns: int) -> None:
        """Record one duration in integer nanoseconds."""
        if ns < 0:
            ns = 0
        with self._lock:
            self._counts[bucket_index(ns)] += 1
            if self._count:
                if ns < self._min_ns:
                    self._min_ns = ns
                if ns > self._max_ns:
                    self._max_ns = ns
            else:
                self._min_ns = self._max_ns = ns
            self._count += 1
            self._sum_ns += ns

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                counts=tuple(self._counts),
                count=self._count,
                sum_ns=self._sum_ns,
                min_ns=self._min_ns,
                max_ns=self._max_ns,
            )

    def __len__(self) -> int:
        with self._lock:
            return self._count


def merge_snapshots(
    snapshots: Iterable[Optional[HistogramSnapshot]],
) -> HistogramSnapshot:
    """Merge any number of snapshots (``None`` entries skipped)."""
    merged = HistogramSnapshot.empty()
    for snapshot in snapshots:
        if snapshot is not None:
            merged = merged.merge(snapshot)
    return merged
