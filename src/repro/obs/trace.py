"""Request tracing: trace ids, span timelines, a slow-query log.

Every protocol request gets a *trace*: a client-chosen (or
server-generated) ``trace_id``, the op, and a timeline of named spans
recorded by whichever layers the request flows through -- the engine's
cache probe and miss fill, the session's label build, the WAL's append
and fsync.  Traces land in a bounded in-memory ring
(:meth:`Tracer.recent`); traces slower than the tracer's threshold
additionally go to the slow ring and are dumped -- full span timeline
included -- as one structured log record on the ``repro.obs.slow``
logger (the slow-query log).

Propagation is by ambient context, not parameter plumbing: the server
activates the request's trace on the handling thread
(:func:`activate`), and any layer below calls :func:`current_trace`
to attach spans or stamp the trace id into its own records (the WAL
writes it into every ingest record, so a durable log entry can be
joined back to the client request that caused it).  When no trace is
active every hook is a cheap ``None`` check, so in-process callers
that never start a trace pay almost nothing.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.names import SLOW_QUERY_LOGGER

_slow_logger = logging.getLogger(SLOW_QUERY_LOGGER)

_active = threading.local()


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (not a secret, just unique)."""
    return f"{random.getrandbits(64):016x}"


@dataclass(frozen=True)
class Span:
    """One completed span: a named slice of a trace's timeline."""

    name: str
    start_ns: int     # offset from the trace's start
    duration_ns: int
    depth: int        # nesting level; 0 = the request itself

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_us": self.start_ns / 1e3,
            "duration_us": self.duration_ns / 1e3,
            "depth": self.depth,
        }


class Trace:
    """One request's trace: an id, an op, and its span timeline.

    Spans are recorded either with the :meth:`span` context manager
    (which tracks nesting depth) or with :meth:`add_span` (explicit
    start/end timestamps from ``time.perf_counter()``, for hot paths
    that already took the timestamps).  A trace is built by one
    handling thread; the finished, immutable view is what the tracer
    retains.
    """

    __slots__ = (
        "trace_id", "op", "started", "spans", "duration_ns", "status",
        "session", "_depth",
    )

    def __init__(self, op: str, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.op = op
        self.started = time.perf_counter()
        self.spans: List[Span] = []
        self.duration_ns = 0
        self.status = "ok"
        self.session: Optional[str] = None
        self._depth = 0

    def span(self, name: str):
        """Context manager recording one (possibly nested) span."""
        return _SpanContext(self, name)

    def add_span(self, name: str, start: float, end: float) -> None:
        """Record a span from two ``time.perf_counter()`` readings."""
        self.spans.append(
            Span(
                name=name,
                start_ns=max(0, int((start - self.started) * 1e9)),
                duration_ns=max(0, int((end - start) * 1e9)),
                depth=self._depth + 1,
            )
        )

    def finish(self, status: str = "ok") -> None:
        self.duration_ns = max(
            0, int((time.perf_counter() - self.started) * 1e9)
        )
        self.status = status

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "op": self.op,
            "status": self.status,
            "duration_us": self.duration_ns / 1e3,
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.session is not None:
            doc["session"] = self.session
        return doc


class _SpanContext:
    __slots__ = ("_trace", "_name", "_start")

    def __init__(self, trace: Trace, name: str) -> None:
        self._trace = trace
        self._name = name

    def __enter__(self) -> "_SpanContext":
        self._trace._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = time.perf_counter()
        trace = self._trace
        trace._depth -= 1
        trace.spans.append(
            Span(
                name=self._name,
                start_ns=max(0, int((self._start - trace.started) * 1e9)),
                duration_ns=max(0, int((end - self._start) * 1e9)),
                depth=trace._depth + 1,
            )
        )


# ---------------------------------------------------------------------------
# ambient propagation
# ---------------------------------------------------------------------------


class activate:
    """Context manager making ``trace`` the thread's current trace.

    Reentrant: activations nest, and the previous trace is restored on
    exit, so an in-process caller holding its own trace is unaffected
    by a library layer briefly activating another.
    """

    __slots__ = ("_trace", "_previous")

    def __init__(self, trace: Optional[Trace]) -> None:
        self._trace = trace

    def __enter__(self) -> Optional[Trace]:
        self._previous = getattr(_active, "trace", None)
        _active.trace = self._trace
        return self._trace

    def __exit__(self, *exc_info: Any) -> None:
        _active.trace = self._previous


def current_trace() -> Optional[Trace]:
    """The trace activated on this thread, if any."""
    return getattr(_active, "trace", None)


def current_trace_id() -> Optional[str]:
    """The active trace's id, if a trace is active."""
    trace = getattr(_active, "trace", None)
    return trace.trace_id if trace is not None else None


# ---------------------------------------------------------------------------
# the tracer: rings of recent and slow traces
# ---------------------------------------------------------------------------


class Tracer:
    """Retains recent traces and dumps slow ones to the slow-query log.

    ``capacity`` bounds the ring of recent finished traces;
    ``slow_threshold`` (seconds) decides which traces are *slow*: they
    are kept in a second, smaller ring and each emits one structured
    ``WARNING`` record -- trace id, op, duration, and the full span
    timeline -- on the ``repro.obs.slow`` logger.  ``None`` disables
    the slow log (the rings still fill).
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_capacity: int = 64,
        slow_threshold: Optional[float] = 1.0,
        logger: Optional[logging.Logger] = None,
    ) -> None:
        if capacity < 1 or slow_capacity < 1:
            raise ValueError("ring capacities must be >= 1")
        self.slow_threshold = slow_threshold
        self._logger = logger or _slow_logger
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=capacity)
        self._slow: deque = deque(maxlen=slow_capacity)
        self._finished = 0
        self._slow_count = 0

    def start(self, op: str, trace_id: Optional[str] = None) -> Trace:
        """Begin a trace (the caller finishes it via :meth:`finish`)."""
        return Trace(op, trace_id=trace_id)

    def finish(self, trace: Trace, status: str = "ok") -> None:
        """Close a trace, retain it, and slow-log it if over threshold."""
        trace.finish(status=status)
        threshold = self.slow_threshold
        slow = (
            threshold is not None
            and trace.duration_seconds >= threshold
        )
        with self._lock:
            self._recent.append(trace)
            self._finished += 1
            if slow:
                self._slow.append(trace)
                self._slow_count += 1
        if slow:
            document = trace.to_dict()
            document["threshold_s"] = threshold
            self._logger.warning(
                "slow-query", extra={"fields": document}
            )

    # ------------------------------------------------------------------
    def recent(self) -> List[Dict[str, Any]]:
        """The retained recent traces, oldest first."""
        with self._lock:
            return [trace.to_dict() for trace in self._recent]

    def slow(self) -> List[Dict[str, Any]]:
        """The retained slow traces, oldest first."""
        with self._lock:
            return [trace.to_dict() for trace in self._slow]

    def summary(self) -> Dict[str, Any]:
        """Counts and configuration (the ``metrics`` op's trace block)."""
        with self._lock:
            return {
                "finished": self._finished,
                "retained": len(self._recent),
                "slow": self._slow_count,
                "slow_retained": len(self._slow),
                "slow_threshold_s": self.slow_threshold,
            }
