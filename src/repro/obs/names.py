"""The one registry of metric, span and logger names.

Every histogram/counter series name, every trace span name, and the
stage label values that double as span names live here as module
constants, and **only** here as literals: the ``metric-names`` rule of
:mod:`repro.analysis` flags any ``histogram(...)``/``counter(...)``/
``add_span(...)`` call site that passes a bare string instead of one of
these constants.  That turns the classic typo'd-series bug (a dashboard
quietly watching ``repro_wal_fysnc_seconds`` forever) into a lint
failure at the call site that would have minted the bogus name.

Grouping:

* ``*_SECONDS`` / ``*_TOTAL`` -- Prometheus-style series names.  The
  exposition layer appends ``_count``/``_sum``/``_bucket`` suffixes to
  histogram series; use :func:`series_count` for the scraped counter
  name rather than concatenating by hand.
* ``STAGE_*`` -- values of the ``stage`` label on
  :data:`ENGINE_STAGE_SECONDS`; each is also the span name the same
  code section records on an active trace.
* ``SPAN_*`` -- span names of the durability layer (no histogram label
  shares them, but they are registry-controlled all the same).

This module must stay import-free (stdlib included) so every layer --
``obs`` itself, the service, the CLI -- can import it without cycles.
"""

# --- histogram series -------------------------------------------------

#: per-op request latency, labeled ``op=...`` (server dispatch)
OP_LATENCY_SECONDS = "repro_op_latency_seconds"

#: engine/session stage latency, labeled ``stage=...`` (see STAGE_*)
ENGINE_STAGE_SECONDS = "repro_engine_stage_seconds"

#: wall time burned by batches that failed mid-flight (LabelingError)
ENGINE_ERRORED_SECONDS = "repro_engine_errored_seconds"

#: serialize+write+flush of one WAL record
WAL_APPEND_SECONDS = "repro_wal_append_seconds"

#: one physical fsync of the WAL file (only when one actually runs)
WAL_FSYNC_SECONDS = "repro_wal_fsync_seconds"

#: one whole checkpoint roll: generation write + WAL truncation
CHECKPOINT_ROLL_SECONDS = "repro_checkpoint_roll_seconds"

#: one full checkpoint write (snapshot + staged files + fsyncs)
CHECKPOINT_WRITE_SECONDS = "repro_checkpoint_write_seconds"

#: replica side: applying one shipped replication record batch
REPL_APPLY_SECONDS = "repro_repl_apply_seconds"

# --- counter series ---------------------------------------------------

#: primary side: WAL records published to the replication hub
REPL_RECORDS_SHIPPED_TOTAL = "repro_repl_records_shipped_total"

#: replica side: shipped records applied into the local store
REPL_RECORDS_APPLIED_TOTAL = "repro_repl_records_applied_total"

# --- counter series ---------------------------------------------------

#: requests by op and outcome, labeled ``op=...``, ``status=ok|error``
REQUESTS_TOTAL = "repro_requests_total"

#: batches that raised mid-flight (ingest or query path)
ENGINE_ERRORS_TOTAL = "repro_engine_errors_total"

# --- stage label values (each doubles as the span name) ---------------

#: engine phase 1: the whole-batch cache probe under the shard lock
STAGE_CACHE_PROBE = "cache_probe"

#: engine phase 2: batch-kernel / fallback compute of distinct misses
STAGE_MISS_FILL = "miss_fill"

#: session ingest: time spent inside the labeler assigning labels
STAGE_LABEL_BUILD = "label_build"

# --- span names with no histogram label twin --------------------------

SPAN_WAL_APPEND = "wal_append"
SPAN_WAL_FSYNC = "wal_fsync"
SPAN_CHECKPOINT_ROLL = "checkpoint_roll"
SPAN_REPL_APPLY = "repl_apply"

# --- logger names ------------------------------------------------------

#: the structured slow-query log (see repro.obs.trace)
SLOW_QUERY_LOGGER = "repro.obs.slow"

#: every histogram series name above (selftest/scrape validation)
HISTOGRAM_NAMES = (
    OP_LATENCY_SECONDS,
    ENGINE_STAGE_SECONDS,
    ENGINE_ERRORED_SECONDS,
    WAL_APPEND_SECONDS,
    WAL_FSYNC_SECONDS,
    CHECKPOINT_ROLL_SECONDS,
    CHECKPOINT_WRITE_SECONDS,
    REPL_APPLY_SECONDS,
)

#: every counter series name above
COUNTER_NAMES = (
    REQUESTS_TOTAL,
    ENGINE_ERRORS_TOTAL,
    REPL_RECORDS_SHIPPED_TOTAL,
    REPL_RECORDS_APPLIED_TOTAL,
)

#: every span name a trace can carry (stage names double as spans)
SPAN_NAMES = (
    STAGE_CACHE_PROBE,
    STAGE_MISS_FILL,
    STAGE_LABEL_BUILD,
    SPAN_WAL_APPEND,
    SPAN_WAL_FSYNC,
    SPAN_CHECKPOINT_ROLL,
    SPAN_REPL_APPLY,
)


def series_count(name):
    """The ``<name>_count`` series a Prometheus scrape exposes."""
    return name + "_count"
