"""Named counters and histograms, plus a Prometheus-style exposition.

A :class:`MetricsRegistry` maps ``(name, labels)`` series to live
instruments -- monotonic :class:`Counter`\\ s and
:class:`~repro.obs.histogram.Histogram`\\ s -- and renders the whole
set either as a JSON-friendly snapshot (the ``metrics`` protocol op)
or as Prometheus text exposition format (the ``--metrics-port`` HTTP
endpoint, scrapable by any Prometheus-compatible collector).

One process-wide default registry (:func:`default_registry`) is what
components bind to when no registry is injected, so the engine, the
WAL, the checkpointer and the session layer all land their series in
the same scrape without any plumbing.  :data:`NULL` is a no-op
registry: injecting it disables an instrumented component entirely
(the benchmark's uninstrumented baseline).

Series naming follows the Prometheus conventions: ``*_seconds`` for
histograms of durations, ``*_total`` for counters, labels for the
bounded dimensions (``op``, ``stage``, ``status``).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.histogram import Histogram, bucket_upper_seconds

LabelsKey = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class _NullCounter:
    """A counter that records nothing (disabled instrumentation)."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullHistogram:
    """A histogram that records nothing (disabled instrumentation)."""

    __slots__ = ()

    def record(self, seconds: float) -> None:
        pass

    def record_ns(self, ns: int) -> None:
        pass


def _labels_key(labels: Dict[str, str]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A thread-safe home for every metric series of one process/service.

    ``counter(name, **labels)`` / ``histogram(name, **labels)`` return
    the live instrument for that series, creating it on first use --
    callers cache the returned instrument on their hot paths so a
    record is never a registry lookup.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
            return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram()
            return instrument

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def snapshot(self, raw: bool = False) -> Dict[str, Any]:
        """Every series, JSON-friendly (the ``metrics`` op payload).

        Histograms appear as their summary dict (count/sum/mean/min/
        max/p50/p95/p99); counters as their integer value.  With
        ``raw`` the histograms instead carry their full integer state
        (:meth:`~repro.obs.histogram.HistogramSnapshot.raw_dict`), the
        form a cluster router requests from its workers so per-worker
        series can be merged exactly before summarizing.
        """
        with self._lock:
            counters = list(self._counters.items())
            histograms = list(self._histograms.items())
        return {
            "counters": [
                {"name": name, "labels": dict(labels),
                 "value": counter.value}
                for (name, labels), counter in sorted(counters)
            ],
            "histograms": [
                {"name": name, "labels": dict(labels),
                 **(
                     histogram.snapshot().raw_dict()
                     if raw
                     else histogram.snapshot().to_dict()
                 )}
                for (name, labels), histogram in sorted(histograms)
            ],
        }

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Histogram buckets are rendered cumulatively with ``le`` upper
        bounds in seconds, trailing empty buckets elided (the ``+Inf``
        bucket always present); every series also exposes ``_sum`` and
        ``_count``.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            histograms = sorted(self._histograms.items())
        lines: List[str] = []
        typed: set = set()
        for (name, labels), counter in counters:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(
                f"{name}{_render_labels(labels)} {counter.value}"
            )
        for (name, labels), histogram in histograms:
            snapshot = histogram.snapshot()
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} histogram")
            highest = 0
            for index, count in enumerate(snapshot.counts):
                if count:
                    highest = index
            cumulative = 0
            for index in range(highest + 1):
                cumulative += snapshot.counts[index]
                bound = repr(bucket_upper_seconds(index))
                lines.append(
                    f"{name}_bucket"
                    f"{_render_labels(labels, le=bound)} {cumulative}"
                )
            lines.append(
                f"{name}_bucket"
                f"{_render_labels(labels, le='+Inf')} {snapshot.count}"
            )
            lines.append(
                f"{name}_sum{_render_labels(labels)} "
                f"{repr(snapshot.sum_seconds)}"
            )
            lines.append(
                f"{name}_count{_render_labels(labels)} {snapshot.count}"
            )
        return "\n".join(lines) + "\n"


def _render_labels(labels: LabelsKey, **extra: str) -> str:
    pairs = list(labels) + sorted(extra.items())
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in pairs
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class _NullRegistry:
    """The disabled registry: hands out no-op instruments."""

    enabled = False
    _COUNTER = _NullCounter()
    _HISTOGRAM = _NullHistogram()

    def counter(self, name: str, **labels: str) -> _NullCounter:
        return self._COUNTER

    def histogram(self, name: str, **labels: str) -> _NullHistogram:
        return self._HISTOGRAM

    def snapshot(self, raw: bool = False) -> Dict[str, Any]:
        return {"counters": [], "histograms": []}

    def render_prometheus(self) -> str:
        return "\n"


#: inject to disable a component's instrumentation entirely
NULL = _NullRegistry()

_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry components bind to by default."""
    return _default


# ---------------------------------------------------------------------------
# the exposition HTTP endpoint
# ---------------------------------------------------------------------------


class MetricsExporter:
    """A tiny HTTP server exposing ``GET /metrics`` as Prometheus text.

    Dependency-free (``http.server``), threaded, bound to loopback by
    default.  ``render`` is any zero-argument callable returning the
    exposition text -- usually a registry's ``render_prometheus``.
    """

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served here")
                    return
                try:
                    body = exporter.render().encode("utf-8")
                except Exception as exc:  # pragma: no cover - render bug
                    self.send_error(500, f"metrics rendering failed: {exc}")
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the server's stdio

        self.render = render
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "MetricsExporter":
        """Serve scrapes on a daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def parse_prometheus_text(text: str) -> Dict[str, List[Dict[str, Any]]]:
    """Parse exposition text into ``{metric name: [samples]}``.

    A deliberately strict little parser used by the selftest and CI to
    validate that the endpoint's output is well-formed: every
    non-comment line must be ``name[{labels}] value`` with quoted label
    values and a float-parsable value.  Raises ``ValueError`` on the
    first malformed line.
    """
    series: Dict[str, List[Dict[str, Any]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value_text = line.rpartition(" ")
        if not head:
            raise ValueError(f"line {lineno}: no value: {line!r}")
        if value_text == "+Inf":
            value = float("inf")
        else:
            value = float(value_text)  # ValueError on garbage
        labels: Dict[str, str] = {}
        name = head
        if "{" in head:
            if not head.endswith("}"):
                raise ValueError(f"line {lineno}: unclosed labels: {line!r}")
            name, _, label_text = head.partition("{")
            for item in label_text[:-1].split(","):
                key, eq, quoted = item.partition("=")
                if (
                    not eq
                    or len(quoted) < 2
                    or quoted[0] != '"'
                    or quoted[-1] != '"'
                ):
                    raise ValueError(
                        f"line {lineno}: bad label {item!r}"
                    )
                labels[key] = quoted[1:-1]
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        series.setdefault(name, []).append(
            {"labels": labels, "value": value}
        )
    return series
