"""Structured logging: JSON-lines (or text) events on stdlib logging.

Every service-side event -- connection lifecycle, request errors,
recovery reports, checkpoint rolls, slow queries -- is emitted through
ordinary ``logging`` loggers under the ``repro`` namespace, with the
machine-readable payload attached as a ``fields`` dict::

    log_event(logger, logging.INFO, "connection-open",
              peer="127.0.0.1:52114")

:func:`configure_logging` installs one handler on the ``repro`` root
logger with either the :class:`JsonLineFormatter` (one JSON object per
line: ``ts``, ``level``, ``logger``, ``event``, the fields, and the
active ``trace_id`` when a request trace is live on the thread) or a
human-readable text formatter that appends ``key=value`` pairs.  The
CLI wires this to ``repro serve --log-level/--log-format``; library
users who never configure anything get stdlib's default behavior
(events propagate to the root logger, silenced unless enabled), so
importing the service never spams stderr.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, Optional, TextIO

from repro.obs.trace import current_trace_id

LOG_LEVELS = ("debug", "info", "warning", "error")
LOG_FORMATS = ("text", "json")


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: Any
) -> None:
    """Emit one structured event with a machine-readable payload."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record, stable keys first."""

    def format(self, record: logging.LogRecord) -> str:
        document: Dict[str, Any] = {
            "ts": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            document["trace_id"] = trace_id
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                document.setdefault(key, value)
        if record.exc_info and record.exc_info[0] is not None:
            document["exception"] = self.formatException(record.exc_info)
        return json.dumps(document, default=str)


class TextLineFormatter(logging.Formatter):
    """Human-readable: timestamped message plus ``key=value`` fields."""

    def __init__(self) -> None:
        super().__init__(
            "%(asctime)s %(levelname)-7s %(name)s %(message)s",
            datefmt="%H:%M:%S",
        )

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict) and fields:
            rendered = " ".join(
                f"{key}={_render_value(value)}"
                for key, value in fields.items()
            )
            line = f"{line} {rendered}"
        trace_id = current_trace_id()
        if trace_id is not None:
            line = f"{line} trace_id={trace_id}"
        return line


def _render_value(value: Any) -> str:
    if isinstance(value, (dict, list, tuple)):
        return json.dumps(value, default=str)
    return str(value)


def configure_logging(
    level: str = "info",
    fmt: str = "text",
    stream: Optional[TextIO] = None,
) -> logging.Handler:
    """Install one handler on the ``repro`` root logger; returns it.

    Idempotent per process: a handler previously installed by this
    function is replaced, never stacked, so reconfiguration (tests,
    repeated CLI invocations in one process) cannot double-log.
    ``stream`` defaults to stderr -- stdout may be the protocol stream
    under ``repro serve --stdio``.
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
        )
    if fmt not in LOG_FORMATS:
        raise ValueError(
            f"unknown log format {fmt!r}; expected one of {LOG_FORMATS}"
        )
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonLineFormatter() if fmt == "json" else TextLineFormatter()
    )
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root = logging.getLogger("repro")
    for existing in list(root.handlers):
        if getattr(existing, "_repro_obs_handler", False):
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    return handler
