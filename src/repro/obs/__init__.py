"""``repro.obs``: the dependency-free observability layer.

Four pieces, each usable on its own and all threaded through the
provenance query service:

* :mod:`repro.obs.histogram` -- fixed-bucket log2 latency histograms
  with exactly-mergeable immutable snapshots and bounded-error
  p50/p95/p99 quantile estimation.  The one latency type shared by the
  engine, the WAL, the server, the load generator and the benchmarks.
* :mod:`repro.obs.metrics` -- a registry of named counter/histogram
  series with a JSON snapshot (the ``metrics`` protocol op) and a
  Prometheus text exposition rendered by a tiny HTTP exporter
  (``repro serve --metrics-port``).
* :mod:`repro.obs.trace` -- per-request traces: a wire-visible
  ``trace_id``, span timelines recorded by every layer a request
  crosses, bounded rings of recent and slow traces, and a structured
  slow-query log.
* :mod:`repro.obs.logs` -- JSON-lines (or text) structured logging on
  stdlib ``logging``, wired to ``repro serve --log-level/--log-format``.
* :mod:`repro.obs.names` -- the one registry of metric series, span and
  logger names; every instrumented call site imports its name from
  there (the ``metric-names`` rule of :mod:`repro.analysis` enforces
  it, so a typo'd series cannot be minted silently).

Everything here is standard library only, by design: observability
must never be the dependency that keeps the service from booting.
"""

from repro.obs import names
from repro.obs.histogram import (
    Histogram,
    HistogramSnapshot,
    bucket_bounds,
    bucket_index,
    merge_snapshots,
)
from repro.obs.logs import (
    JsonLineFormatter,
    TextLineFormatter,
    configure_logging,
    log_event,
)
from repro.obs.metrics import (
    NULL,
    Counter,
    MetricsExporter,
    MetricsRegistry,
    default_registry,
    parse_prometheus_text,
)
from repro.obs.trace import (
    Span,
    Trace,
    Tracer,
    activate,
    current_trace,
    current_trace_id,
    new_trace_id,
)

__all__ = [
    "names",
    "Histogram",
    "HistogramSnapshot",
    "bucket_index",
    "bucket_bounds",
    "merge_snapshots",
    "Counter",
    "MetricsRegistry",
    "MetricsExporter",
    "default_registry",
    "parse_prometheus_text",
    "NULL",
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "JsonLineFormatter",
    "TextLineFormatter",
    "configure_logging",
    "log_event",
]
