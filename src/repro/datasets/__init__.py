"""Workflow specifications used by tests, examples and benchmarks.

* :mod:`repro.datasets.examples` -- the paper's pedagogical grammars: the
  running example (Figure 2), the Theorem 1 lower-bound grammar
  (Figure 6) and the series-recursive path grammar (Figure 12).
* :mod:`repro.datasets.bioaid` -- a BioAID-like real-life specification
  with the statistics the paper reports for the myExperiment BioAID
  workflow (see DESIGN.md section 3 for the substitution rationale).
* :mod:`repro.datasets.synthetic` -- the parameterized synthetic family
  of Figure 13 (sub-workflow size, nesting depth, linear vs nonlinear
  recursion).
"""

from typing import Callable, Dict

from repro.datasets.examples import (
    fig12_path_grammar,
    running_example,
    theorem1_grammar,
)
from repro.datasets.bioaid import bioaid
from repro.datasets.synthetic import synthetic_spec

# Named specification factories usable anywhere a spec argument is
# accepted (CLI spec arguments, service ``create_session`` requests).
_BUILTIN_SPECS: Dict[str, Callable] = {
    "running-example": running_example,
    "theorem1": theorem1_grammar,
    "fig12-path": fig12_path_grammar,
    "bioaid": bioaid,
    "bioaid-norec": lambda: bioaid(recursive=False),
    "synthetic": synthetic_spec,
}


def builtin_spec_names():
    """Names accepted by :func:`spec_by_name`, sorted."""
    return sorted(_BUILTIN_SPECS)


def spec_by_name(name: str):
    """Instantiate a bundled specification by its registry name.

    Raises :class:`KeyError` for unknown names; callers decide how to
    surface that (the CLI exits, the service maps it to an error reply).
    """
    try:
        factory = _BUILTIN_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown builtin spec {name!r}; expected one of "
            f"{builtin_spec_names()}"
        ) from None
    return factory()


__all__ = [
    "running_example",
    "theorem1_grammar",
    "fig12_path_grammar",
    "bioaid",
    "synthetic_spec",
    "builtin_spec_names",
    "spec_by_name",
]
