"""Workflow specifications used by tests, examples and benchmarks.

* :mod:`repro.datasets.examples` -- the paper's pedagogical grammars: the
  running example (Figure 2), the Theorem 1 lower-bound grammar
  (Figure 6) and the series-recursive path grammar (Figure 12).
* :mod:`repro.datasets.bioaid` -- a BioAID-like real-life specification
  with the statistics the paper reports for the myExperiment BioAID
  workflow (see DESIGN.md section 3 for the substitution rationale).
* :mod:`repro.datasets.synthetic` -- the parameterized synthetic family
  of Figure 13 (sub-workflow size, nesting depth, linear vs nonlinear
  recursion).
"""

from repro.datasets.examples import (
    fig12_path_grammar,
    running_example,
    theorem1_grammar,
)
from repro.datasets.bioaid import bioaid
from repro.datasets.synthetic import synthetic_spec

__all__ = [
    "running_example",
    "theorem1_grammar",
    "fig12_path_grammar",
    "bioaid",
    "synthetic_spec",
]
