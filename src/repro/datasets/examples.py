"""The paper's pedagogical grammars, made executable.

* :func:`running_example` -- the specification of Figure 2: a loop ``L``,
  a fork ``F`` and a linear recursion between ``A`` and ``C``.
* :func:`theorem1_grammar` -- Figure 6: the fixed grammar for which *any*
  dynamic labeling scheme needs Omega(n)-bit labels (two parallel
  recursive vertices plus the differential vertex ``a``).
* :func:`fig12_path_grammar` -- Figure 12 / Example 15: a nonlinear (but
  series-)recursive grammar whose runs are simple paths, showing that
  some nonlinear workflows still admit compact execution-based schemes.
"""

from __future__ import annotations

from repro.graphs.two_terminal import TwoTerminalGraph
from repro.workflow.specification import Specification, make_spec


def _chain(names):
    """A path-shaped two-terminal graph over ``names`` (ids 0..n-1)."""
    vertices = list(enumerate(names))
    edges = [(i, i + 1) for i in range(len(names) - 1)]
    return TwoTerminalGraph.build(vertices, edges)


def running_example() -> Specification:
    """The running example of Figures 2-5 and 8-9.

    ``g0 = s0 -> L -> t0``; the loop ``L`` runs ``h1 = s1 -> F -> t1``;
    the fork ``F`` runs ``h2 = s2 -> A -> t2``; ``A`` either recurses via
    ``h3 = s3 -> B -> C -> t3`` (where ``C`` runs ``h6 = s6 -> A -> t6``)
    or terminates via ``h4 = s4 -> t4``; ``B`` runs ``h5 = s5 -> t5``.
    The grammar is linear recursive: ``h3``'s only recursive vertex is
    ``C`` (Example 7).
    """
    g0 = _chain(["s0", "L", "t0"])
    h1 = _chain(["s1", "F", "t1"])
    h2 = _chain(["s2", "A", "t2"])
    h3 = _chain(["s3", "B", "C", "t3"])
    h4 = _chain(["s4", "t4"])
    h5 = _chain(["s5", "t5"])
    h6 = _chain(["s6", "A", "t6"])
    return make_spec(
        start=g0,
        implementations=[
            ("L", h1),
            ("F", h2),
            ("A", h3),
            ("A", h4),
            ("B", h5),
            ("C", h6),
        ],
        loops=["L"],
        forks=["F"],
        name="running-example",
    )


def theorem1_grammar() -> Specification:
    """The Figure 6 grammar of the Omega(n) lower bound (Theorem 1).

    ``h1`` contains two *parallel* recursive vertices named ``A`` and a
    differential vertex ``a`` that reaches exactly one of them; labels of
    the ``a``-vertices must split the label domains of the two upcoming
    subgraphs, which forces linear-size labels.  The grammar is parallel
    recursive (Definition 13), so the bound also applies to the
    execution-based problem (Theorem 5).
    """
    g0 = _chain(["s0", "A", "t0"])
    # h1: s1 -> A ; s1 -> a -> A' ; both A's -> t1  (a reaches only A')
    h1 = TwoTerminalGraph.build(
        vertices=[(0, "s1"), (1, "A"), (2, "a"), (3, "A"), (4, "t1")],
        edges=[(0, 1), (0, 2), (2, 3), (1, 4), (3, 4)],
    )
    h2 = _chain(["s2", "t2"])
    return make_spec(
        start=g0,
        implementations=[("A", h1), ("A", h2)],
        name="theorem1-lower-bound",
    )


def fig12_path_grammar() -> Specification:
    """The Figure 12 grammar (Example 15): nonlinear yet path-shaped runs.

    ``A`` derives either two chained copies of itself or a terminal pair,
    so every run is a simple path.  The grammar is nonlinear recursive but
    *not* parallel recursive -- the open case for execution-based
    labeling; the naive "label by position" scheme is compact here.
    """
    g0 = _chain(["s0", "A", "t0"])
    h1 = _chain(["s1", "A", "A", "t1"])
    h2 = _chain(["s2", "t2"])
    return make_spec(
        start=g0,
        implementations=[("A", h1), ("A", h2)],
        name="fig12-path",
    )
