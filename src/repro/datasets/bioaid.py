"""A BioAID-like real-life workflow specification.

The paper evaluates on *BioAID*, a protein-discovery workflow from the
myExperiment repository, reporting these structural statistics
(Section 7.2): 11 sub-workflows, average sub-workflow size 10.5, nesting
depth 2, 2 loop modules, 4 fork modules and one linear recursion of
length 2.  The repository dump is not available offline, so this module
synthesizes a specification with exactly those statistics; every
experiment in the paper depends only on them (the paper itself simulates
runs because realistic executions were unavailable).  See DESIGN.md,
"Substitutions".

``bioaid(recursive=False)`` applies the Section 7.4 footnote: the linear
recursion is converted into a loop performing similar computations, which
is the variant used for the DRL-vs-SKL comparison (SKL does not support
recursion).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graphs.two_terminal import TwoTerminalGraph
from repro.workflow.specification import Specification, make_spec


def _graph(tag: str, inner: List[str], edges: List[Tuple[int, int]]) -> TwoTerminalGraph:
    """A sub-workflow with unique source/sink dummy names.

    Vertices: 0 = ``src_<tag>``, 1..n = ``inner``, n+1 = ``snk_<tag>``;
    ``edges`` connect those indexes.
    """
    names = [f"src_{tag}"] + inner + [f"snk_{tag}"]
    return TwoTerminalGraph.build(list(enumerate(names)), edges)


def bioaid(recursive: bool = True) -> Specification:
    """The BioAID-like specification.

    With ``recursive=True`` (default) modules ``RefineQuery`` and
    ``ExpandHits`` form a linear recursion of length 2 (RefineQuery ->
    ExpandHits -> RefineQuery), terminated by RefineQuery's second,
    non-recursive implementation.  With ``recursive=False`` the recursion
    becomes a loop around RefineQuery, as in the paper's SKL comparison.
    """
    # ------------------------------------------------------------------
    # start graph: the top-level pipeline (7 vertices)
    # ------------------------------------------------------------------
    g0 = _graph(
        "run",
        ["load_query", "CollectLoop", "Discover", "render", "publish"],
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (1, 3)],
    )

    # ------------------------------------------------------------------
    # eleven sub-workflows (average size tuned to ~10.5)
    # ------------------------------------------------------------------
    # 1. Discover: the main discovery pipeline (nesting level 1).
    discover = _graph(
        "disc",
        [
            "split_species",
            "BlastFork",
            "merge_blast",
            "AnnotateFork",
            "score_hits",
            "RankLoop",
            "format_out",
            "audit_log",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
            (7, 9), (1, 8), (8, 9), (3, 5),
        ],
    )
    # 2. CollectLoop body: iterative data collection.
    collect_body = _graph(
        "coll",
        [
            "fetch_batch",
            "clean_batch",
            "DedupFork",
            "store_batch",
            "check_quota",
            "log_batch",
            "SampleQc",
            "merge_qc",
            "raise_alerts",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 10),
            (1, 7), (7, 8), (8, 9), (9, 10), (2, 6), (6, 9), (4, 9),
        ],
    )
    # 3. BlastFork body: one parallel BLAST invocation.
    blast_body = _graph(
        "blast",
        [
            "stage_seq",
            "mask_lowcomp",
            "run_blast",
            "parse_xml",
            "filter_eval",
            "extract_hits",
            "hit_stats",
            "archive_raw",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 9),
            (2, 7), (7, 9), (3, 8), (8, 9), (1, 3),
        ],
    )
    # 4. AnnotateFork body: one parallel annotation service call.
    annotate_body = _graph(
        "annot",
        [
            "pick_service",
            "build_req",
            "call_service",
            "retry_guard",
            "parse_resp",
            "map_terms",
            "attach_refs",
            "validate_terms",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
            (7, 9), (3, 8), (8, 9), (2, 5),
        ],
    )
    # 5. RankLoop body: one ranking refinement pass.
    rank_body = _graph(
        "rank",
        [
            "weigh_scores",
            "tie_break",
            "cutoff",
            "RefineQuery",
            "merge_ranks",
            "emit_delta",
            "check_conv",
            "trace_rank",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
            (7, 9), (2, 8), (8, 9), (1, 4),
        ],
    )
    # 6. DedupFork body: one parallel dedup shard.
    dedup_body = _graph(
        "dedup",
        [
            "hash_records",
            "bucketize",
            "scan_bucket",
            "mark_dupes",
            "drop_dupes",
            "dedup_stats",
            "verify_counts",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 8),
            (2, 6), (6, 7), (7, 8), (3, 7),
        ],
    )
    # 7. QcFork body: one parallel QC check.
    qc_body = _graph(
        "qc",
        [
            "pick_metric",
            "compute_metric",
            "threshold",
            "flag_outliers",
            "summarize_qc",
            "plot_qc",
            "export_qc",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 8),
            (2, 6), (6, 7), (7, 8), (1, 4),
        ],
    )
    # 8/9. RefineQuery: recursive implementation + terminating one.
    refine_rec = _graph(
        "refA",
        [
            "parse_hits",
            "select_seeds",
            "ExpandHits",
            "fold_results",
            "dedup_terms",
            "score_refine",
            "emit_refined",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
            (7, 8), (1, 5), (2, 4),
        ],
    )
    refine_base = _graph(
        "refB",
        [
            "freeze_query",
            "normalize_terms",
            "final_scores",
            "emit_final",
            "write_prov",
            "close_refine",
        ],
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (1, 4), (2, 5)],
    )
    # 10. ExpandHits: closes the length-2 recursion back to RefineQuery.
    expand_body = _graph(
        "expand",
        [
            "collect_neighbors",
            "fetch_homologs",
            "RefineQuery",
            "merge_expansion",
            "prune_expansion",
            "expansion_stats",
            "expansion_log",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 8),
            (2, 7), (7, 8), (1, 4),
        ],
    )
    # 10'. Non-recursive ExpandHits used by the loop-converted variant.
    expand_loop_body = _graph(
        "expand",
        [
            "collect_neighbors",
            "fetch_homologs",
            "merge_expansion",
            "prune_expansion",
            "expansion_stats",
            "rescore_terms",
            "expansion_log",
        ],
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 8),
            (2, 7), (7, 8), (1, 4),
        ],
    )
    # 11. QcFork wrapper inside collection: a second fork usage.
    qc_fork_host = _graph(
        "qchost",
        ["plan_qc", "QcFork", "join_qc", "report_qc", "qc_notes"],
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 6), (1, 5), (5, 6), (3, 5)],
    )

    loops = ["CollectLoop", "RankLoop"]
    forks = ["BlastFork", "AnnotateFork", "DedupFork", "QcFork"]

    if recursive:
        implementations = [
            ("Discover", discover),
            ("CollectLoop", collect_body),
            ("BlastFork", blast_body),
            ("AnnotateFork", annotate_body),
            ("RankLoop", rank_body),
            ("DedupFork", dedup_body),
            ("QcFork", qc_body),
            ("RefineQuery", refine_rec),
            ("RefineQuery", refine_base),
            ("ExpandHits", expand_body),
            ("SampleQc", qc_fork_host),
        ]
        name = "bioaid"
    else:
        # Convert the recursion into a loop: RefineQuery iterates a body
        # that performs the expansion inline (paper, Section 7.4 footnote).
        implementations = [
            ("Discover", discover),
            ("CollectLoop", collect_body),
            ("BlastFork", blast_body),
            ("AnnotateFork", annotate_body),
            ("RankLoop", rank_body),
            ("DedupFork", dedup_body),
            ("QcFork", qc_body),
            ("RefineQuery", refine_rec),
            ("ExpandHits", expand_loop_body),
            ("SampleQc", qc_fork_host),
        ]
        loops = loops + ["RefineQuery"]
        name = "bioaid-norec"

    return make_spec(
        start=g0,
        implementations=implementations,
        loops=loops,
        forks=forks,
        name=name,
    )
