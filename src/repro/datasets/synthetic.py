"""The synthetic workflow family of Figure 13.

A chain of nested sub-workflows -- plain composites, then one loop module
``LOOP``, one fork module ``FORK`` and one recursive module ``REC`` whose
body either recurses (once for the linear family, twice in parallel for
the nonlinear family) or terminates.  All sub-workflow bodies are random
spanning two-terminal graphs of a fixed size.

Parameters mirror Section 7.3's experiments:

* ``sub_size``   -- the size of every sub-workflow graph (Figure 17);
* ``depth``      -- the nesting depth of sub-workflows (Figure 18);
* ``linear``     -- linear vs nonlinear recursion (Figure 19).

The generated specification satisfies the Section 5.3 naming conditions,
so the execution-based name-inference labeler works on it -- except for
the nonlinear family, whose recursive body necessarily repeats the name
``REC`` (use logged mode or the derivation-based labeler there).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.errors import SpecificationError
from repro.graphs.random_graphs import random_two_terminal_dag
from repro.graphs.reachability import reaches
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.workflow.specification import Specification, make_spec


def _body(
    tag: str,
    sub_size: int,
    rng: random.Random,
    composites: List[str],
) -> TwoTerminalGraph:
    """A random sub-workflow of ``sub_size`` vertices hosting ``composites``.

    Internal vertices are renamed ``<tag>_v<i>``; the requested composite
    names are planted on internal vertices.  For two composites the chosen
    vertices are mutually unreachable (needed by the nonlinear family's
    *parallel* recursion); the generator retries until such a pair exists.
    """
    if sub_size < len(composites) + 2:
        raise SpecificationError(
            f"sub-workflow size {sub_size} too small for {len(composites)} "
            "composites plus two terminals"
        )
    for _ in range(200):
        names = [f"src_{tag}"]
        names += [f"{tag}_v{i}" for i in range(1, sub_size - 1)]
        names += [f"snk_{tag}"]
        graph = random_two_terminal_dag(sub_size, rng, names=names)
        internal = list(range(1, sub_size - 1))
        if not composites:
            return graph
        if len(composites) == 1:
            spot = internal[rng.randrange(len(internal))]
            graph.dag.rename_vertex(spot, composites[0])
            return graph
        # two composites: need a mutually unreachable internal pair
        rng.shuffle(internal)
        for i, u in enumerate(internal):
            for v in internal[i + 1 :]:
                if not reaches(graph.dag, u, v) and not reaches(graph.dag, v, u):
                    graph.dag.rename_vertex(u, composites[0])
                    graph.dag.rename_vertex(v, composites[1])
                    return graph
    raise SpecificationError(
        "could not place parallel composites; increase sub_size"
    )


def layered_spec(
    kinds: List[str],
    sub_size: int = 8,
    recursion: str = "none",
    seed: int = 0,
    alt_impls: int = 1,
) -> Specification:
    """A generalized Figure 13 chain with arbitrary level kinds.

    ``kinds`` lists the intermediate composite levels in order, each
    ``'plain'``, ``'loop'`` or ``'fork'``; ``recursion`` appends a final
    recursive module: ``'none'``, ``'linear'`` (one recursive vertex) or
    ``'parallel'`` (two mutually unreachable ones); ``alt_impls`` gives
    every level that many alternative bodies ("or" semantics).  Used by
    the property-based tests to cover many grammar shapes.
    """
    if recursion not in ("none", "linear", "parallel"):
        raise SpecificationError(f"unknown recursion kind {recursion!r}")
    rng = random.Random(seed)
    loops: List[str] = []
    forks: List[str] = []
    level_names: List[str] = []
    for i, kind in enumerate(kinds):
        name = f"X{i + 1}"
        level_names.append(name)
        if kind == "loop":
            loops.append(name)
        elif kind == "fork":
            forks.append(name)
        elif kind != "plain":
            raise SpecificationError(f"unknown level kind {kind!r}")
    chain = list(level_names)
    if recursion != "none":
        chain.append("REC")
    if not chain:
        return make_spec(
            start=_body("g0", sub_size, rng, []),
            implementations=[],
            name="layered(empty)",
        )
    implementations: List[Tuple[str, TwoTerminalGraph]] = []
    alt = max(1, alt_impls)
    g0 = _body("g0", sub_size, rng, [chain[0]])
    for level, name in enumerate(chain[:-1]):
        for variant in range(alt):
            tag = f"h{level + 1}" if variant == 0 else f"h{level + 1}v{variant}"
            implementations.append(
                (name, _body(tag, sub_size, rng, [chain[level + 1]]))
            )
    last = chain[-1]
    if recursion == "none":
        for variant in range(alt):
            tag = "hlast" if variant == 0 else f"hlastv{variant}"
            implementations.append((last, _body(tag, sub_size, rng, [])))
    else:
        rec_refs = ["REC"] if recursion == "linear" else ["REC", "REC"]
        implementations.append(("REC", _body("hrec", sub_size, rng, rec_refs)))
        for variant in range(alt):
            tag = "hbase" if variant == 0 else f"hbasev{variant}"
            implementations.append(("REC", _body(tag, sub_size, rng, [])))
    return make_spec(
        start=g0,
        implementations=implementations,
        loops=loops,
        forks=forks,
        name=f"layered({','.join(kinds)};rec={recursion};alt={alt})",
    )


def synthetic_spec(
    sub_size: int = 20,
    depth: int = 5,
    linear: bool = True,
    seed: int = 7,
) -> Specification:
    """Build one member of the Figure 13 family.

    ``depth`` counts nested sub-workflow levels: the chain is
    ``g0 -> P1 -> ... -> Pk -> LOOP -> FORK -> REC`` with
    ``k = depth - 4`` plain levels (``depth >= 4``).
    """
    if depth < 4:
        raise SpecificationError("depth must be at least 4 (g0, L, F, R levels)")
    rng = random.Random(seed)
    plain_levels = depth - 4
    implementations: List[Tuple[str, TwoTerminalGraph]] = []

    chain = [f"P{i}" for i in range(1, plain_levels + 1)] + ["LOOP", "FORK", "REC"]
    g0 = _body("g0", sub_size, rng, [chain[0]])
    for level, name in enumerate(chain[:-1]):
        tag = f"h{level + 1}"
        implementations.append(
            (name, _body(tag, sub_size, rng, [chain[level + 1]]))
        )
    # REC: a recursive body and a terminating body.
    if linear:
        rec_body = _body("hrec", sub_size, rng, ["REC"])
    else:
        rec_body = _body("hrec", sub_size, rng, ["REC", "REC"])
    base_body = _body("hbase", sub_size, rng, [])
    implementations.append(("REC", rec_body))
    implementations.append(("REC", base_body))

    return make_spec(
        start=g0,
        implementations=implementations,
        loops=["LOOP"],
        forks=["FORK"],
        name=(
            f"synthetic(size={sub_size}, depth={depth}, "
            f"{'linear' if linear else 'nonlinear'})"
        ),
    )
