"""An on-the-fly provenance store over a running workflow.

The store receives *module execution events* (one per atomic module run,
with the run-graph predecessors that supplied its inputs), labels each
event immediately with the execution-based DRL labeler, and registers the
data items the module produced.  Because edges of the run graph carry the
data flowing between modules, data-to-data provenance reduces to module
reachability (Section 2.2), which the labels answer in O(1):

* ``used(a, b)``        -- was data item ``a`` used (transitively) to
  produce data item ``b``?
* ``influenced(m, b)``  -- did module execution ``m`` contribute to ``b``?
* ``depends(m1, m2)``   -- module-to-module reachability.

All queries work over *partial* executions: a query involving items that
already exist is answered even while the workflow keeps running, which is
exactly the capability static schemes lack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ExecutionError, LabelingError
from repro.labeling.drl import DRL, Label
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.workflow.execution import Insertion, LogOrigin
from repro.workflow.specification import Specification


@dataclass(frozen=True)
class ModuleRun:
    """One recorded atomic module execution."""

    vid: int
    module: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]


@dataclass(frozen=True)
class DataItem:
    """One data item and the module execution that produced it.

    ``producer`` is None for external inputs fed to the workflow's start
    module by the environment.
    """

    name: str
    producer: Optional[int]


@dataclass
class ProvenanceStore:
    """Records a running workflow and answers provenance queries on-the-fly.

    Parameters
    ----------
    spec:
        The workflow specification the run follows.
    skeleton:
        Skeleton scheme for the specification graphs ('tcl' or 'bfs').
    mode:
        Structure-inference mode of the execution labeler: ``'name'``
        (requires the Section 5.3 naming conditions) or ``'logged'``.
    """

    spec: Specification
    skeleton: str = "tcl"
    mode: str = "name"
    _scheme: DRL = field(init=False, repr=False)
    _labeler: DRLExecutionLabeler = field(init=False, repr=False)
    _runs: Dict[int, ModuleRun] = field(init=False, default_factory=dict)
    _items: Dict[str, DataItem] = field(init=False, default_factory=dict)
    _preds: Dict[int, Tuple[int, ...]] = field(init=False, default_factory=dict)
    _next_vid: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._scheme = DRL(self.spec, skeleton=self.skeleton)
        self._labeler = DRLExecutionLabeler(self._scheme, mode=self.mode)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        module: str,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        vid: Optional[int] = None,
        origin: Optional[LogOrigin] = None,
    ) -> ModuleRun:
        """Record one module execution and label it immediately.

        ``inputs`` name existing data items (their producers become the
        new vertex's predecessors); ``outputs`` register new data items
        produced by this execution.  Returns the recorded event.
        """
        input_names = tuple(inputs)
        output_names = tuple(outputs)
        preds = set()
        for item_name in input_names:
            item = self._items.get(item_name)
            if item is None:
                raise ExecutionError(f"unknown input data item {item_name!r}")
            if item.producer is not None:
                preds.add(item.producer)
        if vid is None:
            vid = self._next_vid
        self._next_vid = max(self._next_vid, vid + 1)
        insertion = Insertion(
            vid=vid, name=module, preds=frozenset(preds), origin=origin
        )
        self._labeler.insert(insertion)
        run = ModuleRun(
            vid=vid, module=module, inputs=input_names, outputs=output_names
        )
        self._runs[vid] = run
        self._preds[vid] = tuple(sorted(preds))
        for out_name in output_names:
            if out_name in self._items:
                raise ExecutionError(f"data item {out_name!r} already exists")
            self._items[out_name] = DataItem(name=out_name, producer=vid)
        return run

    def add_external_input(self, name: str) -> DataItem:
        """Register a data item supplied from outside the workflow."""
        if name in self._items:
            raise ExecutionError(f"data item {name!r} already exists")
        item = DataItem(name=name, producer=None)
        self._items[name] = item
        return item

    # ------------------------------------------------------------------
    # queries (constant time, valid over partial executions)
    # ------------------------------------------------------------------
    def _label_of_vid(self, vid: int) -> Label:
        return self._labeler.label(vid)

    def depends(self, producer_vid: int, consumer_vid: int) -> bool:
        """Module-to-module: did ``producer_vid`` feed ``consumer_vid``?"""
        return self._scheme.query(
            self._label_of_vid(producer_vid), self._label_of_vid(consumer_vid)
        )

    def used(self, item_a: str, item_b: str) -> bool:
        """Was data item ``item_a`` used, transitively, to produce ``item_b``?

        True when ``item_b``'s producing module is reachable from
        ``item_a``'s producing module (external inputs feed the start
        module, so they reach everything).
        """
        a = self._require_item(item_a)
        b = self._require_item(item_b)
        if b.producer is None:
            return False  # external items are produced by nothing
        if a.producer is None:
            return True  # external inputs flow into the whole run
        if a.producer == b.producer:
            return False  # same module execution: outputs, not lineage
        return self.depends(a.producer, b.producer)

    def influenced(self, module_vid: int, item: str) -> bool:
        """Did module execution ``module_vid`` contribute to data ``item``?"""
        target = self._require_item(item)
        if target.producer is None:
            return False
        return self.depends(module_vid, target.producer)

    def _require_item(self, name: str) -> DataItem:
        try:
            return self._items[name]
        except KeyError:
            raise LabelingError(f"unknown data item {name!r}") from None

    # ------------------------------------------------------------------
    # lineage witnesses
    # ------------------------------------------------------------------
    def witness_path(
        self, producer_vid: int, consumer_vid: int
    ) -> Optional[List[int]]:
        """A concrete dependency chain from one module run to another.

        Labels answer *whether* a dependency exists in O(1); when users
        ask *how*, this walks the recorded predecessor edges backward
        from ``consumer_vid`` (guided by label queries, so only vertices
        on actual dependency paths are expanded).  Returns the vertex
        chain producer -> ... -> consumer, or None when unreachable.
        """
        if producer_vid not in self._runs or consumer_vid not in self._runs:
            raise LabelingError("unknown module execution id")
        if not self.depends(producer_vid, consumer_vid):
            return None
        path = [consumer_vid]
        current = consumer_vid
        while current != producer_vid:
            step = next(
                (
                    p
                    for p in self._preds[current]
                    if self.depends(producer_vid, p)
                ),
                None,
            )
            if step is None:
                raise LabelingError(
                    "inconsistent provenance: label says reachable but no "
                    "predecessor chain found"
                )
            path.append(step)
            current = step
        path.reverse()
        return path

    def item_lineage(self, item_a: str, item_b: str) -> Optional[List[str]]:
        """The chain of data items through which ``item_a`` flowed into
        ``item_b`` (None when it did not)."""
        a = self._require_item(item_a)
        b = self._require_item(item_b)
        if a.producer is None or b.producer is None:
            return [item_a, item_b] if self.used(item_a, item_b) else None
        vertices = self.witness_path(a.producer, b.producer)
        if vertices is None:
            return None
        names: List[str] = [item_a]
        for vid in vertices[1:]:
            outputs = self._runs[vid].outputs
            if outputs:
                names.append(outputs[0])
        if names[-1] != item_b:
            names.append(item_b)
        return names

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def module_runs(self) -> List[ModuleRun]:
        """All recorded module executions, in recording order."""
        return [self._runs[vid] for vid in sorted(self._runs)]

    def data_items(self) -> List[DataItem]:
        """All known data items."""
        return list(self._items.values())

    def label_bits(self, vid: int) -> int:
        """Size in bits of the label of one module execution."""
        return self._scheme.label_bits(self._label_of_vid(vid))
