"""Provenance layer: the motivating application of the paper (Section 1).

Scientific workflow systems record data and module dependencies during
execution; users ask "was data item A (or module M) used to produce data
item B, directly or indirectly?" *while the workflow is still running*.
:class:`~repro.provenance.store.ProvenanceStore` wires the execution-based
DRL labeler to a small data-item catalog so such queries are answered from
two labels in constant time, as soon as the relevant data exists.
"""

from repro.provenance.store import DataItem, ModuleRun, ProvenanceStore

__all__ = ["ProvenanceStore", "DataItem", "ModuleRun"]
