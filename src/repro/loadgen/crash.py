"""The crash-recovery scenario: SIGKILL a durable server mid-ingest.

This is the durability layer's acceptance test, run as a real loadgen
scenario (``repro loadgen crash-recovery``): start a *subprocess*
server with ``--data-dir``, ingest a synthesized run chunk by chunk
recording exactly which insertions were acknowledged, ``SIGKILL`` the
server mid-stream (no warning, no flush -- the closest a test gets to
pulling the plug on a process), restart it over the same data dir, and
verify against BFS ground truth that **every acknowledged insertion
survived**: each acked vertex is still present, and reachability
answers over the acked prefix match the materialized run graph.

Insertions the client never got an ``ok`` for are allowed to be lost
(they were never acknowledged); an acknowledged insertion lost after
recovery is a durability bug and fails the scenario.

The server is killed from a watchdog thread while the ingest loop is
running, so the kill lands mid-request with high probability; the
ingest loop treats the resulting connection error as the expected
crash, not a failure.

``kill-worker`` (:func:`run_kill_worker`) is the cluster variant: a
``repro serve --workers N --data-dir`` cluster, the ingest stream
aimed at one session, and a SIGKILL aimed at the *worker process
owning it* while the router stays up.  The supervisor must detect the
death, restart the worker, and replay its WAL; the client sees a
structured ``service`` error for the interrupted request (never a
dropped connection -- the router holds it open), probes whether the
failed chunk survived (one ingest request is one atomic WAL record,
so its first vertex's presence decides the whole chunk), resends it
if not, and finishes the run.  Zero acknowledged insertions may be
lost, and every reachability answer must match BFS ground truth.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import repro
from repro.errors import ProtocolError, ServiceError
from repro.graphs.reachability import reaches
from repro.loadgen.runner import LoadReport  # noqa: F401 (sibling API)
from repro.service.client import ServiceClient
from repro.service.sessions import resolve_spec
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation

SCENARIO_NAME = "crash-recovery"
SCENARIO_SUMMARY = (
    "SIGKILL a durable server mid-ingest, restart, verify no "
    "acknowledged insertion was lost"
)

KILL_WORKER_SCENARIO = "kill-worker"
KILL_WORKER_SUMMARY = (
    "SIGKILL one cluster worker mid-ingest; the supervisor restarts "
    "it, WAL replay loses zero acknowledged insertions"
)

KILL_PRIMARY_SCENARIO = "kill-primary"
KILL_PRIMARY_SUMMARY = (
    "SIGKILL a replicated primary mid-ingest, promote the most-"
    "caught-up replica, verify zero acknowledged loss"
)


@dataclass
class CrashReport:
    """Outcome of one crash-recovery scenario run."""

    scenario: str = SCENARIO_NAME
    fsync: str = "always"
    spec: str = "running-example"
    run_size: int = 0
    acknowledged: int = 0       # insertions the client got an 'ok' for
    unacknowledged: int = 0     # in flight / never sent when killed
    recovered_vertices: int = 0
    lost: List[int] = field(default_factory=list)  # acked vids missing
    verified_pairs: int = 0
    wrong_answers: int = 0
    torn_tail: Optional[str] = None  # recovery's dropped-tail report
    kill_after: float = 0.0
    errors: List[str] = field(default_factory=list)
    # cluster (kill-worker) fields; zero on the single-server scenario
    workers: int = 0
    worker_restarts: int = 0
    interrupted_chunks: int = 0
    resent_chunks: int = 0
    # replication (kill-primary) fields
    replicas: int = 0
    promoted_port: int = 0
    promoted_epoch: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors and not self.lost and not self.wrong_answers

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "fsync": self.fsync,
            "spec": self.spec,
            "run_size": self.run_size,
            "acknowledged": self.acknowledged,
            "unacknowledged": self.unacknowledged,
            "recovered_vertices": self.recovered_vertices,
            "lost": list(self.lost),
            "verified_pairs": self.verified_pairs,
            "wrong_answers": self.wrong_answers,
            "torn_tail": self.torn_tail,
            "kill_after": self.kill_after,
            "workers": self.workers,
            "worker_restarts": self.worker_restarts,
            "interrupted_chunks": self.interrupted_chunks,
            "resent_chunks": self.resent_chunks,
            "replicas": self.replicas,
            "promoted_port": self.promoted_port,
            "promoted_epoch": self.promoted_epoch,
            "ok": self.ok,
            "errors": list(self.errors),
        }


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_server(
    port: int, data_dir: str, fsync: str, extra: Optional[List[str]] = None
) -> subprocess.Popen:
    """Start ``repro serve --data-dir`` as a killable subprocess."""
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src_root
    )
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        str(port),
        "--data-dir",
        data_dir,
        "--fsync",
        fsync,
    ] + list(extra or [])
    return subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_ready(port: int, process: subprocess.Popen, timeout: float = 30.0):
    """Poll until the server answers ``ping`` (or its process died)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise ServiceError(
                f"server exited with {process.returncode} before "
                "becoming ready"
            )
        try:
            with ServiceClient("127.0.0.1", port, timeout=5.0) as client:
                if client.ping():
                    return
        except OSError:
            time.sleep(0.05)
    raise ServiceError(f"server on port {port} never became ready")


def run_crash_recovery(
    data_dir: Optional[str] = None,
    spec: str = "running-example",
    scheme: str = "drl",
    fsync: str = "always",
    run_size: int = 800,
    chunk: int = 4,
    kill_after: float = 1.0,
    queries: int = 400,
    seed: int = 0,
    verbose: bool = True,
) -> CrashReport:
    """Run the scenario; see the module docstring for the contract.

    A watchdog SIGKILLs the server as soon as half the run has been
    acknowledged -- so the kill reliably lands mid-stream, with real
    acknowledged-but-not-checkpointed state in the WAL -- or after
    ``kill_after`` seconds if ingest is slower than that.  The
    restarted server recovers from ``data_dir`` (a temp dir by
    default) and every acknowledged insertion is verified present with
    BFS-checked reachability.
    """
    report = CrashReport(fsync=fsync, spec=spec, kill_after=kill_after)

    def say(message: str) -> None:
        if verbose:
            print(f"crash-recovery: {message}")

    specification = resolve_spec(spec)
    run = sample_run(specification, run_size, random.Random(seed))
    execution = execution_from_derivation(run)
    events = execution.insertions
    report.run_size = len(events)

    owns_dir = data_dir is None
    if owns_dir:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-crash-")
        data_dir = tempdir.name
    port = _free_port()
    say(
        f"starting durable server on port {port} "
        f"(fsync={fsync}, data dir {data_dir})"
    )
    process = _spawn_server(port, data_dir, fsync)
    acked: List[int] = []
    kill_threshold = max(chunk, len(events) // 2)

    def watchdog() -> None:
        # kill once half the run is acknowledged (mid-stream for sure),
        # or after the time limit if ingest is slower than that
        deadline = time.monotonic() + kill_after
        while time.monotonic() < deadline and len(acked) < kill_threshold:
            time.sleep(0.001)
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)

    killer = threading.Thread(target=watchdog, daemon=True)
    try:
        _wait_ready(port, process)
        killer.start()
        try:
            with ServiceClient("127.0.0.1", port, timeout=10.0) as client:
                client.create_session(
                    "crash", spec=spec, scheme=scheme
                )
                for start in range(0, len(events), chunk):
                    batch = events[start : start + chunk]
                    client.ingest("crash", batch)
                    # the server acknowledged: these must survive
                    acked.extend(event.vid for event in batch)
        except (OSError, ProtocolError):
            pass  # the kill landed mid-request: the expected crash
        killer.join(timeout=kill_after + 30.0)
        process.wait(timeout=30.0)
        report.acknowledged = len(acked)
        report.unacknowledged = len(events) - len(acked)
        say(
            f"server killed; {len(acked)}/{len(events)} insertions "
            "had been acknowledged"
        )
        if not acked:
            report.errors.append(
                "the server died before acknowledging any insertion; "
                "raise kill_after"
            )
            return report

        say("restarting over the same data dir")
        process = _spawn_server(port, str(data_dir), fsync)
        _wait_ready(port, process)
        with ServiceClient("127.0.0.1", port, timeout=30.0) as client:
            info = client.recover_info()
            recovered = {
                r["session"]: r for r in info.get("recovered", [])
            }
            record = recovered.get("crash")
            if record is None or record.get("skipped"):
                report.errors.append(
                    f"session 'crash' was not recovered: {recovered}"
                )
                return report
            report.recovered_vertices = record.get("vertices", 0)
            report.torn_tail = record.get("torn_tail")
            if report.torn_tail:
                say(
                    f"recovery dropped a torn WAL tail "
                    f"({report.torn_tail}; resume seq "
                    f"{record.get('resume_seq')})"
                )
            # presence: a (v, v) query probes v's label; an unlabeled
            # vertex is a LabelingError, so one batch proves them all
            try:
                client.query_batch("crash", [(v, v) for v in acked])
            except Exception as exc:  # noqa: BLE001 - report, don't die
                report.errors.append(
                    f"presence probe over acked vertices failed: {exc}"
                )
                for vid in acked:  # narrow down the missing ones
                    try:
                        client.query_batch("crash", [(vid, vid)])
                    except Exception:
                        report.lost.append(vid)
                say(
                    f"{len(report.lost)} acknowledged insertions "
                    "missing after recovery"
                )
                return report
            if report.recovered_vertices < len(acked):
                report.errors.append(
                    f"recovered {report.recovered_vertices} vertices "
                    f"< {len(acked)} acknowledged"
                )
            # reachability over the acked prefix, BFS-verified (edges
            # only ever point at later insertions, so the full-run
            # graph restricted to acked endpoints is exact)
            rng = random.Random(seed + 1)
            pairs = [
                (rng.choice(acked), rng.choice(acked))
                for _ in range(queries)
            ]
            answers = client.query_batch("crash", pairs)
            wrong = sum(
                1
                for (a, b), answer in zip(pairs, answers)
                if answer != reaches(run.graph, a, b)
            )
            report.verified_pairs = len(pairs)
            report.wrong_answers = wrong
            if wrong:
                report.errors.append(
                    f"{wrong}/{len(pairs)} post-recovery answers "
                    "contradict BFS ground truth"
                )
            say(
                f"zero acknowledged insertions lost; {len(pairs)} "
                f"reachability answers BFS-verified ({wrong} wrong)"
            )
            client.shutdown_server()
        process.wait(timeout=30.0)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30.0)
        if owns_dir:
            tempdir.cleanup()
    return report


# ---------------------------------------------------------------------------
# the replication variant
# ---------------------------------------------------------------------------


def run_kill_primary(
    data_dir: Optional[str] = None,
    spec: str = "running-example",
    scheme: str = "drl",
    fsync: str = "always",
    run_size: int = 800,
    chunk: int = 4,
    kill_after: float = 2.0,
    queries: int = 400,
    seed: int = 0,
    replicas: int = 2,
    verbose: bool = True,
) -> CrashReport:
    """SIGKILL the primary mid-ingest; promote; prove zero acked loss.

    Starts one primary (``--repl-min-acks 1``: an ingest is only
    acknowledged once at least one replica covers it) and ``replicas``
    read replicas following it, streams a run chunk by chunk, and
    SIGKILLs the *primary process* once half the run is acknowledged.
    The most-caught-up replica (``choose_promotion_target``) is then
    promoted under a bumped fencing epoch; because every acknowledged
    write was replica-covered before its ack, the promoted server must
    hold all of them -- the ingest stream resumes against it (probing
    whether the interrupted chunk's atomic record already shipped
    before resending), and the full run verifies like the other crash
    scenarios: every acked vertex present, reachability BFS-checked.
    Replica staleness is asserted wire-visible along the way (the
    ``replica_lag`` object on replica reads).
    """
    if replicas < 1:
        raise ServiceError(
            "kill-primary needs at least one replica to promote"
        )
    report = CrashReport(
        scenario=KILL_PRIMARY_SCENARIO, fsync=fsync, spec=spec,
        kill_after=kill_after, replicas=replicas,
    )

    def say(message: str) -> None:
        if verbose:
            print(f"kill-primary: {message}")

    specification = resolve_spec(spec)
    run = sample_run(specification, run_size, random.Random(seed))
    execution = execution_from_derivation(run)
    events = execution.insertions
    report.run_size = len(events)

    owns_dir = data_dir is None
    if owns_dir:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-killp-")
        data_dir = tempdir.name
    primary_port = _free_port()
    replica_ports = [_free_port() for _ in range(replicas)]
    say(
        f"starting primary on port {primary_port} with {replicas} "
        f"replica(s) on {replica_ports} (fsync={fsync}, data dir "
        f"{data_dir})"
    )
    primary = _spawn_server(
        primary_port, os.path.join(str(data_dir), "primary"), fsync,
        extra=["--repl-min-acks", "1"],
    )
    fleet: List[subprocess.Popen] = []
    session = "crash"
    acked: List[int] = []
    kill_threshold = max(chunk, len(events) // 2)
    try:
        _wait_ready(primary_port, primary)
        for index, port in enumerate(replica_ports):
            peers = ",".join(
                f"127.0.0.1:{p}" for p in replica_ports if p != port
            )
            extra = [
                "--replicate-from", f"127.0.0.1:{primary_port}",
                "--replica-id", f"replica-{index}",
            ]
            if peers:
                extra += ["--peers", peers]
            fleet.append(_spawn_server(
                port, os.path.join(str(data_dir), f"replica-{index}"),
                fsync, extra=extra,
            ))
        for port, process in zip(replica_ports, fleet):
            _wait_ready(port, process)

        def watchdog() -> None:
            deadline = time.monotonic() + kill_after
            while (time.monotonic() < deadline
                   and len(acked) < kill_threshold):
                time.sleep(0.001)
            if primary.poll() is None:
                primary.send_signal(signal.SIGKILL)

        killer = threading.Thread(target=watchdog, daemon=True)
        pending = 0  # first event index not certainly acknowledged
        try:
            with ServiceClient(
                "127.0.0.1", primary_port, timeout=30.0
            ) as client:
                client.create_session(session, spec=spec, scheme=scheme)
                killer.start()
                for start in range(0, len(events), chunk):
                    batch = events[start : start + chunk]
                    client.ingest(session, batch)
                    acked.extend(event.vid for event in batch)
                    pending = start + chunk
        except (OSError, ProtocolError, ServiceError):
            # the kill landed mid-request (or the ack wait died with
            # the primary): everything from `pending` on is uncertain
            report.interrupted_chunks = 1
        killer.join(timeout=kill_after + 30.0)
        primary.wait(timeout=30.0)
        report.acknowledged = len(acked)
        report.unacknowledged = len(events) - len(acked)
        say(
            f"primary killed; {len(acked)}/{len(events)} insertions "
            "had been acknowledged"
        )
        if not acked:
            report.errors.append(
                "the primary died before acknowledging any insertion; "
                "raise kill_after"
            )
            return report
        # staleness must be wire-visible: a read served by a replica
        # (they are all still up) carries the replica_lag object
        if not _probe_replica_lag(replica_ports[0], session, acked[0]):
            report.errors.append(
                "no replica read carried a replica_lag object; "
                "staleness is not wire-visible"
            )

        from repro.service.replication import choose_promotion_target

        endpoints = [("127.0.0.1", port) for port in replica_ports]
        target = choose_promotion_target(endpoints)
        if target is None:
            report.errors.append(
                f"no live replica to promote among {endpoints}"
            )
            return report
        report.promoted_port = target[1]
        with ServiceClient(*target, timeout=30.0) as client:
            promoted = client.promote()
            report.promoted_epoch = promoted["epoch"]
            say(
                f"promoted 127.0.0.1:{target[1]} to primary "
                f"(epoch {promoted['epoch']}, applied "
                f"{promoted['applied']} records)"
            )
            # finish the run against the new primary, deciding the
            # interrupted chunk by probing its atomic record
            for start in range(pending, len(events), chunk):
                batch = events[start : start + chunk]
                if start == pending and report.interrupted_chunks:
                    if _vertex_present(client, session, batch[0].vid):
                        acked.extend(ev.vid for ev in batch)
                        continue
                    report.resent_chunks += 1
                client.ingest(session, batch)
                acked.extend(event.vid for event in batch)
            report.acknowledged = len(acked)
            report.unacknowledged = len(events) - len(acked)

            # presence of every acknowledged insertion, in one batch
            try:
                client.query_batch(session, [(v, v) for v in acked])
            except Exception as exc:  # noqa: BLE001 - report, don't die
                report.errors.append(
                    f"presence probe over acked vertices failed: {exc}"
                )
                for vid in acked:
                    try:
                        client.query_batch(session, [(vid, vid)])
                    except Exception:
                        report.lost.append(vid)
                say(
                    f"{len(report.lost)} acknowledged insertions "
                    "missing after promotion"
                )
                return report

            rng = random.Random(seed + 1)
            pairs = [
                (rng.choice(acked), rng.choice(acked))
                for _ in range(queries)
            ]
            answers = client.query_batch(session, pairs)
            wrong = sum(
                1
                for (a, b), answer in zip(pairs, answers)
                if answer != reaches(run.graph, a, b)
            )
            report.verified_pairs = len(pairs)
            report.wrong_answers = wrong
            if wrong:
                report.errors.append(
                    f"{wrong}/{len(pairs)} post-promotion answers "
                    "contradict BFS ground truth"
                )
            say(
                f"zero acknowledged insertions lost across the "
                f"failover; {len(pairs)} answers BFS-verified "
                f"({wrong} wrong)"
            )
            client.shutdown_server()
    finally:
        for process in [primary] + fleet:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30.0)
        if owns_dir:
            tempdir.cleanup()
    return report


def _probe_replica_lag(port: int, session: str, vid: int) -> bool:
    """Whether a replica read carries the wire-visible lag object.

    Retries briefly: the replica may still be applying the snapshot
    that creates the session.  Returns ``False`` (never raises) so the
    caller can fail the run with a structured report error.
    """
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            with ServiceClient("127.0.0.1", port, timeout=5.0) as reader:
                reader.query_batch(session, [(vid, vid)])
                return reader.last_replica_lag is not None
        except Exception:  # noqa: BLE001 - still syncing; retry
            time.sleep(0.05)
    return False


def _vertex_present(
    client: ServiceClient, session: str, vid: int
) -> bool:
    """Whether ``vid`` survived onto the promoted primary."""
    try:
        client.query_batch(session, [(vid, vid)])
        return True
    except (OSError, ProtocolError):
        raise
    except Exception:
        # LabelingError and kin: the vertex is gone -> not applied
        return False


# ---------------------------------------------------------------------------
# the cluster variant
# ---------------------------------------------------------------------------


def _chunk_survived(
    client: ServiceClient, session: str, vid: int, timeout: float = 30.0
) -> bool:
    """Whether an interrupted chunk's WAL record survived the crash.

    One ingest request is one atomic WAL record, so probing the
    chunk's first vertex decides the whole chunk: present means the
    record was durable before the kill, absent means it never landed
    and the chunk must be resent.  Retries while the worker restart is
    still in flight (``service`` errors).
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.query_batch(session, [(vid, vid)])
            return True
        except ServiceError:
            # worker still restarting (or died again); wait and retry
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)
        except Exception:
            # LabelingError and kin: the vertex is gone -> not applied
            return False


def run_kill_worker(
    data_dir: Optional[str] = None,
    spec: str = "running-example",
    scheme: str = "drl",
    fsync: str = "always",
    run_size: int = 800,
    chunk: int = 4,
    kill_after: float = 1.0,
    queries: int = 400,
    seed: int = 0,
    workers: int = 2,
    verbose: bool = True,
) -> CrashReport:
    """SIGKILL the worker owning the session; prove zero acked loss.

    Starts a ``--workers N`` cluster subprocess, streams one session's
    run chunk by chunk, and SIGKILLs the *owning worker process* (its
    pid comes from ``cluster_info``) once half the run is acknowledged.
    The router never goes down: the interrupted request fails with a
    structured ``service`` error on a *live* connection, the
    supervisor restarts the worker, WAL replay restores everything
    acknowledged, and the ingest loop resumes -- probing whether the
    failed chunk's atomic WAL record survived before deciding to
    resend it.  The full run then verifies like the single-server
    scenario: every acked vertex present, reachability BFS-checked.
    """
    if workers < 2:
        raise ServiceError(
            "kill-worker needs a cluster (workers >= 2): with one "
            "worker there is no surviving fleet to prove routing "
            "stays up"
        )
    report = CrashReport(
        scenario=KILL_WORKER_SCENARIO, fsync=fsync, spec=spec,
        kill_after=kill_after, workers=workers,
    )

    def say(message: str) -> None:
        if verbose:
            print(f"kill-worker: {message}")

    specification = resolve_spec(spec)
    run = sample_run(specification, run_size, random.Random(seed))
    execution = execution_from_derivation(run)
    events = execution.insertions
    report.run_size = len(events)

    owns_dir = data_dir is None
    if owns_dir:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-killw-")
        data_dir = tempdir.name
    port = _free_port()
    say(
        f"starting {workers}-worker cluster on port {port} "
        f"(fsync={fsync}, data dir {data_dir})"
    )
    process = _spawn_server(
        port, str(data_dir), fsync, extra=["--workers", str(workers)]
    )
    acked: List[int] = []
    kill_threshold = max(chunk, len(events) // 2)
    session = "crash"

    try:
        _wait_ready(port, process)
        with ServiceClient("127.0.0.1", port, timeout=30.0) as client:
            topology = client.cluster_info()
            from repro.service.cluster import session_worker

            owner = session_worker(session, workers)
            victim_pid = topology["per_worker"][owner]["pid"]
            say(
                f"session {session!r} owned by worker {owner} "
                f"(pid {victim_pid}); killing it mid-ingest"
            )
            client.create_session(session, spec=spec, scheme=scheme)

            def watchdog() -> None:
                deadline = time.monotonic() + kill_after
                while (time.monotonic() < deadline
                       and len(acked) < kill_threshold):
                    time.sleep(0.001)
                try:
                    os.kill(victim_pid, signal.SIGKILL)
                except ProcessLookupError:  # pragma: no cover - raced
                    pass

            killer = threading.Thread(target=watchdog, daemon=True)
            killer.start()
            for start in range(0, len(events), chunk):
                batch = events[start : start + chunk]
                while True:
                    try:
                        client.ingest(session, batch)
                        acked.extend(event.vid for event in batch)
                        break
                    except (ServiceError, ProtocolError, OSError):
                        # the kill landed on this chunk; the router is
                        # still up, the worker is restarting
                        report.interrupted_chunks += 1
                        if _chunk_survived(client, session,
                                           batch[0].vid):
                            # the atomic WAL record beat the kill: the
                            # chunk is durable, count it acknowledged
                            acked.extend(ev.vid for ev in batch)
                            break
                        report.resent_chunks += 1
            killer.join(timeout=kill_after + 30.0)
            report.acknowledged = len(acked)
            report.unacknowledged = len(events) - len(acked)
            say(
                f"{len(acked)}/{len(events)} insertions acknowledged; "
                f"{report.interrupted_chunks} chunk(s) interrupted, "
                f"{report.resent_chunks} resent"
            )

            topology = client.cluster_info()
            report.worker_restarts = topology.get("restarts", 0)
            if report.worker_restarts < 1:
                report.errors.append(
                    "the victim worker was never restarted; the kill "
                    "missed (raise kill_after)"
                )
                return report
            if not all(
                row.get("alive")
                for row in topology.get("per_worker", [])
            ):
                report.errors.append(
                    f"fleet not fully alive after restart: {topology}"
                )
                return report

            info = client.recover_info()
            owner_info = info.get("per_worker", [])[owner]
            recovered = {
                r["session"]: r
                for r in owner_info.get("recovered", [])
            }
            record = recovered.get(session)
            if record is None or record.get("skipped"):
                report.errors.append(
                    f"session {session!r} was not WAL-recovered by "
                    f"the restarted worker: {recovered}"
                )
                return report
            report.recovered_vertices = record.get("vertices", 0)
            report.torn_tail = record.get("torn_tail")
            if report.torn_tail:
                say(
                    f"recovery dropped a torn WAL tail "
                    f"({report.torn_tail})"
                )

            # presence of every acknowledged insertion, in one batch
            try:
                client.query_batch(session, [(v, v) for v in acked])
            except Exception as exc:  # noqa: BLE001 - report, don't die
                report.errors.append(
                    f"presence probe over acked vertices failed: {exc}"
                )
                for vid in acked:
                    try:
                        client.query_batch(session, [(vid, vid)])
                    except Exception:
                        report.lost.append(vid)
                say(
                    f"{len(report.lost)} acknowledged insertions "
                    "missing after worker restart"
                )
                return report

            rng = random.Random(seed + 1)
            pairs = [
                (rng.choice(acked), rng.choice(acked))
                for _ in range(queries)
            ]
            answers = client.query_batch(session, pairs)
            wrong = sum(
                1
                for (a, b), answer in zip(pairs, answers)
                if answer != reaches(run.graph, a, b)
            )
            report.verified_pairs = len(pairs)
            report.wrong_answers = wrong
            if wrong:
                report.errors.append(
                    f"{wrong}/{len(pairs)} post-restart answers "
                    "contradict BFS ground truth"
                )
            say(
                f"zero acknowledged insertions lost across "
                f"{report.worker_restarts} worker restart(s); "
                f"{len(pairs)} answers BFS-verified ({wrong} wrong)"
            )
            client.shutdown_server()
        process.wait(timeout=30.0)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30.0)
        if owns_dir:
            tempdir.cleanup()
    return report
