"""Replay/load generation for the provenance query service.

``repro.loadgen`` synthesizes mixed scenario workloads -- ingest-heavy,
query-heavy, hot-key skew, many small churning sessions, one sweep per
registered dynamic labeling scheme -- and drives them through a
closed-loop worker pool against either an in-process
:class:`~repro.service.engine.QueryEngine` or a live server over TCP
(using the pipelined ``query_batch`` fast path).  The result is a
:class:`~repro.loadgen.runner.LoadReport`: throughput, per-op counts,
and every error the service returned.

Entry points: ``repro loadgen`` on the command line, and
:func:`run_scenario` / :func:`scenarios` from code (the shard-scaling
section of ``benchmarks/bench_service.py`` is built on them).
"""

from repro.loadgen.crash import CrashReport, run_crash_recovery
from repro.loadgen.driver import (
    ClientDriver,
    EngineDriver,
    client_driver_factory,
    engine_driver_factory,
)
from repro.loadgen.runner import LoadReport, run_scenario
from repro.loadgen.scenarios import Scenario, get_scenario, scenarios

__all__ = [
    "Scenario",
    "scenarios",
    "get_scenario",
    "LoadReport",
    "run_scenario",
    "CrashReport",
    "run_crash_recovery",
    "EngineDriver",
    "ClientDriver",
    "engine_driver_factory",
    "client_driver_factory",
]
