"""The closed-loop load runner: scenario in, :class:`LoadReport` out.

Each worker owns one live session and loops until the deadline: with
probability ``scenario.query_fraction`` it issues a query batch over
the vertices it has inserted so far (optionally skewed onto a hot set),
otherwise it ingests the next chunk of its synthesized run.  A run that
reaches its end closes the session and opens a fresh one -- so
ingest-heavy scenarios naturally exercise session churn, and every
insertion stream is a *real* execution of the scenario's workflow spec
(synthesized via :func:`repro.workflow.derivation.sample_run`), never
random garbage the labeler would reject.

Closed loop means each worker has one operation in flight: measured
throughput is honest end-to-end capacity at the offered concurrency,
not an open-loop arrival fantasy.  Any exception -- a failure response
over TCP, an engine error in process, an answer that contradicts BFS
ground truth under ``verify`` -- is captured in ``LoadReport.errors``
(the run keeps going on the other workers; the failed worker stops).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.loadgen.driver import DriverFactory
from repro.loadgen.scenarios import Scenario
from repro.obs.histogram import Histogram, merge_snapshots
from repro.service.sessions import resolve_spec
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation


@dataclass
class LoadReport:
    """Aggregated outcome of one scenario run.

    ``elapsed`` is the measurement window the rates divide by: the
    longest per-worker closed-loop phase, which *excludes* session
    setup and prefill (every worker starts its own clock after setup).
    ``wall_seconds`` is the full wall time including setup/teardown.

    ``query_latency``/``ingest_latency`` are per-operation latency
    summaries (count/sum/mean/min/max and p50/p95/p99, in seconds)
    merged exactly from each worker's :class:`repro.obs.Histogram` --
    one query_batch or ingest round trip per sample, so over TCP they
    include the wire.
    """

    scenario: str
    transport: str
    workers: int
    requested_duration: float
    elapsed: float
    wall_seconds: float = 0.0
    operations: int = 0
    queries: int = 0
    query_batches: int = 0
    ingested: int = 0
    sessions_created: int = 0
    sessions_closed: int = 0
    errors: List[str] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    query_latency: Dict[str, Any] = field(default_factory=dict)
    ingest_latency: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def qps(self) -> float:
        return self.queries / self.elapsed if self.elapsed else 0.0

    @property
    def ingest_eps(self) -> float:
        return self.ingested / self.elapsed if self.elapsed else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "transport": self.transport,
            "workers": self.workers,
            "requested_duration": self.requested_duration,
            "elapsed": self.elapsed,
            "wall_seconds": self.wall_seconds,
            "operations": self.operations,
            "queries": self.queries,
            "query_batches": self.query_batches,
            "ingested": self.ingested,
            "sessions_created": self.sessions_created,
            "sessions_closed": self.sessions_closed,
            "qps": self.qps,
            "ingest_eps": self.ingest_eps,
            "ok": self.ok,
            "errors": list(self.errors),
            "stats": dict(self.stats),
            "query_latency": dict(self.query_latency),
            "ingest_latency": dict(self.ingest_latency),
        }


class _Worker:
    """One closed-loop worker: a session, its run, its RNG."""

    def __init__(
        self,
        index: int,
        scenario: Scenario,
        driver,
        prefix: str,
        seed: int,
        verify: bool,
    ) -> None:
        self.index = index
        self.scenario = scenario
        self.driver = driver
        self.prefix = prefix
        self.rng = random.Random(f"{scenario.name}:{seed}:{index}")
        self.verify = verify
        run = sample_run(
            resolve_spec(scenario.spec),
            scenario.run_size,
            random.Random(f"{scenario.name}:{seed}:{index}:run"),
        )
        self.graph = run.graph
        self.events = execution_from_derivation(run).insertions
        self.generation = 0
        self.session: Optional[str] = None
        self.cursor = 0
        self.seen: List[int] = []
        # counters, harvested by the runner after join
        self.operations = 0
        self.queries = 0
        self.query_batches = 0
        self.ingested = 0
        self.sessions_created = 0
        self.sessions_closed = 0
        self.busy_seconds = 0.0  # closed-loop phase only, not setup
        self.errors: List[str] = []
        # per-operation latency, merged across workers by the runner
        self.query_hist = Histogram()
        self.ingest_hist = Histogram()

    # -- session lifecycle ---------------------------------------------
    def open_session(self) -> None:
        self.generation += 1
        self.session = f"{self.prefix}-w{self.index}-g{self.generation}"
        self.driver.create_session(
            self.session, self.scenario.spec, self.scenario.scheme
        )
        self.sessions_created += 1
        self.cursor = 0
        self.seen = []
        self.ingest_chunk(max(2, self.scenario.prefill))

    def close_session(self) -> None:
        if self.session is not None:
            self.driver.close_session(self.session)
            self.sessions_closed += 1
            self.session = None

    # -- operations ----------------------------------------------------
    def ingest_chunk(self, size: Optional[int] = None) -> None:
        if self.cursor >= len(self.events):
            # the run completed: churn to a fresh session
            self.close_session()
            self.open_session()
            return
        size = size or self.scenario.ingest_chunk
        chunk = self.events[self.cursor : self.cursor + size]
        started = time.perf_counter()
        self.driver.ingest(self.session, chunk)
        self.ingest_hist.record(time.perf_counter() - started)
        self.cursor += len(chunk)
        self.seen.extend(event.vid for event in chunk)
        self.ingested += len(chunk)

    def sample_pairs(self) -> List[Tuple[int, int]]:
        scenario, rng, seen = self.scenario, self.rng, self.seen
        hot = seen[: max(1, int(len(seen) * scenario.hot_keys))]
        pairs = []
        for _ in range(scenario.batch_pairs):
            pool = (
                hot
                if scenario.hot_fraction
                and rng.random() < scenario.hot_fraction
                else seen
            )
            pairs.append((rng.choice(pool), rng.choice(pool)))
        return pairs

    def query_once(self) -> None:
        pairs = self.sample_pairs()
        started = time.perf_counter()
        answers = self.driver.query_batch(self.session, pairs)
        self.query_hist.record(time.perf_counter() - started)
        self.query_batches += 1
        self.queries += len(pairs)
        if self.verify:
            from repro.graphs.reachability import reaches

            for (a, b), answer in zip(pairs, answers):
                if answer != reaches(self.graph, a, b):
                    raise AssertionError(
                        f"answer {a}~>{b} = {answer} contradicts BFS"
                    )

    # -- the loop ------------------------------------------------------
    def run(self, duration: float) -> None:
        """Set up, then issue closed-loop ops for ``duration`` seconds.

        The clock starts *after* session setup so every worker gets the
        full measurement window regardless of how long synthesis and
        prefill took on its thread.
        """
        try:
            self.open_session()
            loop_started = time.monotonic()
            deadline = loop_started + duration
            try:
                while time.monotonic() < deadline:
                    if (
                        len(self.seen) >= 2
                        and self.rng.random() < self.scenario.query_fraction
                    ):
                        self.query_once()
                    else:
                        self.ingest_chunk()
                    self.operations += 1
            finally:
                self.busy_seconds = time.monotonic() - loop_started
            self.close_session()
        except Exception as exc:
            self.errors.append(
                f"worker {self.index} ({type(exc).__name__}): {exc}"
            )
        finally:
            try:
                self.driver.finish()
            except Exception:  # pragma: no cover  # repro: noqa[broad-except] -- teardown is best-effort; worker errors were already recorded above
                pass


def run_scenario(
    scenario: Scenario,
    driver_factory: DriverFactory,
    duration: float = 5.0,
    workers: Optional[int] = None,
    seed: int = 0,
    session_prefix: Optional[str] = None,
    verify: bool = False,
) -> LoadReport:
    """Drive ``scenario`` through a worker pool; returns the report.

    ``workers`` defaults to the scenario's session count (one live
    session per worker).  ``session_prefix`` namespaces the session
    names so concurrent runs against one shared server cannot collide.
    ``verify`` checks every answer against BFS ground truth on the
    synthesized run graph (slow; for smoke tests, not throughput runs).
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    count = workers if workers is not None else scenario.sessions
    if count < 1:
        raise ValueError("workers must be >= 1")
    prefix = session_prefix or f"loadgen-{scenario.name}-{seed}"
    pool = [
        _Worker(index, scenario, driver_factory(), prefix, seed, verify)
        for index in range(count)
    ]
    threads = [
        threading.Thread(target=worker.run, args=(duration,), daemon=True)
        for worker in pool
    ]
    begun = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=duration + 60.0)
    wall = time.monotonic() - begun
    # rates divide by the longest closed-loop phase, so per-worker
    # setup/prefill (which runs before each worker starts its clock)
    # cannot deflate the reported throughput
    measured = max((worker.busy_seconds for worker in pool), default=0.0)
    report = LoadReport(
        scenario=scenario.name,
        transport=getattr(pool[0].driver, "transport", "unknown"),
        workers=count,
        requested_duration=duration,
        elapsed=measured,
        wall_seconds=wall,
    )
    for thread in threads:
        if thread.is_alive():  # pragma: no cover - hang diagnostics
            report.errors.append("worker failed to stop before the join "
                                 "timeout")
    for worker in pool:
        report.operations += worker.operations
        report.queries += worker.queries
        report.query_batches += worker.query_batches
        report.ingested += worker.ingested
        report.sessions_created += worker.sessions_created
        report.sessions_closed += worker.sessions_closed
        report.errors.extend(worker.errors)
    report.query_latency = merge_snapshots(
        worker.query_hist.snapshot() for worker in pool
    ).to_dict()
    report.ingest_latency = merge_snapshots(
        worker.ingest_hist.snapshot() for worker in pool
    ).to_dict()
    try:
        snapshotter = driver_factory()
        try:
            report.stats = snapshotter.stats()
        finally:
            snapshotter.finish()
    except Exception as exc:  # pragma: no cover - stats best effort
        report.errors.append(f"stats snapshot failed: {exc}")
    return report
