"""Named load scenarios: synthesized mixed workloads for the service.

A :class:`Scenario` is a declarative recipe -- which spec and labeling
scheme, how many concurrent sessions, how large each hosted run is, the
query/ingest mix, the key-skew shape -- that the runner turns into a
closed-loop workload against a live engine or server.

The builtin catalog covers the service's interesting regimes:

* ``mixed`` -- the default 70/30 query/ingest blend;
* ``query-heavy`` -- warm-cache read throughput (the shard-scaling
  benchmark's workload);
* ``ingest-heavy`` -- write-dominated, with sessions churning as their
  runs complete;
* ``hot-key`` -- Zipf-ish skew: most queries hammer a small hot set,
  stressing one cache shard's LRU;
* ``many-small-sessions`` -- lots of short-lived runs, stressing the
  session registry's create/close path;
* ``scheme-<name>`` -- one sweep per registered *dynamic* labeling
  backend (built from :mod:`repro.schemes.registry`, so a newly
  registered scheme gets a scenario for free).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.errors import ServiceError


@dataclass(frozen=True)
class Scenario:
    """One declarative load recipe (see module docstring)."""

    name: str
    summary: str
    spec: str = "running-example"
    scheme: str = "drl"
    sessions: int = 4          # concurrent workers, one session each
    run_size: int = 300        # vertices per hosted run
    prefill: int = 48          # events ingested before the loop starts
    query_fraction: float = 0.7  # P(an op is a query batch, not ingest)
    batch_pairs: int = 64      # pairs per query batch
    ingest_chunk: int = 32     # events per ingest op
    hot_fraction: float = 0.0  # P(a query pair is drawn from the hot set)
    hot_keys: float = 0.1      # fraction of inserted vids that are "hot"

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        return asdict(self)


def _builtin() -> List[Scenario]:
    base = Scenario(
        name="mixed",
        summary="70/30 query/ingest blend over concurrent sessions",
    )
    catalog = [
        base,
        replace(
            base,
            name="query-heavy",
            summary="warm-cache read throughput; rare ingests",
            query_fraction=0.97,
            batch_pairs=128,
        ),
        replace(
            base,
            name="ingest-heavy",
            summary="write-dominated; sessions churn as runs complete",
            query_fraction=0.15,
            run_size=400,
            ingest_chunk=48,
        ),
        replace(
            base,
            name="hot-key",
            summary="Zipf-ish skew: 90% of queries hit 5% of vertices",
            query_fraction=0.9,
            hot_fraction=0.9,
            hot_keys=0.05,
        ),
        replace(
            base,
            name="many-small-sessions",
            summary="short-lived runs stressing create/close",
            sessions=8,
            run_size=60,
            prefill=16,
            query_fraction=0.5,
            ingest_chunk=16,
        ),
    ]
    return catalog


def scenarios() -> Dict[str, Scenario]:
    """The full catalog, including one sweep per dynamic scheme."""
    from repro.schemes import registry as scheme_registry
    from repro.service.selftest import default_spec_for

    catalog = {scenario.name: scenario for scenario in _builtin()}
    for scheme in scheme_registry.available(dynamic=True):
        scenario = Scenario(
            name=f"scheme-{scheme}",
            summary=f"mixed sweep under the {scheme!r} labeling backend",
            spec=default_spec_for(scheme),
            scheme=scheme,
            query_fraction=0.8,
        )
        catalog[scenario.name] = scenario
    return catalog


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name; :class:`ServiceError` when unknown."""
    catalog = scenarios()
    try:
        return catalog[name]
    except KeyError:
        raise ServiceError(
            f"unknown scenario {name!r}; available: {sorted(catalog)}"
        ) from None
