"""Load-generator drivers: the same workload, in-process or over TCP.

A *driver* is the thin facade a load worker talks to -- create/ingest/
query/close plus a stats snapshot -- with two implementations:

* :class:`EngineDriver` calls a shared :class:`QueryEngine` directly,
  isolating engine cost (lock striping, cache behavior) from transport
  cost; the engine is thread-safe, so every worker shares one driver.
* :class:`ClientDriver` speaks the JSON-lines protocol to a live
  server through a :class:`ServiceClient`, one connection per worker
  (the client is deliberately not thread-safe), using the pipelined
  ``query_batch`` fast path for its batches.

Workers receive their driver from a factory so each transport can pick
its own sharing model (shared engine vs. per-worker socket).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.service.client import ServiceClient
from repro.service.engine import QueryEngine

Driver = Any  # duck-typed: EngineDriver | ClientDriver
DriverFactory = Callable[[], Driver]


class EngineDriver:
    """Drives a (thread-safe) in-process engine directly."""

    transport = "in-process"

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine
        self.manager = engine.manager

    def create_session(self, name: str, spec: str, scheme: str) -> None:
        self.manager.create(name, spec, scheme=scheme)

    def ingest(self, name: str, insertions) -> int:
        count, _ = self.engine.ingest(name, insertions)
        return count

    def query_batch(
        self, name: str, pairs: Sequence[Tuple[int, int]]
    ) -> List[bool]:
        return self.engine.query_many(name, pairs)

    def close_session(self, name: str) -> None:
        session = self.manager.close(name)
        self.engine.drop_session_entries(session)

    def stats(self) -> Dict[str, Any]:
        return self.engine.stats().to_dict()

    def finish(self) -> None:
        """Nothing to release for the in-process transport."""


class ClientDriver:
    """Drives a live server over one JSON-lines TCP connection."""

    transport = "tcp"

    def __init__(
        self, host: str, port: int, chunk: int = 256, timeout: float = 30.0
    ) -> None:
        self.client = ServiceClient(host, port, timeout=timeout)
        self.chunk = chunk

    def create_session(self, name: str, spec: str, scheme: str) -> None:
        self.client.create_session(name, spec, scheme=scheme)

    def ingest(self, name: str, insertions) -> int:
        return int(self.client.ingest(name, insertions)["ingested"])

    def query_batch(
        self, name: str, pairs: Sequence[Tuple[int, int]]
    ) -> List[bool]:
        return self.client.query_batch(name, pairs, chunk=self.chunk)

    def close_session(self, name: str) -> None:
        self.client.close_session(name)

    def stats(self) -> Dict[str, Any]:
        return self.client.stats()

    def finish(self) -> None:
        self.client.close()


def engine_driver_factory(engine: QueryEngine) -> DriverFactory:
    """All workers share the one engine (it is thread-safe)."""
    driver = EngineDriver(engine)
    return lambda: driver


def client_driver_factory(
    host: str, port: int, chunk: int = 256, timeout: float = 30.0
) -> DriverFactory:
    """Each worker opens its own connection (clients are not)."""
    return lambda: ClientDriver(host, port, chunk=chunk, timeout=timeout)
