"""The four graph operations of the paper (Definitions 1-4).

* :func:`series_composition`  -- ``S(g1, ..., gn)`` (Definition 1)
* :func:`parallel_composition` -- ``P(g1, ..., gn)`` (Definition 2)
* :func:`insert_vertex`        -- ``g + (v, C)``     (Definition 3)
* :func:`replace_vertex`       -- ``g[u / h]``       (Definition 4)

Compositions require operand graphs with pairwise disjoint vertex sets and
produce a *new* graph; insertion and replacement mutate ``g`` in place,
which is what the dynamic labeling problems need (the run graph evolves,
vertex identities persist).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import GraphError
from repro.graphs.digraph import NamedDAG, merge_disjoint
from repro.graphs.two_terminal import TwoTerminalGraph, check_disjoint


def series_composition(graphs: Sequence[TwoTerminalGraph]) -> TwoTerminalGraph:
    """Definition 1: chain ``g1 -> g2 -> ... -> gn`` through sink-source edges.

    Takes the union of vertex and edge sets and adds the edge
    ``(t(g_i), s(g_{i+1}))`` for consecutive operands.  The result is again
    two-terminal with source ``s(g1)`` and sink ``t(gn)``.
    """
    if not graphs:
        raise GraphError("series composition of zero graphs")
    check_disjoint(graphs)
    merged = merge_disjoint(g.dag for g in graphs)
    for left, right in zip(graphs, graphs[1:]):
        merged.add_edge(left.sink, right.source)
    return TwoTerminalGraph(merged, graphs[0].source, graphs[-1].sink)


def parallel_composition(graphs: Sequence[TwoTerminalGraph]) -> NamedDAG:
    """Definition 2: the plain union of the operands' vertex and edge sets.

    Note the result is *not* two-terminal (it has ``n`` sources and ``n``
    sinks); the paper only ever uses it as the body of a vertex replacement,
    where Definition 4 wires every source to the predecessors and every sink
    to the successors of the replaced fork vertex.
    """
    if not graphs:
        raise GraphError("parallel composition of zero graphs")
    check_disjoint(graphs)
    return merge_disjoint(g.dag for g in graphs)


def insert_vertex(graph: NamedDAG, vid: int, name: str, preds: Iterable[int]) -> None:
    """Definition 3: add ``vid`` with edges from every vertex in ``preds``.

    This is the update primitive of the *execution-based* dynamic labeling
    problem: a module execution is appended with edges from the already
    executed vertices that produced its inputs.  Mutates ``graph``.
    """
    pred_list = list(preds)
    for p in pred_list:
        if p not in graph:
            raise GraphError(f"insertion predecessor {p} not in graph")
    graph.add_vertex(vid, name)
    for p in pred_list:
        graph.add_edge(p, vid)


def replace_vertex(graph: NamedDAG, u: int, body: NamedDAG) -> None:
    """Definition 4: ``g[u / h]`` -- substitute vertex ``u`` by the graph ``h``.

    Deletes ``u`` (and its incident edges), adds ``h``, and wires every
    predecessor of ``u`` to every *source* of ``h`` and every *sink* of
    ``h`` to every successor of ``u``.  ``h`` may be a two-terminal graph's
    DAG or a parallel composition with several sources/sinks (the fork
    case).  Mutates ``graph``; ``body``'s vertex ids must be disjoint from
    ``graph``'s.

    This is the update primitive of the *derivation-based* dynamic labeling
    problem.  Replacement preserves reachability among pre-existing vertices
    (Remark 1 / Lemma 4.3), which is what makes persistent labels possible.
    """
    if u not in graph:
        raise GraphError(f"replaced vertex {u} not in graph")
    for v in body.vertices():
        if v in graph:
            raise GraphError(f"replacement body reuses vertex id {v}")
    preds = graph.predecessors(u)
    succs = graph.successors(u)
    graph.remove_vertex(u)
    for v in body.vertices():
        graph.add_vertex(v, body.name(v))
    body_sources = []
    body_sinks = []
    for v in body.vertices():
        if not body.predecessors(v):
            body_sources.append(v)
        if not body.successors(v):
            body_sinks.append(v)
    for a, b in body.edges():
        graph.add_edge(a, b)
    for p in preds:
        for s in body_sources:
            graph.add_edge(p, s)
    for t in body_sinks:
        for q in succs:
            graph.add_edge(t, q)
