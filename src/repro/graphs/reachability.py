"""Reachability utilities: BFS search and bitset transitive closure.

``v ;_g v'`` in the paper denotes "there is a path from v to v' in g".
Throughout this library reachability is *reflexive*: every vertex reaches
itself (paths of length zero), matching the reflexive-transitive closures
used by the paper's grammar machinery and making the labeling predicates
total.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set

from repro.errors import GraphError
from repro.graphs.digraph import NamedDAG


def reaches(graph: NamedDAG, u: int, v: int) -> bool:
    """True when there is a (possibly empty) path from ``u`` to ``v``.

    Plain BFS; O(|V| + |E|).  This is the ground-truth oracle the labeling
    schemes are tested against, and also the query procedure of the ``BFS``
    skeleton scheme.
    """
    if u not in graph or v not in graph:
        raise GraphError("reachability query on vertices not in graph")
    if u == v:
        return True
    seen = {u}
    queue = deque((u,))
    while queue:
        w = queue.popleft()
        for succ in graph.successors(w):
            if succ == v:
                return True
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return False


def descendants_of(graph: NamedDAG, u: int) -> Set[int]:
    """All vertices reachable from ``u``, including ``u`` itself."""
    seen = {u}
    queue = deque((u,))
    while queue:
        w = queue.popleft()
        for succ in graph.successors(w):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


def ancestors_of(graph: NamedDAG, v: int) -> Set[int]:
    """All vertices that reach ``v``, including ``v`` itself."""
    seen = {v}
    queue = deque((v,))
    while queue:
        w = queue.popleft()
        for pred in graph.predecessors(w):
            if pred not in seen:
                seen.add(pred)
                queue.append(pred)
    return seen


class TransitiveClosure:
    """Materialized transitive closure of a DAG, stored as integer bitsets.

    Vertices are ranked in topological order; the closure row of a vertex is
    a Python integer whose bit ``r`` is set when the vertex with rank ``r``
    reaches it.  Construction is O(|V| * |E| / wordsize); queries are O(1)
    word operations.  This mirrors the TCL skeleton scheme of Section 3.2.
    """

    __slots__ = ("_rank", "_row")

    def __init__(self, graph: NamedDAG) -> None:
        order = graph.topological_order()
        self._rank: Dict[int, int] = {v: i for i, v in enumerate(order)}
        # _row[v] has bit rank(u) set iff u reaches v (u != v).
        self._row: Dict[int, int] = {v: 0 for v in order}
        for v in order:
            mask = self._row[v] | (1 << self._rank[v])
            for succ in graph.successors(v):
                self._row[succ] |= mask

    def reaches(self, u: int, v: int) -> bool:
        """True when ``u`` reaches ``v`` (reflexive)."""
        if u == v:
            return u in self._rank
        return bool(self._row[v] >> self._rank[u] & 1)

    def rank(self, v: int) -> int:
        """Topological rank of ``v`` used for the bitset rows."""
        return self._rank[v]

    def row_bits(self, v: int) -> int:
        """Raw ancestor bitset of ``v`` (excluding ``v`` itself)."""
        return self._row[v]

    def __len__(self) -> int:
        return len(self._rank)


def closure_pairs(graph: NamedDAG) -> Set[tuple]:
    """The full reachability relation as a set of ordered pairs.

    Exponential in memory for large graphs; meant for tests on small graphs.
    Includes the reflexive pairs ``(v, v)``.
    """
    pairs = set()
    for u in graph.vertices():
        for v in descendants_of(graph, u):
            pairs.add((u, v))
    return pairs


def restrict_topological(graph: NamedDAG, subset: Iterable[int]) -> List[int]:
    """Topological order of ``graph`` restricted to ``subset``."""
    keep = set(subset)
    return [v for v in graph.topological_order() if v in keep]
