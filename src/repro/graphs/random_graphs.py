"""Random two-terminal DAG generation for synthetic workloads.

The synthetic workflows of Section 7.3 use "random two-terminal graphs of
some fixed size" as sub-workflow bodies.  :func:`random_two_terminal_dag`
produces such graphs with the *spanning* property (every vertex on a
source-to-sink path), which the paper's loop-case reasoning assumes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import GraphError
from repro.graphs.digraph import NamedDAG
from repro.graphs.two_terminal import TwoTerminalGraph


def random_two_terminal_dag(
    size: int,
    rng: random.Random,
    names: Optional[Sequence[str]] = None,
    extra_edge_prob: float = 0.15,
) -> TwoTerminalGraph:
    """Generate a random spanning two-terminal DAG with ``size`` vertices.

    Construction: place the vertices on a random topological line with the
    source first and the sink last; give every internal vertex one random
    predecessor and one random successor consistent with the line (which
    guarantees the spanning property), then sprinkle extra forward edges
    with probability ``extra_edge_prob``.

    ``names`` supplies the vertex names positionally (defaults to
    ``v0..v{size-1}``); vertex ids are ``0..size-1`` in line order.
    """
    if size < 2:
        raise GraphError("a two-terminal graph needs at least 2 vertices")
    if names is None:
        names = [f"v{i}" for i in range(size)]
    if len(names) != size:
        raise GraphError(f"expected {size} names, got {len(names)}")
    dag = NamedDAG()
    for vid in range(size):
        dag.add_vertex(vid, names[vid])
    # every internal vertex gets a predecessor earlier on the line ...
    for vid in range(1, size):
        pred = rng.randrange(0, vid)
        dag.add_edge(pred, vid)
    # ... and a successor later on the line (sink excluded).
    for vid in range(0, size - 1):
        if not dag.successors(vid):
            succ = rng.randrange(vid + 1, size)
            dag.add_edge(vid, succ)
    # sprinkle extra forward edges.
    if extra_edge_prob > 0:
        for u in range(size - 1):
            for v in range(u + 1, size):
                if rng.random() < extra_edge_prob and not dag.has_edge(u, v):
                    dag.add_edge(u, v)
    # ensure single source / single sink: wire stray sources below 0,
    # stray sinks above size-1.
    for v in list(dag.vertices()):
        if v != 0 and not dag.predecessors(v):
            dag.add_edge(rng.randrange(0, v), v)
        if v != size - 1 and not dag.successors(v):
            dag.add_edge(v, rng.randrange(v + 1, size))
    graph = TwoTerminalGraph(dag, 0, size - 1)
    graph.validate()
    return graph


def random_chain(size: int, names: Optional[Sequence[str]] = None) -> TwoTerminalGraph:
    """A deterministic path graph with ``size`` vertices (useful in tests)."""
    if size < 1:
        raise GraphError("chain needs at least one vertex")
    if names is None:
        names = [f"v{i}" for i in range(size)]
    dag = NamedDAG()
    for vid in range(size):
        dag.add_vertex(vid, names[vid])
    for vid in range(size - 1):
        dag.add_edge(vid, vid + 1)
    return TwoTerminalGraph(dag, 0, size - 1)


def random_insertion_order(
    graph: NamedDAG, rng: random.Random
) -> List[int]:
    """A uniformly-random-ish topological order of ``graph``.

    Kahn's algorithm with random tie-breaking; used to turn derivations
    into execution (insertion) sequences.
    """
    indeg = {v: graph.in_degree(v) for v in graph.vertices()}
    ready = [v for v, d in indeg.items() if d == 0]
    order: List[int] = []
    while ready:
        idx = rng.randrange(len(ready))
        ready[idx], ready[-1] = ready[-1], ready[idx]
        v = ready.pop()
        order.append(v)
        for w in graph.successors(v):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(order) != len(list(graph.vertices())):
        raise GraphError("graph contains a cycle")
    return order
