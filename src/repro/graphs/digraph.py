"""Core directed-graph container used throughout the library.

The paper's graphs are directed acyclic graphs with no self-loops or
multi-edges whose vertices carry a *name* (a module name chosen from a
finite alphabet).  :class:`NamedDAG` stores exactly that: integer vertex
identifiers, a name per vertex, and forward/backward adjacency sets.

Acyclicity is a *validated* property rather than one enforced on every
edge insertion (per-edge enforcement would make construction quadratic);
callers that build graphs from untrusted input should call
:meth:`NamedDAG.validate`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import CycleError, GraphError


class IdAllocator:
    """Allocates fresh integer vertex identifiers.

    A single allocator is shared by everything that contributes vertices to
    one evolving run graph, so identifiers stay globally unique across
    instantiated sub-workflow copies.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def fresh(self) -> int:
        """Return a new identifier, never returned before by this allocator."""
        vid = self._next
        self._next += 1
        return vid

    def fresh_many(self, count: int) -> List[int]:
        """Return ``count`` new identifiers."""
        return [self.fresh() for _ in range(count)]

    @property
    def high_water_mark(self) -> int:
        """The next identifier that would be handed out."""
        return self._next


class NamedDAG:
    """A mutable directed acyclic graph with named vertices.

    Vertices are integers; each vertex has a string name (the module name in
    workflow terms).  Self-loops are rejected eagerly; multi-edges collapse
    (adjacency is a set).  Cycles are detected by :meth:`validate` /
    :meth:`topological_order`.
    """

    __slots__ = ("_names", "_succ", "_pred")

    def __init__(self) -> None:
        self._names: Dict[int, str] = {}
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vid: int, name: str) -> int:
        """Add vertex ``vid`` labeled ``name``.  Re-adding is an error."""
        if vid in self._names:
            raise GraphError(f"vertex {vid} already present")
        self._names[vid] = name
        self._succ[vid] = set()
        self._pred[vid] = set()
        return vid

    def add_edge(self, u: int, v: int) -> None:
        """Add the directed edge ``(u, v)``.

        Both endpoints must exist; self-loops are rejected.  Duplicate edges
        are silently collapsed (the paper's graphs have no multi-edges).
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u} not allowed")
        if u not in self._names:
            raise GraphError(f"edge source {u} not in graph")
        if v not in self._names:
            raise GraphError(f"edge target {v} not in graph")
        self._succ[u].add(v)
        self._pred[v].add(u)

    def rename_vertex(self, vid: int, name: str) -> None:
        """Change the name of an existing vertex."""
        if vid not in self._names:
            raise GraphError(f"vertex {vid} not in graph")
        self._names[vid] = name

    def remove_vertex(self, vid: int) -> None:
        """Remove ``vid`` and every edge incident to it."""
        if vid not in self._names:
            raise GraphError(f"vertex {vid} not in graph")
        for succ in self._succ[vid]:
            self._pred[succ].discard(vid)
        for pred in self._pred[vid]:
            self._succ[pred].discard(vid)
        del self._names[vid]
        del self._succ[vid]
        del self._pred[vid]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, vid: int) -> bool:
        return vid in self._names

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[int]:
        return iter(self._names)

    def name(self, vid: int) -> str:
        """Return the name of vertex ``vid`` (``Name(v)`` in the paper)."""
        try:
            return self._names[vid]
        except KeyError:
            raise GraphError(f"vertex {vid} not in graph") from None

    def vertices(self) -> Iterable[int]:
        """Iterate over vertex identifiers."""
        return self._names.keys()

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over directed edges as ``(u, v)`` pairs."""
        for u, succs in self._succ.items():
            for v in succs:
                yield (u, v)

    def edge_count(self) -> int:
        """The number of directed edges."""
        return sum(len(s) for s in self._succ.values())

    def has_edge(self, u: int, v: int) -> bool:
        """Return True when the edge ``(u, v)`` is present."""
        return u in self._succ and v in self._succ[u]

    def successors(self, vid: int) -> Set[int]:
        """Direct successors of ``vid`` (returned as a fresh set)."""
        try:
            return set(self._succ[vid])
        except KeyError:
            raise GraphError(f"vertex {vid} not in graph") from None

    def predecessors(self, vid: int) -> Set[int]:
        """Direct predecessors of ``vid`` (returned as a fresh set)."""
        try:
            return set(self._pred[vid])
        except KeyError:
            raise GraphError(f"vertex {vid} not in graph") from None

    def out_degree(self, vid: int) -> int:
        """Number of outgoing edges of ``vid``."""
        return len(self._succ[vid])

    def in_degree(self, vid: int) -> int:
        """Number of incoming edges of ``vid``."""
        return len(self._pred[vid])

    def sources(self) -> List[int]:
        """Vertices with no incoming edges."""
        return [v for v in self._names if not self._pred[v]]

    def sinks(self) -> List[int]:
        """Vertices with no outgoing edges."""
        return [v for v in self._names if not self._succ[v]]

    def vertices_named(self, name: str) -> List[int]:
        """All vertices labeled ``name``."""
        return [v for v, n in self._names.items() if n == name]

    # ------------------------------------------------------------------
    # orderings and validation
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Return a topological order of the vertices (Kahn's algorithm).

        Raises :class:`CycleError` if the graph contains a cycle.
        """
        indeg = {v: len(self._pred[v]) for v in self._names}
        queue = deque(v for v, d in indeg.items() if d == 0)
        order: List[int] = []
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in self._succ[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    queue.append(w)
        if len(order) != len(self._names):
            raise CycleError("graph contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        """True when the graph has no directed cycle."""
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` on failure.

        Verifies adjacency symmetry (every forward edge has its backward
        mirror) and acyclicity.
        """
        for u, succs in self._succ.items():
            for v in succs:
                if u not in self._pred[v]:
                    raise GraphError(f"asymmetric adjacency for edge ({u}, {v})")
        for v, preds in self._pred.items():
            for u in preds:
                if v not in self._succ[u]:
                    raise GraphError(f"asymmetric adjacency for edge ({u}, {v})")
        self.topological_order()

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def copy(self) -> "NamedDAG":
        """Return an independent deep copy (same vertex identifiers)."""
        other = NamedDAG()
        other._names = dict(self._names)
        other._succ = {v: set(s) for v, s in self._succ.items()}
        other._pred = {v: set(p) for v, p in self._pred.items()}
        return other

    def relabeled(self, mapping: Dict[int, int]) -> "NamedDAG":
        """Return a copy with vertex ids substituted through ``mapping``.

        Every vertex must be a key of ``mapping`` and the mapped ids must be
        pairwise distinct.
        """
        other = NamedDAG()
        for v, name in self._names.items():
            other.add_vertex(mapping[v], name)
        for u, v in self.edges():
            other.add_edge(mapping[u], mapping[v])
        if len(other) != len(self):
            raise GraphError("relabeling mapping is not injective")
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NamedDAG(|V|={len(self._names)}, |E|={self.edge_count()})"
        )


def induced_subgraph(graph: NamedDAG, keep: Iterable[int]) -> NamedDAG:
    """Return the subgraph of ``graph`` induced by the vertex set ``keep``."""
    keep_set = set(keep)
    sub = NamedDAG()
    for v in keep_set:
        sub.add_vertex(v, graph.name(v))
    for u, v in graph.edges():
        if u in keep_set and v in keep_set:
            sub.add_edge(u, v)
    return sub


def merge_disjoint(graphs: Iterable[NamedDAG]) -> NamedDAG:
    """Union of vertex/edge sets of pairwise vertex-disjoint graphs."""
    graph_list = list(graphs)
    merged = NamedDAG()
    for g in graph_list:
        for v in g.vertices():
            merged.add_vertex(v, g.name(v))
    for g in graph_list:
        for u, v in g.edges():
            merged.add_edge(u, v)
    return merged


def find_unique(graph: NamedDAG, name: str) -> Optional[int]:
    """Return the unique vertex named ``name`` or None; error if ambiguous."""
    matches = graph.vertices_named(name)
    if not matches:
        return None
    if len(matches) > 1:
        raise GraphError(f"name {name!r} is ambiguous ({len(matches)} vertices)")
    return matches[0]
