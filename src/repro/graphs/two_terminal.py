"""Two-terminal graphs: single source, single sink (the set ``G_Sigma``).

A two-terminal graph is the basic building block of workflow
specifications and runs: the source distributes the initial data and the
sink collects the final results.  The paper additionally relies (implicitly,
e.g. in Lemma 4.2's loop case) on every vertex lying on some source-to-sink
path; :meth:`TwoTerminalGraph.validate` enforces that *spanning* property
and the workload generators always produce spanning graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import GraphError, NotTwoTerminalError
from repro.graphs.digraph import NamedDAG
from repro.graphs.reachability import ancestors_of, descendants_of


class TwoTerminalGraph:
    """A :class:`NamedDAG` together with its distinguished source and sink.

    The wrapper is intentionally thin: the underlying DAG is exposed via
    :attr:`dag` and most read operations delegate to it.  ``s(g)`` and
    ``t(g)`` of the paper are :attr:`source` and :attr:`sink`.
    """

    __slots__ = ("dag", "source", "sink")

    def __init__(self, dag: NamedDAG, source: int, sink: int) -> None:
        if source not in dag:
            raise NotTwoTerminalError(f"source {source} not in graph")
        if sink not in dag:
            raise NotTwoTerminalError(f"sink {sink} not in graph")
        self.dag = dag
        self.source = source
        self.sink = sink

    # ------------------------------------------------------------------
    @classmethod
    def from_dag(cls, dag: NamedDAG) -> "TwoTerminalGraph":
        """Wrap ``dag``, inferring the unique source and sink.

        Raises :class:`NotTwoTerminalError` when the DAG does not have
        exactly one source and one sink.
        """
        sources = dag.sources()
        sinks = dag.sinks()
        if len(sources) != 1:
            raise NotTwoTerminalError(f"expected 1 source, found {len(sources)}")
        if len(sinks) != 1:
            raise NotTwoTerminalError(f"expected 1 sink, found {len(sinks)}")
        return cls(dag, sources[0], sinks[0])

    @classmethod
    def build(
        cls,
        vertices: Iterable[tuple],
        edges: Iterable[tuple],
        source: Optional[int] = None,
        sink: Optional[int] = None,
    ) -> "TwoTerminalGraph":
        """Convenience constructor from ``(vid, name)`` and ``(u, v)`` lists."""
        dag = NamedDAG()
        for vid, name in vertices:
            dag.add_vertex(vid, name)
        for u, v in edges:
            dag.add_edge(u, v)
        if source is None or sink is None:
            return cls.from_dag(dag)
        return cls(dag, source, sink)

    # ------------------------------------------------------------------
    # delegation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.dag)

    def __contains__(self, vid: int) -> bool:
        return vid in self.dag

    def name(self, vid: int) -> str:
        """Name of vertex ``vid``."""
        return self.dag.name(vid)

    def vertices(self) -> Iterable[int]:
        """Vertex identifiers of the underlying DAG."""
        return self.dag.vertices()

    def edges(self):
        """Directed edges of the underlying DAG."""
        return self.dag.edges()

    # ------------------------------------------------------------------
    def validate(self, require_spanning: bool = True) -> None:
        """Validate two-terminality (and, by default, the spanning property).

        * the DAG invariants hold (acyclic, symmetric adjacency);
        * ``source`` is the only vertex without predecessors and ``sink``
          the only one without successors;
        * when ``require_spanning``, every vertex is reachable from the
          source and reaches the sink.
        """
        self.dag.validate()
        sources = self.dag.sources()
        sinks = self.dag.sinks()
        if sources != [self.source] and set(sources) != {self.source}:
            raise NotTwoTerminalError(
                f"expected single source {self.source}, found {sources}"
            )
        if set(sinks) != {self.sink}:
            raise NotTwoTerminalError(
                f"expected single sink {self.sink}, found {sinks}"
            )
        if len(self.dag) == 1 and self.source != self.sink:
            raise NotTwoTerminalError("singleton graph with distinct terminals")
        if require_spanning:
            from_source = descendants_of(self.dag, self.source)
            to_sink = ancestors_of(self.dag, self.sink)
            stray = set(self.dag.vertices()) - (from_source & to_sink)
            if stray:
                raise NotTwoTerminalError(
                    f"vertices not on any source-sink path: {sorted(stray)}"
                )

    # ------------------------------------------------------------------
    def copy(self) -> "TwoTerminalGraph":
        """Independent deep copy with the same vertex identifiers."""
        return TwoTerminalGraph(self.dag.copy(), self.source, self.sink)

    def relabeled(self, mapping: Dict[int, int]) -> "TwoTerminalGraph":
        """Copy with vertex ids substituted through ``mapping``."""
        return TwoTerminalGraph(
            self.dag.relabeled(mapping), mapping[self.source], mapping[self.sink]
        )

    def names(self) -> List[str]:
        """All vertex names (with multiplicity), in no particular order."""
        return [self.dag.name(v) for v in self.dag.vertices()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TwoTerminalGraph(|V|={len(self.dag)}, source={self.source}, "
            f"sink={self.sink})"
        )


def check_disjoint(graphs: Iterable[TwoTerminalGraph]) -> None:
    """Raise :class:`GraphError` unless the graphs' vertex sets are disjoint."""
    seen: set = set()
    for g in graphs:
        for v in g.vertices():
            if v in seen:
                raise GraphError(f"vertex {v} appears in more than one operand")
            seen.add(v)
