"""Graph substrate: DAGs, two-terminal graphs and the paper's operations.

This package implements every graph notion used by the paper:

* :class:`~repro.graphs.digraph.NamedDAG` -- directed acyclic graphs with no
  self-loops or multi-edges whose vertices carry *names* (module names).
* :class:`~repro.graphs.two_terminal.TwoTerminalGraph` -- graphs with a
  single source and a single sink (the set ``G_Sigma`` of the paper).
* The four graph operations of Definitions 1-4: series composition,
  parallel composition, vertex insertion and vertex replacement
  (:mod:`repro.graphs.ops`).
* Reachability utilities (BFS search and bitset transitive closure,
  :mod:`repro.graphs.reachability`).
* A random two-terminal DAG generator used by the synthetic workloads
  (:mod:`repro.graphs.random_graphs`).
"""

from repro.graphs.digraph import IdAllocator, NamedDAG
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.graphs.ops import (
    insert_vertex,
    parallel_composition,
    replace_vertex,
    series_composition,
)
from repro.graphs.reachability import (
    TransitiveClosure,
    ancestors_of,
    descendants_of,
    reaches,
)
from repro.graphs.random_graphs import random_two_terminal_dag

__all__ = [
    "IdAllocator",
    "NamedDAG",
    "TwoTerminalGraph",
    "series_composition",
    "parallel_composition",
    "insert_vertex",
    "replace_vertex",
    "reaches",
    "ancestors_of",
    "descendants_of",
    "TransitiveClosure",
    "random_two_terminal_dag",
]
