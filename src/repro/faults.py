"""Deterministic failpoints for crash-ordering tests.

A *failpoint* is a named no-op planted at a crash-ordering-critical
point in the durability and replication code (``FAILPOINTS.hit(
"wal.pre_fsync")``).  Unarmed -- the production state -- a hit is one
attribute load and an ``is None`` check; there is nothing to configure
and no measurable overhead.  Armed (via :envvar:`REPRO_FAILPOINTS` or
``repro serve --failpoints``), the named point fires a deterministic
action on its N-th hit: ``crash`` hard-kills the process with
:func:`os._exit` (indistinguishable from SIGKILL to the recovery
path), ``raise`` raises :class:`FailpointError` so in-process tests
can observe partially-completed state.

Every hit site must use a name from :data:`FAILPOINT_NAMES`; the
``failpoint-names`` lint rule rejects unregistered or non-literal
names, so the frozen table below is the single catalog of crash
points the failpoint matrix in ``tests/test_faults.py`` sweeps.

Spec grammar (comma-separated)::

    wal.pre_fsync=crash          crash on the first hit
    ckpt.pre_flip=crash@3        crash on the third hit
    repl.pre_apply=raise         raise FailpointError on the first hit

"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

__all__ = [
    "FAILPOINT_NAMES",
    "FailpointError",
    "FailpointRegistry",
    "FAILPOINTS",
    "ENV_VAR",
]

ENV_VAR = "REPRO_FAILPOINTS"

#: The frozen catalog of every failpoint name in the tree.  Adding a
#: ``FAILPOINTS.hit`` site means adding its name here first; the
#: ``failpoint-names`` lint rule enforces the pairing.
FAILPOINT_NAMES = frozenset({
    # write-ahead log (repro.service.wal)
    "wal.pre_append",       # before the record line is written
    "wal.pre_fsync",        # after write+flush, before os.fsync
    "wal.post_append",      # after the append is durable
    "wal.pre_truncate",     # before the staged truncate_to_base rename
    # checkpoint roll (repro.service.wal DurableStore)
    "ckpt.pre_stage",       # before the staged generation is written
    "ckpt.pre_flip",        # generation durable, CURRENT not yet flipped
    "ckpt.post_flip",       # CURRENT flipped, WAL not yet truncated
    "ckpt.pre_gc",          # before old generations are collected
    # replication (repro.service.replication)
    "repl.pre_apply",       # replica: before applying a shipped record
    "repl.post_apply",      # replica: record applied, not yet acked
    "repl.pre_promote",     # replica: before promotion flips roles
    # cluster supervision (repro.service.cluster)
    "cluster.pre_respawn",  # supervisor: before restarting a dead worker
})

_ACTIONS = frozenset({"crash", "raise"})


class FailpointError(RuntimeError):
    """Raised by a failpoint armed with the ``raise`` action."""


class _Armed:
    __slots__ = ("action", "at_hit", "hits")

    def __init__(self, action: str, at_hit: int) -> None:
        self.action = action
        self.at_hit = at_hit
        self.hits = 0


class FailpointRegistry:
    """Registry of armed failpoints; module-global as :data:`FAILPOINTS`.

    The fast path is deliberately branch-minimal: ``hit`` returns
    immediately while nothing is armed (``self._armed is None``).
    Arming swaps in a dict; firing is guarded by a lock so concurrent
    hits of an ``@N`` point count exactly once each.
    """

    def __init__(self) -> None:
        self._armed: Optional[Dict[str, _Armed]] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def hit(self, name: str) -> None:
        """Fire ``name`` if armed; free no-op otherwise."""
        armed = self._armed
        if armed is None:
            return
        self._slow_hit(name, armed)

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self, name: str, action: str = "crash", at_hit: int = 1) -> None:
        """Arm ``name`` to fire ``action`` on its ``at_hit``-th hit."""
        if name not in FAILPOINT_NAMES:
            raise ValueError(
                f"unknown failpoint {name!r}; registered names: "
                f"{', '.join(sorted(FAILPOINT_NAMES))}"
            )
        if action not in _ACTIONS:
            raise ValueError(
                f"unknown failpoint action {action!r} (use crash or raise)"
            )
        if at_hit < 1:
            raise ValueError("at_hit is 1-based and must be >= 1")
        with self._lock:
            armed = dict(self._armed or {})
            armed[name] = _Armed(action, at_hit)
            self._armed = armed

    def arm_from_spec(self, spec: str) -> int:
        """Arm from a comma-separated spec string; returns the count.

        Each clause is ``name=action`` or ``name=action@N``.
        """
        count = 0
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ValueError(
                    f"bad failpoint clause {clause!r} (want name=action)"
                )
            name, _, action = clause.partition("=")
            at_hit = 1
            if "@" in action:
                action, _, nth = action.partition("@")
                at_hit = int(nth)
            self.arm(name.strip(), action.strip(), at_hit)
            count += 1
        return count

    def arm_from_env(self, environ=os.environ) -> int:
        """Arm from :envvar:`REPRO_FAILPOINTS` if set; returns the count."""
        spec = environ.get(ENV_VAR, "")
        if not spec:
            return 0
        return self.arm_from_spec(spec)

    def disarm(self, name: Optional[str] = None) -> None:
        """Disarm ``name``, or everything when ``name`` is ``None``."""
        with self._lock:
            if name is None or self._armed is None:
                self._armed = None
                return
            armed = dict(self._armed)
            armed.pop(name, None)
            self._armed = armed or None

    def armed(self) -> Dict[str, str]:
        """The currently armed points as ``{name: "action@N"}``."""
        armed = self._armed or {}
        return {
            name: f"{point.action}@{point.at_hit}"
            for name, point in armed.items()
        }

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _slow_hit(self, name: str, armed: Dict[str, _Armed]) -> None:
        point = armed.get(name)
        if point is None:
            return
        with self._lock:
            point.hits += 1
            if point.hits != point.at_hit:
                return
            # one-shot: the point disarms itself before firing so a
            # recovery path re-entering the same site cannot re-fire
            current = dict(self._armed or {})
            current.pop(name, None)
            self._armed = current or None
            action = point.action
        if action == "crash":
            # simulate SIGKILL: no atexit handlers, no flushes, no
            # finally blocks -- the recovery path must cope with
            # whatever bytes already reached the kernel
            os._exit(170)
        raise FailpointError(f"failpoint {name} fired")


#: Process-global registry; production code calls ``FAILPOINTS.hit(...)``.
FAILPOINTS = FailpointRegistry()
