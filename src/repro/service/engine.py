"""The query engine: batch reachability over lock-striped LRU shards.

Queries are answered from two decoded labels in O(1) (Algorithm 4), so
the per-query cost is dominated by dispatch overhead; the engine
amortizes it three ways:

* **batching** -- :meth:`QueryEngine.query_many` answers thousands of
  ``(source, target)`` pairs per call, resolving the session and its
  version once for the whole batch and computing each *distinct* miss
  exactly once (duplicate pairs in one batch share one label probe).
  Misses are handed to the scheme's ``query_many`` batch kernel in one
  call -- for packed DRL that is a tight integer loop with the bitset
  tables bound to locals -- with the per-pair ``reaches_labels`` loop
  kept as the fallback (``use_batch_kernels=False``, or a scheme
  without a kernel, whose base-class ``query_many`` *is* that loop);
* **caching** -- results are memoized in an LRU cache keyed by
  ``(session uid, version, source, target)``.  The uid is unique per
  session *instance* (a name reused after a close gets a fresh uid, so
  it can never hit its predecessor's entries); the version counter is
  bumped on every ingest, so an insert invalidates all of a session's
  cached answers *implicitly*: their keys simply stop being
  generated.  Stale entries age out of the LRU tail.  No per-entry
  invalidation work is ever done on the write path, keeping ingest as
  fast as the labeler allows.  (Labels are write-once and insertions
  never add edges between existing vertices, so today's answers could
  outlive the version; keying by version is the conservative choice
  that stays correct if a future scheme ever relabels or rewires.)
* **striping** -- the cache and its counters are split across
  ``shards`` independent lock-striped shards keyed by
  ``session uid % shards`` (uids are dense ints; the salted builtin
  ``hash()`` is banned from routing), so batches against different
  sessions never
  contend on a lock.  A session's entries all live in one shard
  (its uid picks it), which keeps per-session LRU behavior intact.

Failure atomicity: a batch naming an unlabeled vertex raises
:class:`LabelingError` before any answer is computed and before any
counter or cache write, so the stats snapshot never drifts on a
poisoned batch -- either the whole batch is accounted or none of it
is.  (Only cache misses need the check: a hit proves both vertices
were labeled, so the fully warm fast path pays nothing for it.)

Hit/miss/latency counters are kept per shard and aggregated into a
:class:`ServiceStats` snapshot for monitoring and benchmarks.

Observability (:mod:`repro.obs`): the engine records per-stage latency
histograms -- ``cache_probe`` (phase 1 under the shard lock) and
``miss_fill`` (the batch-kernel / fallback compute of phase 2) -- into
its metrics registry (the process default unless one is injected;
``metrics=repro.obs.NULL`` disables instrumentation entirely, which is
the benchmark's uninstrumented baseline).  A batch that *fails*
mid-flight (``LabelingError`` on an unlabeled vertex) keeps the
hits/misses/queries counters untouched, exactly as before, but its
elapsed time is no longer dropped on the floor: it is accounted under
the separate ``errors``/``error_seconds`` shard counters (aggregated
into ``ServiceStats.query_errors``/``query_error_seconds``) and the
``repro_engine_errored_seconds`` histogram.  When a request trace is
active on the thread (:func:`repro.obs.trace.current_trace`), the
engine attaches its stage timings as spans to that trace.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import ExitStack
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LabelingError
from repro.obs.metrics import default_registry
from repro.obs.names import (
    ENGINE_ERRORED_SECONDS,
    ENGINE_ERRORS_TOTAL,
    ENGINE_STAGE_SECONDS,
    STAGE_CACHE_PROBE,
    STAGE_MISS_FILL,
)
from repro.obs.trace import current_trace
from repro.service.sessions import Session, SessionManager

QueryKey = Tuple[int, int, int, int]  # (session uid, version, source, target)


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the engine's aggregated counters."""

    sessions: int
    shards: int
    ingested: int
    queries: int
    cache_hits: int
    cache_misses: int
    cache_entries: int
    cache_capacity: int
    cache_shard_capacities: Tuple[int, ...]
    query_seconds: float
    ingest_seconds: float
    query_errors: int = 0
    query_error_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> Dict[str, float]:
        doc = asdict(self)
        doc["cache_shard_capacities"] = list(self.cache_shard_capacities)
        doc["hit_rate"] = self.hit_rate
        return doc


class _Shard:
    """One lock stripe: an LRU slice of the cache plus its counters."""

    __slots__ = (
        "lock",
        "cache",
        "capacity",
        "queries",
        "hits",
        "misses",
        "query_seconds",
        "ingested",
        "ingest_seconds",
        "errors",
        "error_seconds",
    )

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.cache: "OrderedDict[QueryKey, bool]" = OrderedDict()
        self.capacity = capacity
        self.queries = 0
        self.hits = 0
        self.misses = 0
        self.query_seconds = 0.0
        self.ingested = 0
        self.ingest_seconds = 0.0
        self.errors = 0
        self.error_seconds = 0.0


class QueryEngine:
    """Answers reachability queries over a :class:`SessionManager`.

    ``cache_size`` is the *total* capacity, divided evenly across
    ``shards`` lock stripes (never below one entry per shard while the
    budget is nonzero, so no shard is silently uncached; ``stats``
    reports the per-shard capacities).  All of one session's entries
    live in the shard its uid hashes to, so a single hot session is
    bounded by its shard's slice; spread sessions use the whole budget.
    ``shards=1`` reproduces the classic single-lock engine exactly.
    """

    def __init__(
        self,
        manager: SessionManager,
        cache_size: int = 65536,
        shards: int = 1,
        use_batch_kernels: bool = True,
        metrics=None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.manager = manager
        self.cache_size = cache_size
        # observability: stage histograms live in the injected registry
        # (default: the process-wide one); repro.obs.NULL disables the
        # extra clock reads entirely for an uninstrumented baseline
        self.metrics = metrics if metrics is not None else default_registry()
        self._observe = bool(getattr(self.metrics, "enabled", True))
        self._stage_probe = self.metrics.histogram(
            ENGINE_STAGE_SECONDS, stage=STAGE_CACHE_PROBE
        )
        self._stage_fill = self.metrics.histogram(
            ENGINE_STAGE_SECONDS, stage=STAGE_MISS_FILL
        )
        self._errored_hist = self.metrics.histogram(
            ENGINE_ERRORED_SECONDS
        )
        self._errored_total = self.metrics.counter(
            ENGINE_ERRORS_TOTAL
        )
        # route cache misses through the scheme's query_many batch
        # kernel; False forces the per-pair reaches_labels loop (the
        # service benchmark measures both to report the kernel's win)
        self.use_batch_kernels = use_batch_kernels
        # a nonzero budget smaller than the stripe count would starve
        # some shards at zero capacity -- sessions hashing there would
        # never cache and warm numbers would lie -- so every shard gets
        # at least one entry (the effective total may exceed the
        # requested budget; stats expose the per-shard truth)
        base, extra = divmod(cache_size, shards)
        self._shards = [
            _Shard(max(base + (1 if index < extra else 0), 1)
                   if cache_size else 0)
            for index in range(shards)
        ]

    @property
    def shards(self) -> int:
        return len(self._shards)

    def _shard_for(self, uid: int) -> _Shard:
        # uids are small positive ints, so plain modulo spreads them
        # evenly; the salted builtin hash() is banned (nondet-hash)
        return self._shards[uid % len(self._shards)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, session_name: str, source: int, target: int) -> bool:
        """Cached reachability ``source ~> target`` in one session."""
        return self.query_many(session_name, [(source, target)])[0]

    def query_many(
        self, session_name: str, pairs: Iterable[Sequence[int]]
    ) -> List[bool]:
        """Answer a batch of ``(source, target)`` pairs.

        The session version is read once, so the whole batch is answered
        against one consistent snapshot; concurrent inserts make future
        batches miss the cache but never corrupt this one (labels are
        write-once).  Raises :class:`LabelingError` when a pair names a
        vertex that has not been inserted yet -- before any computation
        or counter/cache update, so a poisoned batch leaves the stats
        untouched.  Duplicate pairs in one batch cost a single probe.
        """
        session = self.manager.get(session_name)
        batch = pairs if isinstance(pairs, list) else list(pairs)
        trace = current_trace()
        observe = self._observe or trace is not None
        started = time.perf_counter()
        with session.lock:
            version = session.version
        scheme = session.scheme
        labels = scheme.labels
        uid = session.uid
        shard = self._shard_for(uid)
        # phase 1: probe this session's shard for the whole batch in
        # one lock hold; group missing positions by pair so duplicates
        # within the batch are computed once.
        answers: List[Optional[bool]] = []
        pending: Dict[Tuple[int, int], List[int]] = {}
        with shard.lock:
            cache = shard.cache
            for position, pair in enumerate(batch):
                source, target = pair[0], pair[1]
                key = (uid, version, source, target)
                cached = cache.get(key)
                if cached is not None:
                    cache.move_to_end(key)
                else:
                    pending.setdefault((source, target), []).append(position)
                answers.append(cached)
        if observe:
            probed = time.perf_counter()
            self._stage_probe.record(probed - started)
            if trace is not None:
                trace.add_span(STAGE_CACHE_PROBE, started, probed)
        # validate the misses before computing anything.  A hit proves
        # both vertices were labeled (keys are only ever written for
        # computed answers), so only missing pairs can name an unknown
        # vertex -- and failing here means no counter or cache entry
        # has been touched: the poisoned batch is accounted as nothing
        # (the time it burned is still accounted, under the errored
        # counters, so error storms stay visible in the latency story).
        # phase 2: compute each distinct miss once, without the lock --
        # labels are write-once, so concurrent batches computing the
        # same answer agree, and other shards' queries proceed in
        # parallel.  The scheme is whatever dynamic backend the session
        # was opened with.  All distinct misses go through the scheme's
        # query_many batch kernel in one call; schemes without a
        # specialized kernel inherit the per-pair loop from the scheme
        # base class, and ``use_batch_kernels=False`` forces that loop
        # explicitly (the benchmark's no-kernel baseline).
        computed: List[Tuple[int, int, bool]] = []
        try:
            for source, target in pending:
                for vid in (source, target):
                    if vid not in labels:
                        raise LabelingError(
                            f"session {session.name!r} has no vertex {vid}"
                        )
            if pending:
                fill_started = time.perf_counter() if observe else 0.0
                distinct = list(pending)
                if self.use_batch_kernels:
                    batch_answers = scheme.query_many(distinct)
                else:
                    reaches_labels = scheme.reaches_labels
                    batch_answers = [
                        reaches_labels(labels[source], labels[target])
                        for source, target in distinct
                    ]
                for (source, target), answer in zip(distinct, batch_answers):
                    for position in pending[(source, target)]:
                        answers[position] = answer
                    computed.append((source, target, answer))
                if observe:
                    filled = time.perf_counter()
                    self._stage_fill.record(filled - fill_started)
                    if trace is not None:
                        trace.add_span(STAGE_MISS_FILL, fill_started, filled)
        except LabelingError:
            elapsed = time.perf_counter() - started
            with shard.lock:
                shard.errors += 1
                shard.error_seconds += elapsed
            self._errored_total.inc()
            self._errored_hist.record(elapsed)
            raise
        # phase 3: store results and counters in a second lock hold.
        # A batch of N copies of one missing pair counts one miss (one
        # label probe) and N-1 hits, so hits + misses == queries holds.
        with shard.lock:
            if shard.capacity:
                cache = shard.cache
                for source, target, answer in computed:
                    cache[(uid, version, source, target)] = answer
                while len(cache) > shard.capacity:
                    cache.popitem(last=False)
            shard.queries += len(answers)
            shard.misses += len(pending)
            shard.hits += len(answers) - len(pending)
            shard.query_seconds += time.perf_counter() - started
        return answers

    # ------------------------------------------------------------------
    # ingest accounting (the write path itself lives on the session)
    # ------------------------------------------------------------------
    def ingest(self, session_name: str, insertions) -> Tuple[int, int]:
        """Ingest a batch into a session; returns ``(count, version)``.

        A batch rejected mid-flight keeps the ingest counters untouched
        (the session layer records exactly which prefix was applied);
        like the query path, the elapsed time is accounted under the
        errored histogram instead of being dropped.
        """
        session = self.manager.get(session_name)
        started = time.perf_counter()
        try:
            count = session.ingest_many(insertions)
        except Exception:
            self._errored_total.inc()
            self._errored_hist.record(time.perf_counter() - started)
            raise
        elapsed = time.perf_counter() - started
        shard = self._shard_for(session.uid)
        with shard.lock:
            shard.ingested += count
            shard.ingest_seconds += elapsed
        return count, session.version

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.cache.clear()

    def drop_session_entries(self, session: Session) -> int:
        """Evict a closed session's entries eagerly; returns the count.

        Optional hygiene: a closed session's uid is never queried
        again, so its entries could only age out of the LRU tail --
        evicting frees the capacity immediately.  Entries repopulated
        by an in-flight batch racing the close are equally unreachable
        and equally harmless.  Only the session's own shard is touched.
        """
        shard = self._shard_for(session.uid)
        with shard.lock:
            stale = [k for k in shard.cache if k[0] == session.uid]
            for key in stale:
                del shard.cache[key]
            return len(stale)

    def stats(self) -> ServiceStats:
        """A *consistent* snapshot of the aggregated counters.

        All shard locks are held simultaneously (acquired in shard
        order, the same total order everywhere, so no deadlock is
        possible) while the counters are read.  Each shard updates its
        counters atomically under its own lock, so per-shard snapshots
        were always internally consistent; holding the whole set
        additionally freezes the cross-shard view, so invariants that
        span shards -- ``hits + misses == queries`` above all -- hold
        in every snapshot no matter how many writers are mid-batch.
        """
        ingested = queries = hits = misses = entries = 0
        errors = 0
        query_seconds = ingest_seconds = error_seconds = 0.0
        with ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard.lock)  # repro: noqa[deadlock-cycle] -- every stripe is taken in frozen index order (self._shards is never reordered), so two stats() calls cannot take siblings in opposite orders
            for shard in self._shards:
                ingested += shard.ingested
                queries += shard.queries
                hits += shard.hits
                misses += shard.misses
                entries += len(shard.cache)
                query_seconds += shard.query_seconds
                ingest_seconds += shard.ingest_seconds
                errors += shard.errors
                error_seconds += shard.error_seconds
        return ServiceStats(
            sessions=len(self.manager),
            shards=len(self._shards),
            ingested=ingested,
            queries=queries,
            cache_hits=hits,
            cache_misses=misses,
            cache_entries=entries,
            cache_capacity=self.cache_size,
            cache_shard_capacities=tuple(
                shard.capacity for shard in self._shards
            ),
            query_seconds=query_seconds,
            ingest_seconds=ingest_seconds,
            query_errors=errors,
            query_error_seconds=error_seconds,
        )
