"""The query engine: batch reachability with a version-aware LRU cache.

Queries are answered from two decoded labels in O(1) (Algorithm 4), so
the per-query cost is dominated by dispatch overhead; the engine
amortizes it two ways:

* **batching** -- :meth:`QueryEngine.query_many` answers thousands of
  ``(source, target)`` pairs per call, resolving the session and its
  version once for the whole batch;
* **caching** -- results are memoized in an LRU cache keyed by
  ``(session uid, version, source, target)``.  The uid is unique per
  session *instance* (a name reused after a close gets a fresh uid, so
  it can never hit its predecessor's entries); the version counter is
  bumped on every ingest, so an insert invalidates all of a session's
  cached answers *implicitly*: their keys simply stop being
  generated.  Stale entries age out of the LRU tail.  No per-entry
  invalidation work is ever done on the write path, keeping ingest as
  fast as the labeler allows.  (Labels are write-once and insertions
  never add edges between existing vertices, so today's answers could
  outlive the version; keying by version is the conservative choice
  that stays correct if a future scheme ever relabels or rewires.)

Hit/miss/latency counters are exposed as a :class:`ServiceStats`
snapshot for monitoring and benchmarks.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LabelingError
from repro.service.sessions import Session, SessionManager

QueryKey = Tuple[int, int, int, int]  # (session uid, version, source, target)


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the engine's counters."""

    sessions: int
    ingested: int
    queries: int
    cache_hits: int
    cache_misses: int
    cache_entries: int
    cache_capacity: int
    query_seconds: float
    ingest_seconds: float

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> Dict[str, float]:
        doc = asdict(self)
        doc["hit_rate"] = self.hit_rate
        return doc


class QueryEngine:
    """Answers reachability queries over a :class:`SessionManager`."""

    def __init__(
        self, manager: SessionManager, cache_size: int = 65536
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.manager = manager
        self.cache_size = cache_size
        self._cache: "OrderedDict[QueryKey, bool]" = OrderedDict()
        self._lock = threading.Lock()  # guards cache + counters
        self._ingested = 0
        self._queries = 0
        self._hits = 0
        self._misses = 0
        self._query_seconds = 0.0
        self._ingest_seconds = 0.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, session_name: str, source: int, target: int) -> bool:
        """Cached reachability ``source ~> target`` in one session."""
        return self.query_many(session_name, [(source, target)])[0]

    def query_many(
        self, session_name: str, pairs: Iterable[Sequence[int]]
    ) -> List[bool]:
        """Answer a batch of ``(source, target)`` pairs.

        The session version is read once, so the whole batch is answered
        against one consistent snapshot; concurrent inserts make future
        batches miss the cache but never corrupt this one (labels are
        write-once).  Raises :class:`LabelingError` when a pair names a
        vertex that has not been inserted yet.
        """
        session = self.manager.get(session_name)
        started = time.perf_counter()
        with session.lock:
            version = session.version
        scheme = session.scheme
        labels = scheme.labels
        # phase 1: probe the cache for the whole batch in one lock hold
        answers: List[Optional[bool]] = []
        missing: List[Tuple[int, int, int]] = []  # (position, source, target)
        with self._lock:
            for position, pair in enumerate(pairs):
                source, target = pair[0], pair[1]
                key = (session.uid, version, source, target)
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                answers.append(cached)
                if cached is None:
                    missing.append((position, source, target))
        # phase 2: compute misses without the lock -- labels are
        # write-once, so concurrent batches computing the same answer
        # agree, and other sessions' queries proceed in parallel.  The
        # scheme is whatever dynamic backend the session was opened
        # with; reaches_labels is the one protocol query method.
        for position, source, target in missing:
            answers[position] = scheme.reaches_labels(
                self._label(labels, session, source),
                self._label(labels, session, target),
            )
        # phase 3: store results and counters in a second lock hold
        with self._lock:
            if self.cache_size:
                for position, source, target in missing:
                    self._cache[(session.uid, version, source, target)] = (
                        answers[position]
                    )
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
            self._queries += len(answers)
            self._hits += len(answers) - len(missing)
            self._misses += len(missing)
            self._query_seconds += time.perf_counter() - started
        return answers

    @staticmethod
    def _label(labels, session: Session, vid: int):
        try:
            return labels[vid]
        except KeyError:
            raise LabelingError(
                f"session {session.name!r} has no vertex {vid}"
            ) from None

    # ------------------------------------------------------------------
    # ingest accounting (the write path itself lives on the session)
    # ------------------------------------------------------------------
    def ingest(self, session_name: str, insertions) -> Tuple[int, int]:
        """Ingest a batch into a session; returns ``(count, version)``."""
        session = self.manager.get(session_name)
        started = time.perf_counter()
        count = session.ingest_many(insertions)
        elapsed = time.perf_counter() - started
        with self._lock:
            self._ingested += count
            self._ingest_seconds += elapsed
        return count, session.version

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def drop_session_entries(self, session: Session) -> int:
        """Evict a closed session's entries eagerly; returns the count.

        Optional hygiene: a closed session's uid is never queried
        again, so its entries could only age out of the LRU tail --
        evicting frees the capacity immediately.  Entries repopulated
        by an in-flight batch racing the close are equally unreachable
        and equally harmless.
        """
        with self._lock:
            stale = [k for k in self._cache if k[0] == session.uid]
            for key in stale:
                del self._cache[key]
            return len(stale)

    def stats(self) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                sessions=len(self.manager),
                ingested=self._ingested,
                queries=self._queries,
                cache_hits=self._hits,
                cache_misses=self._misses,
                cache_entries=len(self._cache),
                cache_capacity=self.cache_size,
                query_seconds=self._query_seconds,
                ingest_seconds=self._ingest_seconds,
            )
