"""Durable sessions: per-session write-ahead logs and crash recovery.

The paper's labels are write-once and assigned on-the-fly, so session
state is naturally append-only -- which makes it cheap to persist
*every* acknowledged insertion, not just the ones an explicit
``checkpoint`` op happened to cover.  This module is the durability
layer the service mounts under a ``--data-dir``:

* :class:`WriteAheadLog` -- one append-only JSON-lines file per
  session.  The first line is a header naming the session and the
  checkpoint state the log applies on top of; every following line is
  one ingest batch (``seq``, the insertion-log position ``start`` of
  its first event, the session ``version`` after the batch, and the
  events in the execution-log JSON schema).  The fsync policy decides
  what "acknowledged" means: ``always`` fsyncs every append (survives
  power loss), ``batch`` fsyncs every ``batch_records`` appends, and
  ``never`` leaves flushing to the OS (every policy flushes to the OS
  per append, so plain process death -- SIGKILL -- never loses an
  acknowledged insertion under any policy).
* :class:`DurableStore` -- the per-session directory layout under the
  data dir: checkpoint *generations* (``ckpt-<version>/`` written by
  :func:`repro.service.checkpoint.checkpoint_session`) with a
  ``CURRENT`` pointer file that is atomically flipped only once the new
  generation is durably complete, plus the live WAL.  Rolling a
  checkpoint writes the new generation, flips ``CURRENT``, then
  truncates the WAL to the records beyond the checkpoint -- in that
  order, so a crash at any point leaves ``CURRENT`` naming a complete
  checkpoint whose WAL still covers everything after it.
* :class:`Checkpointer` -- a background thread that periodically rolls
  every session with outstanding WAL records, bounding replay work at
  the next boot.
* :meth:`DurableStore.recover` -- boot-time recovery: for every
  non-closed session directory, restore the ``CURRENT`` checkpoint
  (which re-verifies the stored labels against a deterministic replay),
  then replay the WAL tail through the session's registered scheme.  A
  torn WAL tail (the crash interrupted an append) is dropped and
  reported with its resume point; the file is truncated to the valid
  prefix before new appends continue.

Lock order: a WAL lock is only ever taken *after* (or without) the
session lock, never the other way around -- ingest holds the session
lock and appends; a roll snapshots under the session lock first and
only then rewrites the WAL under the WAL lock.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional
from urllib.parse import quote, unquote

from repro.errors import ServiceError
from repro.faults import FAILPOINTS
from repro.io.jsonio import insertion_from_json, insertion_to_json
from repro.io.xmlio import FormatError
from repro.obs.logs import log_event
from repro.obs.metrics import default_registry
from repro.obs.names import (
    CHECKPOINT_ROLL_SECONDS,
    SPAN_CHECKPOINT_ROLL,
    SPAN_WAL_APPEND,
    SPAN_WAL_FSYNC,
    WAL_APPEND_SECONDS,
    WAL_FSYNC_SECONDS,
)
from repro.obs.trace import current_trace
from repro.service.checkpoint import (
    checkpoint_session,
    fsync_dir,
    fsync_file,
    load_manifest,
    restore_session,
)
from repro.service.sessions import Session, SessionManager

FSYNC_POLICIES = ("always", "batch", "never")
DEFAULT_BATCH_RECORDS = 64
DEFAULT_CHECKPOINT_INTERVAL = 30.0

_logger = logging.getLogger("repro.service.wal")

# durability timings, into the process-default registry: append is the
# serialize+write+flush of one record, fsync is the physical sync (only
# recorded when one actually runs, so 'batch'/'never' policies show
# their true amortization), roll is a whole checkpoint generation
_h_append = default_registry().histogram(WAL_APPEND_SECONDS)
_h_fsync = default_registry().histogram(WAL_FSYNC_SECONDS)
_h_roll = default_registry().histogram(CHECKPOINT_ROLL_SECONDS)

_WAL_FORMAT = "repro-wal"
_WAL_VERSION = 1
_WAL_FILE = "wal.jsonl"
_CURRENT = "CURRENT"
_CLOSED = "CLOSED"
_CKPT_PREFIX = "ckpt-"
_CKPT_STAGING = "ckpt.staging"
_DIR_PREFIX = "s-"
_EPOCH = "EPOCH"


class TornWalError(ServiceError):
    """The WAL file is missing or torn before its header completed.

    Distinct from ordinary corruption: the header is written and
    fsynced before ``create_session`` is acknowledged, so a missing/
    empty/torn-header WAL next to a *complete* checkpoint can only be
    the artifact of a crash inside that unacknowledged create -- the
    checkpoint alone is the whole acknowledged state, and recovery may
    safely re-arm a fresh log on top of it.  A WAL whose header parses
    but carries the wrong format tag is not this: that is real
    corruption and stays a hard :class:`ServiceError`.
    """


def check_fsync_policy(policy: str) -> str:
    """Validate an fsync policy name; returns it unchanged."""
    if policy not in FSYNC_POLICIES:
        raise ServiceError(
            f"unknown fsync policy {policy!r}; expected one of "
            f"{FSYNC_POLICIES}"
        )
    return policy


# ---------------------------------------------------------------------------
# the write-ahead log file
# ---------------------------------------------------------------------------


@dataclass
class WalRecord:
    """One decoded WAL record: an acknowledged ingest batch."""

    seq: int
    start: int      # insertion-log index of the first event
    version: int    # session version after the batch
    events: List[Dict[str, Any]]  # execution-log JSON schema


@dataclass
class WalReplay:
    """The readable state of a WAL file, torn tail already dropped."""

    header: Dict[str, Any]
    records: List[WalRecord] = field(default_factory=list)
    valid_bytes: int = 0
    dropped: Optional[str] = None  # why the tail was dropped, if it was
    dropped_bytes: int = 0         # bytes past the valid prefix

    @property
    def next_seq(self) -> int:
        return self.records[-1].seq + 1 if self.records else 0

    @property
    def last_good_seq(self) -> Optional[int]:
        """Seq of the last intact record (``None`` for an empty log)."""
        return self.records[-1].seq if self.records else None

    @property
    def events(self) -> int:
        return sum(len(record.events) for record in self.records)


def replay_wal(path) -> WalReplay:
    """Read a WAL file, validating structure line by line.

    The header line must be intact (an unreadable header makes the
    whole log unusable: :class:`ServiceError`).  Record lines are
    consumed while they stay well-formed -- newline-terminated JSON
    objects with a contiguous ``seq`` and an ``events`` list; the first
    violation (a torn final append, a truncated block) drops that line
    *and everything after it*, recording the reason in ``dropped`` and
    the byte length of the valid prefix in ``valid_bytes`` so the
    caller can truncate and resume appending.
    """
    try:
        with open(path, "rb") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        raise TornWalError(
            f"write-ahead log {path} does not exist"
        ) from None
    if not lines:
        raise TornWalError(f"write-ahead log {path} is empty (no header)")
    if not lines[0].endswith(b"\n"):
        raise TornWalError(
            f"write-ahead log {path} has a torn header (no trailing newline)"
        )
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise TornWalError(
            f"write-ahead log {path} has an unreadable header: {exc}"
        ) from None
    if not isinstance(header, dict) or header.get("format") != _WAL_FORMAT:
        raise ServiceError(
            f"{path} is not a write-ahead log "
            f"(format {header.get('format')!r})"
        )
    replay = WalReplay(header=header, valid_bytes=len(lines[0]))
    for index, line in enumerate(lines[1:], start=1):
        if not line.endswith(b"\n"):
            replay.dropped = (
                f"record line {index} is torn (no trailing newline)"
            )
            break
        if not line.strip():
            replay.valid_bytes += len(line)
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            replay.dropped = f"record line {index} is not valid JSON"
            break
        if (
            not isinstance(doc, dict)
            or not isinstance(doc.get("seq"), int)
            or not isinstance(doc.get("start"), int)
            or not isinstance(doc.get("version"), int)
            or not isinstance(doc.get("events"), list)
        ):
            replay.dropped = f"record line {index} is malformed"
            break
        if doc["seq"] != replay.next_seq:
            replay.dropped = (
                f"record line {index} has seq {doc['seq']}, "
                f"expected {replay.next_seq}"
            )
            break
        replay.records.append(
            WalRecord(
                seq=doc["seq"],
                start=doc["start"],
                version=doc["version"],
                events=doc["events"],
            )
        )
        replay.valid_bytes += len(line)
    if replay.dropped is not None:
        replay.dropped_bytes = (
            sum(len(line) for line in lines) - replay.valid_bytes
        )
    return replay


class WriteAheadLog:
    """One session's append-only log of acknowledged ingest batches.

    Appends are serialized by an internal lock (callers already hold
    the session lock, which serializes a session's ingests; the WAL
    lock additionally serializes appends against checkpoint rolls).
    """

    def __init__(
        self,
        path,
        header: Dict[str, Any],
        policy: str = "always",
        batch_records: int = DEFAULT_BATCH_RECORDS,
        _resume: Optional[WalReplay] = None,
    ) -> None:
        self.path = Path(path)
        self.policy = check_fsync_policy(policy)
        self.batch_records = max(1, batch_records)
        self.lock = threading.Lock()
        self.header = dict(header)
        self.closed = False
        self.failed = False
        self._unsynced = 0
        if _resume is None:
            self._handle = open(self.path, "w")
            self._handle.write(json.dumps(self.header) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            fsync_dir(self.path.parent)
            self._next_seq = 0
            self._records = 0
            self._events = 0
        else:
            # truncate any torn tail before appending after it
            with open(self.path, "r+b") as trunc:
                trunc.truncate(_resume.valid_bytes)
                trunc.flush()
                os.fsync(trunc.fileno())
            self._handle = open(self.path, "a")
            self._next_seq = _resume.next_seq
            self._records = len(_resume.records)
            self._events = _resume.events

    @classmethod
    def create(
        cls,
        path,
        session: Session,
        base_version: int,
        base_vertices: int,
        policy: str = "always",
        batch_records: int = DEFAULT_BATCH_RECORDS,
        epoch: int = 0,
    ) -> "WriteAheadLog":
        """Start a fresh WAL on top of a just-written checkpoint.

        ``epoch`` is the replication fencing epoch stamped into the
        header: a log written under a superseded epoch is recognizably
        stale, so a zombie primary's directory cannot silently win a
        recovery race against the promoted replica's.
        """
        header = {
            "format": _WAL_FORMAT,
            "version": _WAL_VERSION,
            "session": session.name,
            "spec": session.spec.name,
            "scheme": session.scheme_name,
            "base_version": base_version,
            "base_vertices": base_vertices,
            "epoch": epoch,
        }
        return cls(path, header, policy=policy, batch_records=batch_records)

    @classmethod
    def resume(
        cls,
        path,
        replay: WalReplay,
        policy: str = "always",
        batch_records: int = DEFAULT_BATCH_RECORDS,
    ) -> "WriteAheadLog":
        """Reopen a replayed WAL for appending (torn tail truncated)."""
        return cls(
            path,
            replay.header,
            policy=policy,
            batch_records=batch_records,
            _resume=replay,
        )

    # ------------------------------------------------------------------
    @property
    def base_version(self) -> int:
        return int(self.header.get("base_version", 0))

    @property
    def base_vertices(self) -> int:
        return int(self.header.get("base_vertices", 0))

    @property
    def epoch(self) -> int:
        """The replication epoch stamped into the header (0 = none)."""
        return int(self.header.get("epoch", 0))

    def stamp_epoch(self, epoch: int) -> None:
        """Adopt a new fencing epoch; persisted at the next roll."""
        with self.lock:
            self.header["epoch"] = epoch

    @property
    def records(self) -> int:
        """Records currently in the file (since the last roll)."""
        return self._records

    @property
    def pending_events(self) -> int:
        """Events in the file not yet covered by a checkpoint."""
        return self._events

    @property
    def unsynced(self) -> int:
        """Appends flushed to the OS but not yet fsynced."""
        return self._unsynced

    def append(
        self, start: int, version: int, events: List[Dict[str, Any]]
    ) -> int:
        """Log one acknowledged ingest batch; returns its ``seq``.

        A failed append (disk full, I/O error) **poisons** the log:
        every later append raises immediately instead of writing after
        a possibly-torn line.  Without the poison, a recovery would
        stop at the mid-file tear and silently drop every acknowledged
        record behind it -- and a clean write skipping the failed one
        would leave a ``start`` gap that recovery must refuse.  Either
        way the session must stop acknowledging; a restart (which
        re-runs recovery) clears the state.
        """
        with self.lock:
            self._check_open()
            record = {
                "seq": self._next_seq,
                "start": start,
                "version": version,
                "events": events,
            }
            trace = current_trace()
            if trace is not None:
                # the record carries the request's trace id, so a WAL
                # line is joinable to the trace/logs that produced it
                # (replay ignores unknown keys)
                record["trace_id"] = trace.trace_id
            try:
                FAILPOINTS.hit("wal.pre_append")
                append_started = time.perf_counter()
                self._handle.write(json.dumps(record) + "\n")
                # always flush to the OS: process death never loses an
                # acknowledged batch, only the fsync policy decides
                # power-loss durability
                self._handle.flush()
                append_ended = time.perf_counter()
                _h_append.record(append_ended - append_started)
                if trace is not None:
                    trace.add_span(
                        SPAN_WAL_APPEND, append_started, append_ended
                    )
                synced = False
                if self.policy == "always":
                    synced = True
                elif self.policy == "batch":
                    self._unsynced += 1
                    if self._unsynced >= self.batch_records:
                        synced = True
                        self._unsynced = 0
                else:
                    self._unsynced += 1
                if synced:
                    FAILPOINTS.hit("wal.pre_fsync")
                    fsync_started = time.perf_counter()
                    os.fsync(self._handle.fileno())  # repro: noqa[blocking-under-lock] -- the fsync-before-ack IS the durability contract: the session lock must stay held until the WAL entry is on disk, or an ack could precede persistence
                    fsync_ended = time.perf_counter()
                    _h_fsync.record(fsync_ended - fsync_started)
                    if trace is not None:
                        trace.add_span(
                            SPAN_WAL_FSYNC, fsync_started, fsync_ended
                        )
            except Exception as exc:
                self.failed = True
                raise ServiceError(
                    f"write-ahead log {self.path} append failed "
                    f"({exc}); the log is poisoned until recovery"
                ) from exc
            FAILPOINTS.hit("wal.post_append")
            self._next_seq += 1
            self._records += 1
            self._events += len(events)
            return self._next_seq - 1

    def sync(self) -> None:
        """Force-fsync everything appended so far (any policy)."""
        with self.lock:
            self._check_open()
            self._handle.flush()
            fsync_started = time.perf_counter()
            os.fsync(self._handle.fileno())
            fsync_ended = time.perf_counter()
            _h_fsync.record(fsync_ended - fsync_started)
            trace = current_trace()
            if trace is not None:
                trace.add_span(SPAN_WAL_FSYNC, fsync_started, fsync_ended)
            self._unsynced = 0

    def truncate_to_base(self, version: int, vertices: int) -> int:
        """Drop records a fresh checkpoint at ``version`` now covers.

        Rewrites the file -- new header (``base_version``/
        ``base_vertices`` = the checkpoint), then the surviving records
        (those with events at insertion-log positions >= ``vertices``)
        re-sequenced from zero -- durably, via staged-rename.  Returns
        the number of surviving records.  Appends are blocked while the
        rewrite runs (WAL lock), so nothing acknowledged is ever
        skipped.
        """
        with self.lock:
            self._check_open()
            self._handle.flush()
            replay = replay_wal(self.path)
            kept: List[WalRecord] = []
            for record in replay.records:
                end = record.start + len(record.events)
                if end <= vertices:
                    continue
                if record.start < vertices:  # straddling batch: trim
                    record = WalRecord(
                        seq=record.seq,
                        start=vertices,
                        version=record.version,
                        events=record.events[vertices - record.start:],
                    )
                kept.append(record)
            self.header["base_version"] = version
            self.header["base_vertices"] = vertices
            staged = self.path.with_suffix(".tmp")
            with open(staged, "w") as handle:
                handle.write(json.dumps(self.header) + "\n")
                for seq, record in enumerate(kept):
                    handle.write(
                        json.dumps(
                            {
                                "seq": seq,
                                "start": record.start,
                                "version": record.version,
                                "events": record.events,
                            }
                        )
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            FAILPOINTS.hit("wal.pre_truncate")
            os.replace(staged, self.path)
            fsync_dir(self.path.parent)
            self._handle = open(self.path, "a")
            self._next_seq = len(kept)
            self._records = len(kept)
            self._events = sum(len(r.events) for r in kept)
            self._unsynced = 0
            return len(kept)

    def close(self) -> None:
        """Flush, fsync and close the file (idempotent)."""
        with self.lock:
            if self.closed:
                return
            self.closed = True
            try:
                if not self.failed:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
            finally:
                self._handle.close()

    def _check_open(self) -> None:
        if self.failed:
            raise ServiceError(
                f"write-ahead log {self.path} is poisoned by an earlier "
                "append failure; restart to recover"
            )
        if self.closed:
            raise ServiceError(
                f"write-ahead log {self.path} is closed"
            )


# ---------------------------------------------------------------------------
# the durable store: session directories under one data dir
# ---------------------------------------------------------------------------


@dataclass
class _Entry:
    """One durably tracked live session."""

    session: Session
    directory: Path
    wal: WriteAheadLog
    roll_lock: threading.Lock = field(default_factory=threading.Lock)


class DurableStore:
    """Maps live sessions onto durable per-session directories.

    Layout, under ``data_dir``::

        s-<quoted session name>/
            ckpt-<version>/   checkpoint generations (usually one)
            CURRENT           name of the live, complete generation
            wal.jsonl         acknowledged ingests since that generation
            CLOSED            marker: closed cleanly, skip at recovery

    ``fsync`` is the WAL policy (``always`` | ``batch`` | ``never``);
    checkpoints themselves are always written durably.

    ``keep_generations`` retains that many checkpoint generations per
    session (newest first) instead of only the live one; the extras
    feed ``query --as-of`` time travel.  ``EPOCH`` at the data-dir root
    persists the replication fencing epoch; once :meth:`fence` is
    called (a peer proved a higher epoch exists) every ingest is
    rejected, so a zombie primary can no longer acknowledge writes.
    """

    def __init__(
        self,
        data_dir,
        fsync: str = "always",
        batch_records: int = DEFAULT_BATCH_RECORDS,
        keep_generations: int = 1,
    ) -> None:
        self.root = Path(data_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = check_fsync_policy(fsync)
        self.batch_records = batch_records
        self.keep_generations = max(1, int(keep_generations))
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        self.recovery: List[Dict[str, Any]] = []  # boot-time reports
        self.errors: List[str] = []  # background roll failures
        self.epoch = self._read_epoch()
        self.fenced = False
        # replication publish hook: the primary's hub, when serving as
        # one.  Called after (and only after) the WAL append succeeded,
        # still under the session lock -- shipped records are always a
        # prefix of the durable log.
        self.on_append = None  # Optional[Callable]
        # exclude concurrent processes: two servers appending to the
        # same WALs would interleave seqs and shred both logs.  flock
        # (not an O_EXCL marker file) so the kernel releases it when a
        # SIGKILLed holder dies -- crash recovery must never need a
        # manual unlock.
        self._lock_handle = open(self.root / "LOCK", "w")
        try:
            import fcntl

            fcntl.flock(
                self._lock_handle, fcntl.LOCK_EX | fcntl.LOCK_NB
            )
        except ImportError:  # pragma: no cover - non-POSIX fallback
            pass
        except OSError:
            self._lock_handle.close()
            raise ServiceError(
                f"data dir {self.root} is locked by another live "
                "process; two servers must not share one data dir"
            ) from None
        self._lock_handle.write(f"{os.getpid()}\n")  # repro: noqa[durability-fsync] -- the LOCK file's pid is advisory debug info; flock(2) is the actual mutual-exclusion mechanism and holds without fsync
        self._lock_handle.flush()

    # ------------------------------------------------------------------
    # fencing epochs
    # ------------------------------------------------------------------
    def _read_epoch(self) -> int:
        try:
            return int((self.root / _EPOCH).read_text().strip())
        except (FileNotFoundError, ValueError):
            return 0

    def set_epoch(self, epoch: int) -> None:
        """Durably adopt a (higher) fencing epoch.

        Stamped into every live WAL header so logs written under the
        new epoch are distinguishable from a superseded primary's.
        """
        if epoch < self.epoch:
            raise ServiceError(
                f"epoch may only advance ({epoch} < {self.epoch})"
            )
        staged = self.root / (_EPOCH + ".tmp")
        staged.write_text(f"{epoch}\n")
        fsync_file(staged)
        os.replace(staged, self.root / _EPOCH)
        fsync_dir(self.root)
        self.epoch = epoch
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            entry.wal.stamp_epoch(epoch)

    def fence(self) -> None:
        """Reject all further ingests: a higher epoch exists elsewhere."""
        self.fenced = True

    # ------------------------------------------------------------------
    def session_dir(self, name: str) -> Path:
        """The durable directory hosting session ``name``."""
        return self.root / (_DIR_PREFIX + quote(name, safe=""))

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def _entry(self, name: str) -> _Entry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ServiceError(
                f"session {name!r} is not durably tracked"
            )
        return entry

    # ------------------------------------------------------------------
    # registration (create / restore paths)
    # ------------------------------------------------------------------
    def register(self, session: Session) -> None:
        """Start durably tracking a live session.

        Writes its first checkpoint generation (possibly of an empty
        session -- that persists the spec and scheme, so a session that
        crashes before its first roll is still recoverable), arms a
        fresh WAL on top of it, and hooks the session's ingest path.
        Must be called before the creating request is acknowledged.
        """
        directory = self.session_dir(session.name)
        if directory.exists():
            if (directory / _CLOSED).exists():
                # a cleanly closed predecessor: archive, never delete
                generation = 0
                while True:
                    archived = directory.with_name(
                        f"{directory.name}.closed.{generation}"
                    )
                    if not archived.exists():
                        break
                    generation += 1
                os.rename(directory, archived)
            elif not (directory / _CURRENT).exists():
                # a half-created directory from a crash before the
                # creating request was acknowledged: safe to discard
                shutil.rmtree(directory)
            else:
                raise ServiceError(
                    f"durable state for session {session.name!r} already "
                    f"exists under {directory} (recover or remove it first)"
                )
        directory.mkdir(parents=True)
        try:
            version, vertices, _ = self._write_generation(directory, session)
            wal = WriteAheadLog.create(
                directory / _WAL_FILE,
                session,
                base_version=version,
                base_vertices=vertices,
                policy=self.fsync,
                batch_records=self.batch_records,
                epoch=self.epoch,
            )
        except Exception:
            # the create was never acknowledged: remove the half-armed
            # directory so the name is not durably squatted (a *crash*
            # in this window instead leaves the directory behind, which
            # recovery skips -- no CURRENT -- or re-arms -- torn WAL)
            shutil.rmtree(directory, ignore_errors=True)
            raise
        self._arm(session, directory, wal)

    def _arm(
        self, session: Session, directory: Path, wal: WriteAheadLog
    ) -> None:
        entry = _Entry(session=session, directory=directory, wal=wal)
        with self._lock:
            self._entries[session.name] = entry
        session.on_ingest = self._on_ingest

    def _on_ingest(
        self,
        session: Session,
        events: List[Any],
        start: int,
        version: int,
    ) -> None:
        """The :attr:`Session.on_ingest` hook: log before acknowledging."""
        if self.fenced:
            raise ServiceError(
                "store is fenced: a higher replication epoch exists; "
                "this node may no longer acknowledge writes"
            )
        entry = self._entries.get(session.name)
        if entry is None or entry.session is not session:
            return  # stale hook on a superseded session instance
        payload = [insertion_to_json(event) for event in events]
        entry.wal.append(start, version, payload)
        publish = self.on_append
        if publish is not None:
            publish(session, start, version, payload)

    # ------------------------------------------------------------------
    # checkpoint rolls
    # ------------------------------------------------------------------
    def _write_generation(self, directory: Path, session: Session):
        """Durably write a checkpoint generation and flip ``CURRENT``."""
        staging = directory / _CKPT_STAGING
        if staging.exists():  # crash leftover; never pointed to
            shutil.rmtree(staging)
        FAILPOINTS.hit("ckpt.pre_stage")
        checkpoint_session(session, staging, durable=True)
        manifest = load_manifest(staging)
        version = manifest["session_version"]
        vertices = manifest["vertices"]
        target_name = f"{_CKPT_PREFIX}{version:012d}"
        target = directory / target_name
        if self._read_current(directory) == target_name:
            shutil.rmtree(staging)  # nothing new since the last roll
            return version, vertices, target
        if target.exists():
            shutil.rmtree(target)
        os.rename(staging, target)
        fsync_dir(directory)
        FAILPOINTS.hit("ckpt.pre_flip")
        staged_pointer = directory / (_CURRENT + ".tmp")
        staged_pointer.write_text(target_name + "\n")
        fsync_file(staged_pointer)
        os.replace(staged_pointer, directory / _CURRENT)
        fsync_dir(directory)
        FAILPOINTS.hit("ckpt.post_flip")
        return version, vertices, target

    @staticmethod
    def _read_current(directory: Path) -> Optional[str]:
        try:
            return (directory / _CURRENT).read_text().strip()
        except FileNotFoundError:
            return None

    def checkpoint(self, session: Session) -> Dict[str, Any]:
        """Roll ``session``'s WAL into a fresh checkpoint generation.

        Order matters for crash safety: the new generation is written
        and ``CURRENT`` flipped *before* the WAL is truncated, so a
        crash at any point leaves a complete checkpoint plus a WAL that
        still covers everything after it (recovery skips WAL events a
        checkpoint already contains).  Superseded generations are
        deleted last, best effort.
        """
        entry = self._entry(session.name)
        if entry.session is not session:
            # the name was closed and recreated under this roll's feet;
            # writing the stale instance's state into the successor's
            # directory (and truncating ITS WAL to the stale base)
            # would lose the successor's acknowledged insertions
            raise ServiceError(
                f"session {session.name!r} was superseded; refusing to "
                "checkpoint the stale instance"
            )
        with entry.roll_lock:
            roll_started = time.perf_counter()
            version, vertices, target = self._write_generation(
                entry.directory, session
            )
            kept = entry.wal.truncate_to_base(version, vertices)
            roll_ended = time.perf_counter()
            _h_roll.record(roll_ended - roll_started)
            trace = current_trace()
            if trace is not None:
                trace.add_span(
                    SPAN_CHECKPOINT_ROLL, roll_started, roll_ended
                )
            log_event(
                _logger, logging.INFO, "checkpoint-roll",
                session=session.name, version=version, vertices=vertices,
                wal_records=kept,
                seconds=round(roll_ended - roll_started, 6),
            )
            FAILPOINTS.hit("ckpt.pre_gc")
            generations = sorted(
                old
                for old in entry.directory.glob(_CKPT_PREFIX + "*")
                if old.is_dir()
            )
            # zero-padded versions sort lexicographically; retain the
            # newest keep_generations (always including the live one)
            retained = set(generations[-self.keep_generations:])
            retained.add(target)
            for old in generations:
                if old not in retained:
                    shutil.rmtree(old, ignore_errors=True)
            return {
                "session": session.name,
                "checkpoint_version": version,
                "checkpoint_vertices": vertices,
                "wal_records": kept,
            }

    def checkpoint_pending(self) -> List[str]:
        """Roll every tracked session with outstanding WAL records."""
        rolled: List[str] = []
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            if not entry.wal.records:
                continue
            name = entry.session.name
            try:
                self.checkpoint(entry.session)
                rolled.append(name)
            except Exception as exc:  # noqa: BLE001 - keep the thread alive
                # a session closed/superseded between the snapshot and
                # the roll is expected churn; everything else (poisoned
                # WAL, failing disk) must surface through recover_info
                with self._lock:
                    current = self._entries.get(name)
                if current is not entry or entry.wal.closed:
                    continue
                message = f"checkpoint of {name!r} failed: {exc}"
                if message not in self.errors:
                    self.errors.append(message)
        return rolled

    # ------------------------------------------------------------------
    # sync / close / finalize
    # ------------------------------------------------------------------
    def sync(self, name: Optional[str] = None) -> List[str]:
        """Fsync one session's WAL (or all of them); returns the names."""
        if name is not None:
            self._entry(name).wal.sync()
            return [name]
        with self._lock:
            entries = list(self._entries.items())
        for _, entry in entries:
            entry.wal.sync()
        return sorted(name for name, _ in entries)

    def finalize(self, session: Session) -> None:
        """A session closed cleanly: final checkpoint, ``CLOSED`` marker.

        The directory is kept (it is the run's provenance record); a
        later session reusing the name archives it.  Recovery skips
        closed directories.
        """
        try:
            entry = self._entry(session.name)
        except ServiceError:
            return
        if entry.session is not session:
            return
        with entry.roll_lock:
            self._write_generation(entry.directory, session)
            entry.wal.truncate_to_base(session.version, len(session))
            entry.wal.close()
            marker = entry.directory / _CLOSED
            marker.write_text("closed\n")
            fsync_file(marker)
            fsync_dir(entry.directory)
        with self._lock:
            self._entries.pop(session.name, None)
        session.on_ingest = None

    def close(self) -> None:
        """Flush and close every WAL (the sessions stay recoverable)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            try:
                entry.wal.close()
            except OSError:  # pragma: no cover - best effort teardown
                pass
            entry.session.on_ingest = None
        self._lock_handle.close()  # releases the data-dir flock

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, manager: SessionManager) -> List[Dict[str, Any]]:
        """Rebuild every non-closed session found under the data dir.

        For each session directory: restore the ``CURRENT`` checkpoint
        (label verification included), replay the WAL tail through the
        session's scheme, truncate any torn tail, and resume durable
        tracking.  Returns one report per directory; the reports are
        also kept on :attr:`recovery` for the ``recover_info`` op.
        Directories from creations that crashed before being
        acknowledged (no ``CURRENT``) are skipped, not errors.
        """
        reports: List[Dict[str, Any]] = []
        for directory in sorted(self.root.iterdir()):
            if not directory.is_dir():
                continue
            if not directory.name.startswith(_DIR_PREFIX):
                continue
            name = unquote(directory.name[len(_DIR_PREFIX):])
            if (directory / _CLOSED).exists():
                reports.append(
                    {"session": name, "status": "closed", "skipped": True}
                )
                continue
            current = self._read_current(directory)
            if current is None:
                reports.append(
                    {
                        "session": name,
                        "status": "incomplete-create",
                        "skipped": True,
                    }
                )
                continue
            reports.append(self._recover_one(manager, directory, current))
        self.recovery = reports
        for report in reports:
            log_event(
                _logger, logging.INFO, "recovery-report", **report
            )
        return reports

    def _recover_one(
        self, manager: SessionManager, directory: Path, current: str
    ) -> Dict[str, Any]:
        checkpoint_dir = directory / current
        session = restore_session(manager, checkpoint_dir)
        report: Dict[str, Any] = {
            "session": session.name,
            "status": "recovered",
            "skipped": False,
            "checkpoint": current,
            "checkpoint_version": session.version,
            "checkpoint_vertices": len(session),
        }
        wal_path = directory / _WAL_FILE
        try:
            replay = replay_wal(wal_path)
        except TornWalError as exc:
            # a crash between writing the checkpoint and completing the
            # WAL (inside an unacknowledged create, or re-registering):
            # the complete checkpoint is the whole acknowledged state,
            # so re-arm a fresh log on top of it
            wal = WriteAheadLog.create(
                wal_path,
                session,
                base_version=session.version,
                base_vertices=len(session),
                policy=self.fsync,
                batch_records=self.batch_records,
                epoch=self.epoch,
            )
            self._arm(session, directory, wal)
            report["wal_records_replayed"] = 0
            report["wal_events_replayed"] = 0
            report["vertices"] = len(session)
            report["version"] = session.version
            report["wal_rearmed"] = str(exc)
            return report
        except ServiceError as exc:
            # a parseable header with the wrong format tag is real
            # corruption, not a crash artifact -- refuse to guess
            manager.close(session.name)
            raise ServiceError(
                f"session {session.name!r}: {exc}"
            ) from None
        header = replay.header
        if header.get("session") != session.name or (
            header.get("scheme") != session.scheme_name
        ):
            manager.close(session.name)
            raise ServiceError(
                f"write-ahead log {wal_path} belongs to session "
                f"{header.get('session')!r} under scheme "
                f"{header.get('scheme')!r}, not {session.name!r} under "
                f"{session.scheme_name!r}"
            )
        replayed_events = 0
        replayed_records = 0
        for record in replay.records:
            skip = len(session.log) - record.start
            if skip < 0:
                manager.close(session.name)
                raise ServiceError(
                    f"write-ahead log {wal_path} has a gap: record "
                    f"{record.seq} starts at {record.start} but the "
                    f"session has {len(session.log)} insertions"
                )
            if skip >= len(record.events):
                continue  # fully covered by the checkpoint
            try:
                events = [
                    insertion_from_json(event)
                    for event in record.events[skip:]
                ]
            except FormatError as exc:
                manager.close(session.name)
                raise ServiceError(
                    f"write-ahead log {wal_path} record {record.seq} "
                    f"holds a malformed event: {exc}"
                ) from None
            session.ingest_many(events)
            session.version = record.version
            replayed_events += len(events)
            replayed_records += 1
        report["wal_records_replayed"] = replayed_records
        report["wal_events_replayed"] = replayed_events
        report["vertices"] = len(session)
        report["version"] = session.version
        if replay.dropped is not None:
            report["torn_tail"] = replay.dropped
            report["resume_seq"] = replay.next_seq
            report["torn_bytes_dropped"] = replay.dropped_bytes
            report["torn_last_good_seq"] = replay.last_good_seq
        wal = WriteAheadLog.resume(
            wal_path,
            replay,
            policy=self.fsync,
            batch_records=self.batch_records,
        )
        self._arm(session, directory, wal)
        return report

    # ------------------------------------------------------------------
    # introspection / time travel
    # ------------------------------------------------------------------
    def generations(self, name: str) -> List[int]:
        """Retained checkpoint generation versions for a session."""
        directory = self.session_dir(name)
        versions: List[int] = []
        if not directory.is_dir():
            return versions
        for child in directory.glob(_CKPT_PREFIX + "*"):
            if not child.is_dir():
                continue
            try:
                versions.append(int(child.name[len(_CKPT_PREFIX):]))
            except ValueError:
                continue
        return sorted(versions)

    def generation_dir(self, name: str, version: int) -> Path:
        """The checkpoint directory of one retained generation."""
        directory = self.session_dir(name)
        target = directory / f"{_CKPT_PREFIX}{version:012d}"
        if not target.is_dir():
            raise ServiceError(
                f"session {name!r} has no retained checkpoint generation "
                f"{version}; available: {self.generations(name)} "
                "(raise --keep-generations to retain more)"
            )
        return target

    def info(self) -> Dict[str, Any]:
        """The durability state the ``recover_info`` op reports."""
        with self._lock:
            entries = list(self._entries.items())
        sessions = {}
        for name, entry in entries:
            sessions[name] = {
                "checkpoint_version": entry.wal.base_version,
                "checkpoint_vertices": entry.wal.base_vertices,
                "wal_records": entry.wal.records,
                "wal_events": entry.wal.pending_events,
                "wal_unsynced": entry.wal.unsynced,
                "version": entry.session.version,
                "vertices": len(entry.session),
                "generations": self.generations(name),
            }
        return {
            "durable": True,
            "data_dir": str(self.root),
            "fsync": self.fsync,
            "batch_records": self.batch_records,
            "keep_generations": self.keep_generations,
            "epoch": self.epoch,
            "fenced": self.fenced,
            "sessions": sessions,
            "recovered": list(self.recovery),
            "errors": list(self.errors),
        }


# ---------------------------------------------------------------------------
# the background checkpointer
# ---------------------------------------------------------------------------


class Checkpointer(threading.Thread):
    """Periodically rolls outstanding WALs into checkpoints.

    Bounds recovery replay work: after a quiet period every session's
    state lives in its checkpoint and the WAL is empty.  Failures are
    recorded on ``store.errors`` (surfaced by ``recover_info``), never
    raised -- a broken disk must not kill the service loop.
    """

    def __init__(
        self,
        store: DurableStore,
        interval: float = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        super().__init__(name="repro-checkpointer", daemon=True)
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.store = store
        self.interval = interval
        # NB: not named _stop -- threading.Thread has a private _stop
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            self.store.checkpoint_pending()

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the thread and wait for it to exit."""
        self._halt.set()
        self.join(timeout=timeout)
