"""End-to-end smoke test: ``repro serve --selftest [--scheme NAME]``.

Spins up a real :class:`ReproServer` on an ephemeral loopback port,
drives one scripted session through the wire protocol -- scheme
discovery, create (under any registered *dynamic* scheme), batched
ingest, single and batch queries, snapshot, restore, close, shutdown --
and verifies every answer against BFS ground truth on the materialized
run graph, plus that the checkpoint records the session's scheme and
restores under it.  Returns nonzero on any mismatch, so CI can
exercise the server once per dynamic scheme without a separate client
harness.

With ``metrics_port`` the selftest additionally runs the server
durable (a temporary data dir, so WAL and checkpoint timings exist),
serves the Prometheus endpoint on that port, scrapes and strictly
parses it, and asserts the required series are present and populated
-- per-op request latency for query/query_batch/ingest, WAL fsync and
checkpoint-roll timings -- plus that the ``metrics`` op answers and
that a client-sent ``trace_id`` is echoed end to end.

With ``workers > 0`` the exact same scripted session runs against a
:class:`~repro.service.cluster.ClusterSupervisor` instead of the
in-process server -- same client, same wire protocol, zero script
changes -- which is the point: a cluster must be indistinguishable to
clients.  Cluster-only checks ride along: ``cluster_info`` reports the
topology, and merged ``stats`` totals cover ``shards * workers``
engine stripes.
"""

from __future__ import annotations

import random
import tempfile
import threading
import urllib.request
from pathlib import Path
from typing import List, Optional, Tuple

from repro.graphs.reachability import reaches
from repro.obs.metrics import MetricsExporter, parse_prometheus_text
from repro.obs.names import (
    CHECKPOINT_ROLL_SECONDS,
    ENGINE_STAGE_SECONDS,
    OP_LATENCY_SECONDS,
    WAL_FSYNC_SECONDS,
    series_count,
)
from repro.schemes import registry as scheme_registry
from repro.service.checkpoint import load_manifest
from repro.service.client import ServiceClient
from repro.service.server import DEFAULT_SHARDS, ReproServer, ReproService
from repro.workflow.derivation import sample_run
from repro.workflow.execution import execution_from_derivation

# schemes whose run-language support is narrower than "any workflow"
# get a compatible default specification
_SPEC_FOR_SCHEME = {"path-position": "fig12-path"}


def default_spec_for(scheme: str) -> str:
    """The default selftest spec exercising ``scheme``."""
    return _SPEC_FOR_SCHEME.get(scheme, "running-example")


def run_selftest(
    spec_name: Optional[str] = None,
    size: int = 300,
    queries: int = 400,
    seed: int = 0,
    scheme: str = "drl",
    shards: int = DEFAULT_SHARDS,
    verbose: bool = True,
    metrics_port: Optional[int] = None,
    workers: int = 0,
) -> int:
    """Run the scripted session; returns 0 on success, 1 on mismatch."""
    failures: List[str] = []
    if spec_name is None:
        spec_name = default_spec_for(scheme)
    if workers and metrics_port is not None:
        raise ValueError(
            "the Prometheus endpoint leg needs the in-process server; "
            "run --selftest with either --workers or --metrics-port"
        )

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    def say(message: str) -> None:
        if verbose:
            print(f"selftest: {message}")

    rng = random.Random(seed)
    data_tmp: Optional[tempfile.TemporaryDirectory] = None
    exporter: Optional[MetricsExporter] = None
    if metrics_port is not None:
        # a durable server, so the scrape can also validate the WAL
        # fsync and checkpoint-roll series
        data_tmp = tempfile.TemporaryDirectory(prefix="repro-selftest-")
        service = ReproService(shards=shards, data_dir=data_tmp.name)
        exporter = MetricsExporter(
            service.metrics.render_prometheus, port=metrics_port
        ).start()
        say(f"metrics endpoint on 127.0.0.1:{exporter.port}/metrics")
    elif not workers:
        service = ReproService(shards=shards)
    supervisor = None
    if workers:
        from repro.service.cluster import ClusterSupervisor

        supervisor = ClusterSupervisor(
            workers=workers, port=0, shards=shards
        ).start()
        thread = threading.Thread(
            target=supervisor.serve_forever, daemon=True
        )
        thread.start()
        port = supervisor.port
        say(
            f"cluster router on 127.0.0.1:{port} "
            f"({workers} workers x {shards} shards)"
        )
    else:
        server = ReproServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.port
        say(f"server listening on 127.0.0.1:{port} ({shards} shards)")
    try:
        with ServiceClient("127.0.0.1", port) as client:
            if workers:
                topology = client.cluster_info()
                check(
                    topology.get("cluster") is True
                    and topology.get("workers") == workers
                    and all(
                        row.get("alive")
                        for row in topology.get("per_worker", [])
                    ),
                    f"cluster_info reported a bad topology: {topology}",
                )
            check(client.ping(), "ping failed")
            advertised = {s["name"]: s for s in client.list_schemes()}
            check(
                advertised.get(scheme, {}).get("dynamic", False),
                f"scheme {scheme!r} not advertised as dynamic",
            )
            say(
                f"{len(advertised)} schemes advertised; exercising "
                f"{scheme!r} on {spec_name!r}"
            )
            info = client.create_session("selftest", spec_name, scheme=scheme)
            check(info["vertices"] == 0, "fresh session not empty")
            check(
                info.get("scheme") == scheme,
                f"create reported scheme {info.get('scheme')!r}",
            )

            run = sample_run(
                client_spec(spec_name), size, random.Random(seed)
            )
            execution = execution_from_derivation(run)
            graph = run.graph
            say(
                f"derived a {len(execution)}-vertex run of {spec_name!r}; "
                "ingesting in batches"
            )
            events = execution.insertions
            half = len(events) // 2
            client.ingest("selftest", events[:half])
            # queries are answerable mid-run, before ingest completes
            vids_so_far = sorted(ins.vid for ins in events[:half])
            mid_pairs = _sample_pairs(vids_so_far, min(50, queries), rng)
            mid_answers = client.query_batch("selftest", mid_pairs)
            for (a, b), answer in zip(mid_pairs, mid_answers):
                check(
                    answer == reaches(graph, a, b),
                    f"mid-run query {a}~>{b}: got {answer}",
                )
            client.ingest("selftest", events[half:])

            vids = sorted(graph.vertices())
            pairs = _sample_pairs(vids, queries, rng)
            answers = client.query_batch("selftest", pairs)
            wrong = sum(
                1
                for (a, b), answer in zip(pairs, answers)
                if answer != reaches(graph, a, b)
            )
            check(wrong == 0, f"{wrong}/{len(pairs)} batch answers wrong")
            say(f"{len(pairs)} batch queries verified against BFS")

            warm = client.query_batch("selftest", pairs)
            check(warm == answers, "warm-cache answers diverged")
            stats = client.stats()
            check(stats["cache_hits"] >= len(pairs), "cache never hit")
            # a cluster's merged stats cover every worker's stripes
            expected_shards = shards * (workers or 1)
            check(
                stats.get("shards") == expected_shards,
                f"stats report {stats.get('shards')!r} shards, "
                f"expected {expected_shards}",
            )
            if workers:
                check(
                    stats.get("workers") == workers
                    and len(stats.get("per_worker", [])) == workers,
                    "merged stats are missing the per-worker rows",
                )
                totals = sum(
                    row.get("queries", 0)
                    for row in stats.get("per_worker", [])
                )
                check(
                    totals == stats.get("queries"),
                    f"per-worker query counts sum to {totals}, "
                    f"merged total says {stats.get('queries')}",
                )

            # the pipelined fast path must agree with the plain batch
            # (chunked into several requests, matched back by id)
            chunk = max(1, len(pairs) // 7)
            pipelined = client.query_batch(
                "selftest", pairs, chunk=chunk, window=3
            )
            check(
                pipelined == answers,
                "pipelined chunked answers diverged from plain batch",
            )
            say(
                f"pipelined query_batch verified "
                f"({-(-len(pairs) // chunk)} chunks of <= {chunk})"
            )

            with tempfile.TemporaryDirectory() as tmp:
                ckpt = Path(tmp) / "ckpt"
                client.snapshot("selftest", str(ckpt))
                manifest = load_manifest(ckpt)
                check(
                    manifest.get("scheme") == scheme,
                    f"checkpoint recorded scheme {manifest.get('scheme')!r}, "
                    f"expected {scheme!r}",
                )
                restored_info = client.create_session(
                    "restored", checkpoint=str(ckpt)
                )
                check(
                    restored_info.get("scheme") == scheme,
                    f"restore reported scheme "
                    f"{restored_info.get('scheme')!r}",
                )
                restored = client.query_batch("restored", pairs)
                check(
                    restored == answers,
                    "restored session answers diverged",
                )
                say(
                    f"checkpoint -> restore round trip verified "
                    f"(scheme {scheme!r} recorded and restored)"
                )
                client.close_session("restored")

            # observability: a traced single query, the metrics op,
            # and -- when the endpoint is up -- a strict scrape
            source, target = pairs[0]
            traced = client.query(
                "selftest", source, target, trace_id="selftest-trace"
            )
            check(
                traced == reaches(graph, source, target),
                "traced single query answered wrong",
            )
            metrics = client.metrics()
            histogram_names = {h["name"] for h in metrics["histograms"]}
            for required in (
                OP_LATENCY_SECONDS,
                ENGINE_STAGE_SECONDS,
            ):
                check(
                    required in histogram_names,
                    f"metrics op is missing the {required!r} series",
                )
            check(
                metrics.get("traces", {}).get("finished", 0) > 0,
                "tracer finished no traces",
            )
            say(
                f"metrics op returned {len(metrics['histograms'])} "
                f"histogram series, {len(metrics['counters'])} counters"
            )
            if exporter is not None:
                # roll the durable checkpoint so the roll series exists
                client.snapshot("selftest")
                client.sync()
                url = f"http://127.0.0.1:{exporter.port}/metrics"
                with urllib.request.urlopen(url, timeout=10) as response:
                    text = response.read().decode("utf-8")
                try:
                    series = parse_prometheus_text(text)
                except ValueError as exc:
                    check(False, f"exposition text is malformed: {exc}")
                    series = {}
                for op in ("query", "query_batch", "ingest"):
                    samples = [
                        sample
                        for sample in series.get(
                            series_count(OP_LATENCY_SECONDS), []
                        )
                        if sample["labels"].get("op") == op
                    ]
                    check(
                        bool(samples) and samples[0]["value"] > 0,
                        f"scrape has no populated latency series for "
                        f"op {op!r}",
                    )
                for required in (
                    series_count(WAL_FSYNC_SECONDS),
                    series_count(CHECKPOINT_ROLL_SECONDS),
                ):
                    samples = series.get(required, [])
                    check(
                        bool(samples) and samples[0]["value"] > 0,
                        f"scrape has no populated {required!r} series",
                    )
                say(
                    f"scraped {len(series)} series from {url}; "
                    "format and required series verified"
                )

            client.close_session("selftest")
            client.shutdown_server()
        thread.join(timeout=15)
        check(not thread.is_alive(), "server did not shut down")
    finally:
        if supervisor is not None:
            supervisor.stop()
            thread.join(timeout=15)
        else:
            server.server_close()
            service.close()
        if exporter is not None:
            exporter.stop()
        if data_tmp is not None:
            data_tmp.cleanup()

    if failures:
        for failure in failures:
            print(f"selftest FAILED: {failure}")
        return 1
    say("all checks passed")
    return 0


def run_selftest_all_dynamic(
    size: int = 300,
    queries: int = 400,
    seed: int = 0,
    shards: int = DEFAULT_SHARDS,
    verbose: bool = True,
    metrics_port: Optional[int] = None,
    workers: int = 0,
) -> int:
    """Run the selftest once per registered dynamic scheme."""
    status = 0
    for scheme in scheme_registry.available(dynamic=True):
        if verbose:
            print(f"selftest: === scheme {scheme!r} ===")
        status |= run_selftest(
            size=size, queries=queries, seed=seed, scheme=scheme,
            shards=shards, verbose=verbose, metrics_port=metrics_port,
            workers=workers,
        )
    return status


def client_spec(spec_name: str):
    """The same specification the server will instantiate."""
    from repro.service.sessions import resolve_spec

    return resolve_spec(spec_name)


def _sample_pairs(
    vids: List[int], count: int, rng: random.Random
) -> List[Tuple[int, int]]:
    return [
        (rng.choice(vids), rng.choice(vids)) for _ in range(count)
    ]
