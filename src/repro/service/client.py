"""A blocking JSON-lines client for the service, with pipelining.

Thin by design: one socket, remote failures re-raised as the same
:mod:`repro.errors` classes the library raises in process (via the
protocol's error-code mapping), so code written against the in-process
API ports to the remote service unchanged.

Two calling conventions share the connection:

* :meth:`ServiceClient.call` -- one request, one response, in order;
* :meth:`ServiceClient.pipeline` -- many requests written back-to-back
  with a bounded in-flight window, responses matched to requests by
  ``id`` (out-of-order delivery tolerated), results returned in request
  order.  This amortizes one round trip over a whole request train;
  :meth:`query_batch` uses it to split huge batches into chunks so no
  single request exceeds the server's batch cap.

The client is not thread-safe: use one ``ServiceClient`` per thread
(connections are cheap; sessions are shared server-side).

Failover
--------
``connect_timeout`` bounds the TCP connect and ``timeout`` every
subsequent read/write.  When the socket dies mid-call -- a worker
restart behind a cluster router, a server bounce, a primary dying
under replication -- an *idempotent* operation
(:data:`IDEMPOTENT_OPS`: reads and pure probes, never
``ingest``/``create_session``/``close``) is transparently retried on a
fresh connection under bounded exponential backoff with jitter: the
delay starts at ``retry_backoff`` seconds, doubles per attempt up to
``retry_backoff_cap``, is jittered to 50-100% of itself (so a fleet of
clients never reconnects in lockstep), and the whole retry loop gives
up once ``retry_deadline`` seconds have elapsed.  With ``failover``
endpoints configured, each failed attempt also rotates to the next
endpoint -- a client pointed at a dead primary walks onto the promoted
replica by itself.  Non-idempotent calls and pipelines surface the
error unchanged; the caller decides whether a resend is safe (the
crash-recovery loadgen probes before resending).

Every response from a read replica carries a ``replica_lag`` object;
the client keeps the latest on :attr:`ServiceClient.last_replica_lag`
so callers can bound staleness without touching the wire format.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError

#: ops safe to retry on a fresh connection after a socket failure --
#: pure reads and probes; retrying a mutation could double-apply it.
#: ``repl_subscribe`` is a read (the applier resumes from its own
#: position), though the replication applier manages its own retry.
IDEMPOTENT_OPS = frozenset({
    "query", "query_batch", "stats", "metrics", "ping",
    "list_sessions", "schemes", "recover_info", "cluster_info",
    "repl_subscribe",
})

#: ops that change server state and are therefore never auto-retried.
#: Together the two sets partition ``protocol.OPS`` exactly -- the
#: ``ops-surface`` rule of :mod:`repro.analysis` and a unit test both
#: fail if a new op is added to the protocol without being classified
#: here (``sync`` mutates: it advances on-disk durability state;
#: ``repl_ack`` advances coverage; ``promote`` flips roles).
MUTATING_OPS = frozenset({
    "create_session", "ingest", "snapshot", "sync", "close", "shutdown",
    "repl_ack", "promote",
})

#: initial retry delay, seconds (doubles per attempt; kept under its
#: historical name -- it used to be the one fixed reconnect delay)
RECONNECT_BACKOFF = 0.05

#: ceiling on a single backoff delay, seconds
RETRY_BACKOFF_CAP = 1.0

#: total retry budget per call, seconds; once it is spent the last
#: connection error surfaces to the caller
RETRY_DEADLINE = 5.0


class _ConnectionLost(ProtocolError):
    """The server closed the connection mid-conversation.

    A :class:`ProtocolError` subclass so existing callers matching the
    historical "server closed the connection" error keep working; the
    client's retry path additionally catches it to trigger the single
    reconnect for idempotent ops.
    """
from repro.service.protocol import (
    Request,
    Response,
    decode_response,
    encode_request,
    insertions_to_wire,
    raise_for_response,
)

# default pipelined query_batch chunking: pairs per request and
# requests in flight before the client starts draining responses (the
# window bounds socket-buffer usage on both sides, avoiding the classic
# pipelining deadlock where both peers block on full write buffers)
PIPELINE_CHUNK = 1024
PIPELINE_WINDOW = 8


class ServiceClient:
    """Talks to a :class:`~repro.service.server.ReproServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: Optional[float] = None,
        reconnect: bool = True,
        retry_backoff: float = RECONNECT_BACKOFF,
        retry_backoff_cap: float = RETRY_BACKOFF_CAP,
        retry_deadline: float = RETRY_DEADLINE,
        failover: Sequence[Tuple[str, int]] = (),
    ) -> None:
        self._endpoints: List[Tuple[str, int]] = [(host, int(port))]
        for endpoint in failover:
            candidate = (endpoint[0], int(endpoint[1]))
            if candidate not in self._endpoints:
                self._endpoints.append(candidate)
        self._endpoint_index = 0
        self._host, self._port = self._endpoints[0]
        self._timeout = timeout
        self._connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self._reconnect = reconnect
        self._retry_backoff = max(0.0, retry_backoff)
        self._retry_backoff_cap = max(retry_backoff, retry_backoff_cap)
        self._retry_deadline = retry_deadline
        self._next_id = 0
        #: the latest ``replica_lag`` any response carried, if any
        self.last_replica_lag: Optional[Dict[str, Any]] = None
        self._connect_any()

    @property
    def endpoint(self) -> Tuple[str, int]:
        """The endpoint currently connected (changes under failover)."""
        return (self._host, self._port)

    def _connect_any(self) -> None:
        """Connect to the first live endpoint, rotating on refusal.

        Nothing has been sent yet, so trying the next endpoint is safe
        for every op class -- this is connection establishment, not a
        request retry.
        """
        last: Optional[Exception] = None
        for _ in self._endpoints:
            try:
                self._connect()
                return
            except OSError as exc:
                last = exc
                self._advance_endpoint()
        assert last is not None
        raise last

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        self._sock.settimeout(self._timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")

    # ------------------------------------------------------------------
    def call(
        self, op: str, *, trace_id: Optional[str] = None, **params: Any
    ) -> Any:
        """One request/response round trip; returns the result object.

        ``trace_id`` rides on the request and is propagated through
        every server-side layer the request crosses (trace ring, logs,
        WAL records); the server mints one when the client sends none.

        If the socket dies and ``op`` is idempotent
        (:data:`IDEMPOTENT_OPS`), the client retries on fresh
        connections under exponential backoff with jitter until
        ``retry_deadline`` is spent, rotating through the ``failover``
        endpoints; mutations are never retried (a lost ack does not
        prove a lost write).
        """
        self._next_id += 1
        request = Request(
            op=op, params=params, id=self._next_id, trace_id=trace_id
        )
        try:
            return self._round_trip(request)
        except (_ConnectionLost, OSError) as exc:
            if not (self._reconnect and op in IDEMPOTENT_OPS):
                raise
            return self._retry(request, exc)

    def _retry(self, request: Request, failure: Exception) -> Any:
        """Bounded-backoff retry of one idempotent request."""
        deadline = time.monotonic() + self._retry_deadline
        attempt = 0
        while True:
            delay = min(
                self._retry_backoff_cap,
                self._retry_backoff * (2 ** attempt),
            )
            # full delay 50-100%: decorrelates a fleet of clients all
            # reconnecting after the same server bounce
            delay *= 0.5 + random.random() / 2
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise failure
            time.sleep(min(delay, max(0.0, remaining)))
            attempt += 1
            try:
                self._reopen()
                return self._round_trip(request)
            except (_ConnectionLost, OSError) as exc:
                failure = exc
                self._advance_endpoint()

    def _advance_endpoint(self) -> None:
        if len(self._endpoints) > 1:
            self._endpoint_index = (
                self._endpoint_index + 1
            ) % len(self._endpoints)
            self._host, self._port = self._endpoints[self._endpoint_index]

    def _round_trip(self, request: Request) -> Any:
        self._writer.write(encode_request(request))
        self._writer.flush()
        response = self._read_response()
        if response.id is not None and response.id != request.id:
            raise ProtocolError(
                f"response id {response.id!r} does not match "
                f"request id {request.id!r}"
            )
        return raise_for_response(response)

    def _reopen(self) -> None:
        """Drop the dead socket and connect fresh (same endpoint)."""
        try:
            self.close()
        except OSError:  # pragma: no cover - closing a dead socket
            pass
        self._connect()

    def pipeline(
        self,
        calls: Sequence[Tuple[str, Dict[str, Any]]],
        window: int = PIPELINE_WINDOW,
    ) -> List[Any]:
        """Issue many ``(op, params)`` requests pipelined on one socket.

        At most ``window`` requests are in flight at once; responses are
        matched to requests by ``id`` so an out-of-order reply is
        handled, not fatal.  Results come back in *request* order.  If
        any request failed, every response is still drained first (the
        connection stays usable), then the mapped exception of the
        earliest failure is raised.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        requests: List[Request] = []
        for op, params in calls:
            self._next_id += 1
            requests.append(Request(op=op, params=dict(params),
                                    id=self._next_id))
        responses: Dict[Any, Response] = {}
        outstanding = set()
        for request in requests:
            self._writer.write(encode_request(request))
            outstanding.add(request.id)
            if len(outstanding) >= window:
                self._writer.flush()
                self._drain_one(outstanding, responses)
        self._writer.flush()
        while outstanding:
            self._drain_one(outstanding, responses)
        return [raise_for_response(responses[r.id]) for r in requests]

    def _drain_one(self, outstanding: set, responses: Dict[Any, Response]):
        response = self._read_response()
        if response.id not in outstanding:
            raise ProtocolError(
                f"response id {response.id!r} matches no in-flight request"
            )
        outstanding.discard(response.id)
        responses[response.id] = response

    def _read_response(self) -> Response:
        line = self._reader.readline()
        if not line:
            raise _ConnectionLost("server closed the connection")
        response = decode_response(line)
        if response.replica_lag is not None:
            self.last_replica_lag = response.replica_lag
        return response

    # ------------------------------------------------------------------
    # convenience wrappers, one per operation
    # ------------------------------------------------------------------
    def create_session(
        self,
        name: str,
        spec: Optional[str] = None,
        scheme: str = "drl",
        skeleton: str = "tcl",
        mode: str = "logged",
        checkpoint: Optional[str] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "name": name, "skeleton": skeleton, "mode": mode,
        }
        if checkpoint is not None:
            # the checkpoint manifest records the scheme; sending one
            # here would turn the default into a spurious mismatch
            params["checkpoint"] = checkpoint
        elif spec is not None:
            params["spec"] = spec
            params["scheme"] = scheme
        else:
            raise ProtocolError(
                "create_session needs either 'spec' or 'checkpoint'"
            )
        return self.call("create_session", **params)

    def ingest(
        self,
        session: str,
        insertions: Iterable,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self.call(
            "ingest",
            session=session,
            insertions=insertions_to_wire(insertions),
            trace_id=trace_id,
        )

    def query(
        self,
        session: str,
        source: int,
        target: int,
        trace_id: Optional[str] = None,
        as_of: Optional[int] = None,
    ) -> bool:
        """One reachability probe; ``as_of`` answers from the retained
        checkpoint of that generation instead of the live session
        (time-travel read; see ``--keep-generations``)."""
        params: Dict[str, Any] = {
            "session": session, "source": source, "target": target,
        }
        if as_of is not None:
            params["as_of"] = as_of
        result = self.call("query", trace_id=trace_id, **params)
        return bool(result["answer"])

    def query_batch(
        self,
        session: str,
        pairs: Sequence[Tuple[int, int]],
        chunk: Optional[int] = None,
        window: int = PIPELINE_WINDOW,
        trace_id: Optional[str] = None,
        as_of: Optional[int] = None,
    ) -> List[bool]:
        """Batched reachability; chunked and pipelined when asked.

        With ``chunk`` set (or a batch larger than the default pipeline
        chunk), the pairs are split into chunks of that size and issued
        through :meth:`pipeline`, so arbitrarily large batches respect
        the server's per-request cap while still costing roughly one
        round trip.  Answers always come back in input order.  ``as_of``
        answers every pair from the retained checkpoint of that
        generation (time-travel read).
        """
        pairs = list(pairs)
        if chunk is None and len(pairs) > PIPELINE_CHUNK:
            chunk = PIPELINE_CHUNK
        if chunk is not None and chunk < 1:
            raise ValueError("chunk must be >= 1")
        if chunk is None or len(pairs) <= chunk:
            params: Dict[str, Any] = {
                "session": session,
                "pairs": [[source, target] for source, target in pairs],
            }
            if as_of is not None:
                params["as_of"] = as_of
            result = self.call("query_batch", trace_id=trace_id, **params)
            return [bool(answer) for answer in result["answers"]]
        # pipelined chunks each carry the trace id (a top-level wire
        # field, so it rides inside the params dict unchanged)
        extra: Dict[str, Any] = (
            {"trace_id": trace_id} if trace_id is not None else {}
        )
        if as_of is not None:
            extra["as_of"] = as_of
        calls = [
            (
                "query_batch",
                {
                    "session": session,
                    "pairs": [
                        [source, target]
                        for source, target in pairs[start : start + chunk]
                    ],
                    **extra,
                },
            )
            for start in range(0, len(pairs), chunk)
        ]
        results = self.pipeline(calls, window=window)
        return [
            bool(answer)
            for result in results
            for answer in result["answers"]
        ]

    def snapshot(
        self, session: str, path: Optional[str] = None
    ) -> Dict[str, Any]:
        """Checkpoint a session; pathless rolls the durable checkpoint.

        With ``path`` the server writes a checkpoint directory there
        (works on any server).  Without it, a durable server
        (``--data-dir``) rolls the session's write-ahead log into its
        own checkpoint generation instead.
        """
        if path is None:
            return self.call("snapshot", session=session)
        return self.call("snapshot", session=session, path=str(path))

    def sync(self, session: Optional[str] = None) -> Dict[str, Any]:
        """Force-fsync one session's write-ahead log (or all of them).

        Upgrades already-acknowledged ingests to power-loss durability
        under the ``batch``/``never`` fsync policies; a no-op (but
        still a round trip) under ``always``.  `ServiceError` on a
        server without a data dir.
        """
        if session is None:
            return self.call("sync")
        return self.call("sync", session=session)

    def recover_info(self) -> Dict[str, Any]:
        """The server's durability state (``{"durable": false}`` if none)."""
        return self.call("recover_info")

    def list_schemes(self) -> List[Dict[str, Any]]:
        """Registered labeling backends with their capability flags."""
        return list(self.call("schemes")["schemes"])

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def metrics(self) -> Dict[str, Any]:
        """The server's metrics snapshot plus its trace-ring summary.

        Counters and histogram summaries (count/sum/mean/min/max and
        p50/p95/p99) for every series the server records -- per-op
        request latency, engine stages, WAL append/fsync, checkpoint
        timings -- under ``counters``/``histograms``, with the tracer's
        retention summary under ``traces``.
        """
        return self.call("metrics")

    def close_session(self, session: str) -> Dict[str, Any]:
        return self.call("close", session=session)

    def list_sessions(self) -> List[str]:
        return list(self.call("list_sessions")["sessions"])

    def ping(self) -> bool:
        return bool(self.call("ping")["pong"])

    def cluster_info(self) -> Dict[str, Any]:
        """The serving topology (``{"cluster": false}`` on a plain
        server; worker pids/ports/restarts behind a cluster router)."""
        return self.call("cluster_info")

    def shutdown_server(self) -> Dict[str, Any]:
        return self.call("shutdown")

    def repl_subscribe(
        self,
        from_seq: int,
        epoch: int = 0,
        replica_id: Optional[str] = None,
        wait: float = 1.0,
    ) -> Dict[str, Any]:
        """Long-poll the primary's replication stream from a position.

        Returns either ``{"records": [...], "seq", "epoch"}`` or, when
        ``from_seq`` fell off the primary's in-memory ring (or is
        negative), ``{"reset": true, "seq", "epoch", "snapshot"}`` --
        a full-state resync point.  Used by the replica applier; also
        handy for tailing the stream in tooling.
        """
        params: Dict[str, Any] = {
            "from_seq": from_seq, "epoch": epoch, "wait": wait,
        }
        if replica_id is not None:
            params["replica_id"] = replica_id
        return self.call("repl_subscribe", **params)

    def repl_ack(
        self, replica_id: str, seq: int, epoch: int = 0
    ) -> Dict[str, Any]:
        """Report a replica's applied position to the primary."""
        return self.call(
            "repl_ack", replica_id=replica_id, seq=seq, epoch=epoch
        )

    def promote(self, epoch: Optional[int] = None) -> Dict[str, Any]:
        """Promote a replica to primary under a bumped fencing epoch.

        The server bumps its epoch durably (to ``epoch`` when given,
        else one past its current) before accepting writes; the old
        primary, if it resurfaces, is fenced on first contact.
        """
        if epoch is None:
            return self.call("promote")
        return self.call("promote", epoch=epoch)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (the server keeps running)."""
        for stream in (self._reader, self._writer):
            try:
                stream.close()
            except OSError:  # pragma: no cover - best effort
                pass
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
