"""A blocking JSON-lines client for the service.

Thin by design: one socket, one in-flight request, remote failures
re-raised as the same :mod:`repro.errors` classes the library raises in
process (via the protocol's error-code mapping), so code written
against the in-process API ports to the remote service unchanged.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.service.protocol import (
    Request,
    decode_response,
    encode_request,
    insertions_to_wire,
    raise_for_response,
)


class ServiceClient:
    """Talks to a :class:`~repro.service.server.ReproServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")
        self._next_id = 0

    # ------------------------------------------------------------------
    def call(self, op: str, **params: Any) -> Any:
        """One request/response round trip; returns the result object."""
        self._next_id += 1
        request = Request(op=op, params=params, id=self._next_id)
        self._writer.write(encode_request(request))
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        response = decode_response(line)
        if response.id is not None and response.id != request.id:
            raise ProtocolError(
                f"response id {response.id!r} does not match "
                f"request id {request.id!r}"
            )
        return raise_for_response(response)

    # ------------------------------------------------------------------
    # convenience wrappers, one per operation
    # ------------------------------------------------------------------
    def create_session(
        self,
        name: str,
        spec: Optional[str] = None,
        scheme: str = "drl",
        skeleton: str = "tcl",
        mode: str = "logged",
        checkpoint: Optional[str] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "name": name, "skeleton": skeleton, "mode": mode,
        }
        if checkpoint is not None:
            # the checkpoint manifest records the scheme; sending one
            # here would turn the default into a spurious mismatch
            params["checkpoint"] = checkpoint
        elif spec is not None:
            params["spec"] = spec
            params["scheme"] = scheme
        else:
            raise ProtocolError(
                "create_session needs either 'spec' or 'checkpoint'"
            )
        return self.call("create_session", **params)

    def ingest(self, session: str, insertions: Iterable) -> Dict[str, Any]:
        return self.call(
            "ingest",
            session=session,
            insertions=insertions_to_wire(insertions),
        )

    def query(self, session: str, source: int, target: int) -> bool:
        result = self.call(
            "query", session=session, source=source, target=target
        )
        return bool(result["answer"])

    def query_batch(
        self, session: str, pairs: Sequence[Tuple[int, int]]
    ) -> List[bool]:
        result = self.call(
            "query_batch",
            session=session,
            pairs=[[source, target] for source, target in pairs],
        )
        return [bool(answer) for answer in result["answers"]]

    def snapshot(self, session: str, path: str) -> Dict[str, Any]:
        return self.call("snapshot", session=session, path=str(path))

    def list_schemes(self) -> List[Dict[str, Any]]:
        """Registered labeling backends with their capability flags."""
        return list(self.call("schemes")["schemes"])

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def close_session(self, session: str) -> Dict[str, Any]:
        return self.call("close", session=session)

    def list_sessions(self) -> List[str]:
        return list(self.call("list_sessions")["sessions"])

    def ping(self) -> bool:
        return bool(self.call("ping")["pong"])

    def shutdown_server(self) -> Dict[str, Any]:
        return self.call("shutdown")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (the server keeps running)."""
        for stream in (self._reader, self._writer):
            try:
                stream.close()
            except OSError:  # pragma: no cover - best effort
                pass
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
