"""Checkpoint and recovery of live sessions.

A checkpoint is a directory of four JSON documents::

    manifest.json   session name, spec name, scheme name, skeleton/mode,
                    version, vertex count, format tag
    spec.json       the specification (repro.io.jsonio schema)
    log.json        the insertion log so far (execution-log schema)
    labels.json     the labels assigned so far (repro.io.labelstore,
                    compact binary codec dispatched on the scheme name)

Labels are write-once, so a checkpoint never needs to rewrite earlier
state: a later checkpoint of the same session is a strict superset of
an earlier one, which makes the format append-friendly.

Recovery rebuilds the session under the *recorded scheme* and replays
the insertion log through a fresh labeler -- labeling is deterministic,
so the replay reassigns exactly the labels the live session had -- and
then verifies the recomputed labels against the stored ones, turning
label persistence into an integrity check rather than a trusted input.
The restored session continues ingesting from where the checkpoint was
taken.  Checkpoints written before the scheme field existed restore as
``drl`` (the only scheme that could have written them).

Durability: by default every staged document is fsynced before its
rename and the directory is fsynced after the manifest rename, so a
completed :func:`checkpoint_session` survives power loss, not just
process death.  ``durable=False`` skips the fsyncs (tests, throwaway
snapshots on tmpfs).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

from repro.errors import ServiceError
from repro.obs.metrics import default_registry
from repro.obs.names import CHECKPOINT_WRITE_SECONDS
from repro.io.jsonio import (
    execution_from_json,
    execution_to_json,
    specification_from_json,
    specification_to_json,
)
from repro.io.labelstore import load_label_store, peek_label_store, save_labels
from repro.io.xmlio import FormatError
from repro.service.sessions import Session, SessionManager

# wall time of one full checkpoint write (snapshot + staged files +
# fsyncs); the roll series in repro.service.wal wraps this plus the
# WAL truncation
_h_write = default_registry().histogram(CHECKPOINT_WRITE_SECONDS)

_FORMAT = "repro-checkpoint"
_VERSION = 1

_MANIFEST = "manifest.json"
_SPEC = "spec.json"
_LOG = "log.json"
_LABELS = "labels.json"


def fsync_file(path) -> None:
    """Flush a written-and-closed file's data to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path) -> None:
    """Flush a directory's entries (renames, creates) to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - some filesystems refuse dir fsync
        pass
    finally:
        os.close(fd)


def checkpoint_session(session: Session, directory, durable: bool = True) -> Path:
    """Write a consistent checkpoint of ``session`` into ``directory``.

    The snapshot is taken under the session lock, so it reflects one
    version even while writers keep ingesting.  With ``durable`` (the
    default) each staged file is fsynced before its rename and the
    directory is fsynced after the manifest rename, so the checkpoint
    survives power loss.  Returns the directory.
    """
    write_started = time.perf_counter()
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    version, labels, log = session.snapshot_state()
    manifest = {
        "format": _FORMAT,
        "version": _VERSION,
        "session": session.name,
        "spec": session.spec.name,
        "scheme": session.scheme_name,
        "skeleton": session.skeleton,
        "mode": session.mode,
        "session_version": version,
        "vertices": len(labels),
    }
    # every document is staged under a temp name, fsynced, and
    # atomically renamed into place, manifest last: a crash while
    # staging leaves any prior checkpoint in the directory untouched,
    # and a fresh directory only gains a manifest once every other
    # document is durably in place.  The manifest's vertex count lets
    # restore detect the narrow window where a re-checkpoint crashed
    # between renames.
    stage = [
        (_SPEC, lambda p: _dump(specification_to_json(session.spec), p)),
        (_LOG, lambda p: _dump(execution_to_json(log, session.spec.name), p)),
        (
            _LABELS,
            lambda p: save_labels(
                labels, session.spec, p, scheme=session.scheme_name
            ),
        ),
        (_MANIFEST, lambda p: _dump(manifest, p, indent=2)),
    ]
    for filename, write in stage:
        staged = path / (filename + ".tmp")
        write(staged)
        if durable:
            fsync_file(staged)
    for filename, _ in stage:
        os.replace(path / (filename + ".tmp"), path / filename)
    if durable:
        fsync_dir(path)
    _h_write.record(time.perf_counter() - write_started)
    return path


def _dump(document, path, indent=None) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=indent)  # repro: noqa[durability-fsync] -- checkpoint_session fsyncs every staged file (and the directory) before the manifest rename publishes them


def load_manifest(directory) -> dict:
    """Read and validate a checkpoint manifest."""
    path = Path(directory) / _MANIFEST
    if not path.exists():
        raise ServiceError(f"{directory} is not a checkpoint (no manifest)")
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("format") != _FORMAT:
        raise ServiceError(
            f"not a checkpoint manifest: {manifest.get('format')!r}"
        )
    return manifest


def restore_session(
    manager: SessionManager, directory, name: Optional[str] = None
) -> Session:
    """Rebuild a checkpointed session inside ``manager``.

    ``name`` overrides the checkpointed session name (useful when
    restoring next to a still-live original).  The insertion log is
    replayed through a fresh labeler and the recomputed labels are
    verified against the stored ones; any divergence aborts the restore.

    Everything that can fail cheaply is validated *before* the O(n)
    replay: the target name's availability (``adopt`` re-checks under
    its lock, so this is a fast-fail, not the correctness guarantee),
    and the label store's header -- a missing/corrupt store or a scheme
    mismatch against the manifest aborts without relabeling anything.
    """
    path = Path(directory)
    manifest = load_manifest(path)
    target = name or manifest["session"]
    if target in manager:
        raise ServiceError(f"session {target!r} already exists")
    scheme = manifest.get("scheme", "drl")
    try:
        stored_scheme, stored_count = peek_label_store(path / _LABELS)
    except FormatError as exc:
        raise ServiceError(f"checkpoint {path} is unusable: {exc}") from None
    if stored_scheme != scheme:
        raise ServiceError(
            f"checkpoint {path} is inconsistent: manifest records scheme "
            f"{scheme!r} but the label store was written by "
            f"{stored_scheme!r}"
        )
    with open(path / _SPEC) as handle:
        spec = specification_from_json(json.load(handle))
    with open(path / _LOG) as handle:
        log = execution_from_json(json.load(handle))
    if len(log) != manifest["vertices"] or stored_count != len(log):
        raise ServiceError(
            f"checkpoint {path} is inconsistent: manifest records "
            f"{manifest['vertices']} vertices but the log has {len(log)} "
            f"and the label store {stored_count} "
            "(mixed checkpoint generations?)"
        )
    session = Session(
        target,
        spec,
        scheme=scheme,
        skeleton=manifest["skeleton"],
        mode=manifest["mode"],
    )
    session.ingest_many(log)
    session.version = manifest["session_version"]
    stored_scheme, stored = load_label_store(spec, path / _LABELS)
    if dict(session.scheme.labels) != stored:
        raise ServiceError(
            f"checkpoint {path} is corrupt: replayed labels diverge "
            "from the stored labels"
        )
    return manager.adopt(session)
