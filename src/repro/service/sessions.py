"""Session hosting: many labeled runs living side by side.

A :class:`Session` owns everything one running workflow needs -- the
specification, a pluggable *dynamic* labeling scheme resolved by name
through :mod:`repro.schemes.registry` (DRL by default), the raw
insertion log (kept for checkpointing) and a lock serializing writers.
A :class:`SessionManager` hosts many sessions under distinct names so a
single service process can track many concurrent workflow executions,
the way a workflow engine tracks many active runs.

The ``scheme`` name is wire-visible (``create_session``), persisted in
checkpoints, and validated against the registry's dynamic capability:
static schemes need the frozen run, which a live session never has.

Concurrency model
-----------------
Each session carries a ``threading.Lock`` held for the duration of an
insertion (labeling mutates the labeler's parse tree) and a
monotonically increasing ``version`` counter, bumped once per ingest
batch.  Labels are write-once -- once a vertex is labeled its label is
final (Theorem 3) -- so readers never need the lock to *use* a label;
they only read ``version`` under the lock to get a consistent cache
key (see :mod:`repro.service.engine`).
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
import zlib
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.datasets import spec_by_name
from repro.errors import ServiceError, SessionNotFoundError
from repro.labeling.drl import Label
from repro.obs.logs import log_event
from repro.obs.metrics import default_registry
from repro.obs.names import ENGINE_STAGE_SECONDS, STAGE_LABEL_BUILD
from repro.obs.trace import current_trace
from repro.schemes import registry as scheme_registry
from repro.workflow.execution import Insertion
from repro.workflow.specification import Specification

_logger = logging.getLogger("repro.service.sessions")

# time spent inside the labeler assigning labels (the paper's O(1)
# amortized claim, observed): one record per ingest batch, into the
# process-default registry so standalone sessions and hosted ones land
# in the same series
_label_build_hist = default_registry().histogram(
    ENGINE_STAGE_SECONDS, stage=STAGE_LABEL_BUILD
)

SpecLike = Union[Specification, str]

# (session, applied events, log index of the first event, new version)
IngestHook = Callable[["Session", List[Insertion], int, int], None]


def resolve_spec(spec: SpecLike) -> Specification:
    """Turn a spec argument into a :class:`Specification`.

    Accepts an already-built specification, the name of a bundled
    dataset (``bioaid``, ``running-example``, ``synthetic``, ...) or a
    path to a ``.json`` / ``.xml`` spec file.
    """
    if isinstance(spec, Specification):
        return spec
    try:
        return spec_by_name(spec)
    except KeyError:
        pass
    path = Path(spec)
    if not path.exists():
        from repro.datasets import builtin_spec_names

        raise ServiceError(
            f"spec {spec!r} is neither a file nor one of "
            f"{builtin_spec_names()}"
        )
    if path.suffix == ".xml":
        from repro.io import load_specification_xml

        return load_specification_xml(path)
    from repro.io import load_specification_json

    return load_specification_json(path)


# process-wide unique session instance ids: names can be reused after a
# close, uids never are, so caches keyed by uid cannot serve a dead
# session's answers to its successor
_next_uid = itertools.count(1).__next__


class Session:
    """One hosted run: a spec, a live dynamic scheme, its insertion log."""

    def __init__(
        self,
        name: str,
        spec: Specification,
        scheme: str = "drl",
        skeleton: str = "tcl",
        mode: str = "logged",
    ) -> None:
        self.uid = _next_uid()
        self.name = name
        self.spec = spec
        self.scheme_name = scheme_registry.get(scheme).name
        self.skeleton = skeleton
        self.mode = mode
        # validates the dynamic capability (ServiceError for static names)
        self.scheme = scheme_registry.open_dynamic(
            scheme, spec, skeleton=skeleton, mode=mode
        )
        self.lock = threading.Lock()
        self.version = 0
        self.log: List[Insertion] = []
        self.closed = False
        # durability hook: called under the session lock after a batch
        # is applied, with (session, applied events, log index of the
        # first event, new version).  The write-ahead log uses it to
        # persist every applied insertion *before* the ingest call
        # returns -- if the hook raises (disk full, closed log), the
        # events stay applied in memory (labels are write-once) but the
        # caller gets the error instead of an acknowledgement.
        self.on_ingest: Optional[IngestHook] = None

    @property
    def labeler(self):
        """Back-compat alias: the scheme *is* the labeler now."""
        return self.scheme

    # ------------------------------------------------------------------
    # writers (serialized by the session lock)
    # ------------------------------------------------------------------
    def ingest(self, insertion: Insertion) -> Label:
        """Insert one vertex; its label is final immediately."""
        with self.lock:
            self._check_open()
            label = self.scheme.insert(insertion)
            self.log.append(insertion)
            self.version += 1
            if self.on_ingest is not None:
                self.on_ingest(
                    self, [insertion], len(self.log) - 1, self.version
                )
            return label

    def ingest_many(self, insertions: Iterable[Insertion]) -> int:
        """Insert a batch under one lock hold; one version bump per batch.

        Labels are write-once, so a batch cannot be rolled back: if an
        insertion is rejected mid-batch, the earlier events stay applied
        (their labels are already final and correct), the error
        propagates to the caller, and the insertion log records exactly
        what was applied -- ``len(session)`` / a checkpoint tells the
        client where to resume.  The version is bumped whenever at least
        one event was applied, including on a failed batch.
        """
        with self.lock:
            self._check_open()
            count = 0
            failure = None
            build_started = time.perf_counter()
            try:
                for insertion in insertions:
                    self.scheme.insert(insertion)
                    self.log.append(insertion)
                    count += 1
            except BaseException as exc:
                failure = exc
                raise
            finally:
                build_ended = time.perf_counter()
                _label_build_hist.record(build_ended - build_started)
                trace = current_trace()
                if trace is not None:
                    trace.add_span(
                        STAGE_LABEL_BUILD, build_started, build_ended
                    )
                if count:
                    self.version += 1
                    if self.on_ingest is not None:
                        # the applied prefix of a failed batch is logged
                        # too: it is final in memory, so it must be
                        # durable as well
                        try:
                            self.on_ingest(
                                self,
                                self.log[-count:],
                                len(self.log) - count,
                                self.version,
                            )
                        except Exception:
                            # never shadow the batch's own error; the
                            # hook (the WAL) poisons itself, so later
                            # ingests fail loudly rather than diverge
                            if failure is None:
                                raise
            return count

    def _check_open(self) -> None:
        if self.closed:
            raise ServiceError(f"session {self.name!r} is closed")

    # ------------------------------------------------------------------
    # readers (lock-free: labels are write-once)
    # ------------------------------------------------------------------
    def label(self, vid: int) -> Label:
        """The final label of an already inserted vertex."""
        return self.scheme.label_of(vid)

    def query(self, source: int, target: int) -> bool:
        """Uncached reachability ``source ~> target`` from labels alone."""
        return self.scheme.reaches(source, target)

    def snapshot_state(self) -> Tuple[int, Dict[int, Label], List[Insertion]]:
        """A consistent ``(version, labels, log)`` copy for checkpointing."""
        with self.lock:
            return self.version, dict(self.scheme.labels), list(self.log)

    def __len__(self) -> int:
        return len(self.scheme.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session({self.name!r}, spec={self.spec.name!r}, "
            f"scheme={self.scheme_name!r}, vertices={len(self)}, "
            f"version={self.version})"
        )


class SessionManager:
    """Hosts many named sessions; thread-safe create/get/close.

    The registry is lock-striped across ``shards`` independent
    ``(lock, dict)`` slices keyed by CRC-32 of the name (stable across
    processes, unlike the salted builtin ``hash()``, and therefore the
    same stripe layout the cluster's session router uses), so
    create/get/close on *different* sessions never contend on one
    mutex -- the same striping the query engine applies to its cache.  Cross-shard views
    (:meth:`names`, ``len``) take each shard lock in turn; they are
    monitoring surfaces and need no global atomicity.
    """

    DEFAULT_SHARDS = 8

    def __init__(self, shards: int = DEFAULT_SHARDS) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._locks = [threading.Lock() for _ in range(shards)]
        self._tables: List[Dict[str, Session]] = [{} for _ in range(shards)]

    @property
    def shards(self) -> int:
        return len(self._tables)

    def _slot(self, name: str) -> Tuple[threading.Lock, Dict[str, Session]]:
        index = zlib.crc32(name.encode("utf-8")) % len(self._tables)
        return self._locks[index], self._tables[index]

    def create(
        self,
        name: str,
        spec: SpecLike,
        scheme: str = "drl",
        skeleton: str = "tcl",
        mode: str = "logged",
    ) -> Session:
        """Create (and register) a fresh session named ``name``."""
        specification = resolve_spec(spec)
        session = Session(
            name, specification, scheme=scheme, skeleton=skeleton, mode=mode
        )
        self.adopt(session)
        log_event(
            _logger, logging.INFO, "session-create",
            session=name, spec=specification.name, scheme=session.scheme_name,
        )
        return session

    def adopt(self, session: Session) -> Session:
        """Register an externally built session (checkpoint restore)."""
        lock, table = self._slot(session.name)
        with lock:
            if session.name in table:
                raise ServiceError(
                    f"session {session.name!r} already exists"
                )
            table[session.name] = session
        return session

    def get(self, name: str) -> Session:
        lock, table = self._slot(name)
        with lock:
            try:
                return table[name]
            except KeyError:
                raise SessionNotFoundError(
                    f"no session named {name!r}"
                ) from None

    def close(self, name: str) -> Session:
        """Remove a session; its in-memory state becomes unreachable."""
        lock, table = self._slot(name)
        with lock:
            try:
                session = table.pop(name)
            except KeyError:
                raise SessionNotFoundError(
                    f"no session named {name!r}"
                ) from None
        with session.lock:
            session.closed = True
        log_event(
            _logger, logging.INFO, "session-close",
            session=name, vertices=len(session), version=session.version,
        )
        return session

    def names(self) -> List[str]:
        collected: List[str] = []
        for lock, table in zip(self._locks, self._tables):
            with lock:
                collected.extend(table)
        return sorted(collected)

    def __contains__(self, name: str) -> bool:
        lock, table = self._slot(name)
        with lock:
            return name in table

    def __len__(self) -> int:
        total = 0
        for lock, table in zip(self._locks, self._tables):
            with lock:
                total += len(table)
        return total
