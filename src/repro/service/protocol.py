"""The JSON-lines wire protocol of the provenance query service.

Every message is one JSON object per line.  Requests carry an ``op``,
an optional client-chosen ``id`` (echoed back verbatim) and op-specific
parameters; responses carry ``ok`` plus either a ``result`` object or
an ``error``/``code`` pair.  Error codes map one-to-one onto the
:mod:`repro.errors` hierarchy so a remote caller can re-raise the same
exception class the library would have raised in process.

Operations::

    create_session   name, spec[, scheme, skeleton, mode, checkpoint]
    ingest           session, insertions=[event...]   (one or many)
    query            session, source, target
    query_batch      session, pairs=[[v, w]...]
    snapshot         session[, path]  (pathless: roll the durable ckpt)
    sync             [session]        (fsync the write-ahead log(s))
    recover_info     (durability state: WALs, checkpoints, recovery)
    schemes          (lists the registered labeling backends)
    stats
    metrics          (latency histograms, counters, trace summary)
    close            session
    list_sessions
    ping
    shutdown
    cluster_info     (process topology: workers, pids, ports, restarts)
    repl_subscribe   from_seq[, epoch, replica_id, wait]  (ship WAL records)
    repl_ack         replica_id, seq[, epoch]  (replica coverage ack)
    promote          [epoch]  (replica -> primary; fences older epochs)

``scheme`` selects the session's labeling backend by registry name
(``drl`` by default); ``schemes`` returns every registered backend with
its capability flags so clients can discover which names are dynamic
(hostable in a session) before opening one.

Durability
----------
A server started with ``--data-dir`` write-ahead-logs every ingest
before acknowledging it (see :mod:`repro.service.wal`).  ``sync``
force-fsyncs one session's WAL (or all of them), upgrading
acknowledgements to power-loss durability under the ``batch``/``never``
fsync policies; ``recover_info`` reports the durability state -- fsync
policy, per-session checkpoint/WAL positions, and what boot-time
recovery found (including any torn WAL tail it dropped).  On a server
without a data dir ``sync`` is a ``service`` error and ``recover_info``
answers ``{"durable": false}``.

Pipelining
----------
Requests on one connection are answered strictly in order, one response
line per request line, and the client-chosen ``id`` is echoed back
verbatim -- so a client may write many requests before reading any
response and match responses to requests by ``id``, tolerating
out-of-order delivery from relays or future servers.
:meth:`repro.service.client.ServiceClient.pipeline` implements this
with a bounded in-flight window, and ``query_batch`` uses it to split
huge batches into pipelined chunks (one round trip amortized over the
whole batch).  Batch payloads (``query_batch`` pairs, ``ingest``
events) are capped at :data:`MAX_BATCH` items per request by default;
an oversized batch is a structured ``protocol`` error, never a dropped
connection.

Tracing
-------
Any request may carry a ``trace_id`` (a short opaque string); the
server propagates it through the engine, the session layer and -- on a
durable server -- into the write-ahead-log records the request caused,
echoes it on the response, and retains the request's span timeline in
its in-memory trace ring (see :mod:`repro.obs.trace`).  A request
without one gets a server-generated id, so every response/trace/WAL
record is joinable either way.  The ``metrics`` op returns the full
counter/histogram snapshot (per-op latency percentiles included) plus
a trace-ring summary; the same registry renders the Prometheus text
exposition behind ``repro serve --metrics-port``.

Clustering
----------
The same wire protocol is served unchanged by a multi-process cluster
(``repro serve --workers N``; :mod:`repro.service.cluster`): a router
forwards each session-scoped request to the worker process owning that
session (a stable hash of the session name) and broadcasts fan-out ops
(``schemes``/``stats``/``metrics``/``list_sessions``/``recover_info``/
``sync``/``ping``/``shutdown``) to every worker, merging the answers --
``metrics`` merges the workers' all-integer histogram state *exactly*.
``cluster_info`` reports the topology (a plain server answers
``{"cluster": false}``); ``metrics`` accepts ``raw: true`` to return
full integer histogram state instead of summaries (what the router
asks its workers for).  A request naming *several* sessions owned by
different workers (a ``session`` list) is rejected with a structured
``protocol`` error: cross-worker requests have no single owner.

Replication
-----------
A durable server can ship its WAL stream to read replicas (see
:mod:`repro.service.replication`): a replica long-polls
``repl_subscribe`` (``from_seq`` is the global ship position; the
response either carries the next records or ``reset`` plus a full
snapshot when the position fell off the primary's ring), applies them
into its own durable store, and reports coverage with ``repl_ack``.
Every response from a replica carries a top-level ``replica_lag``
object (``applied`` position, ``epoch``, ``role``) so staleness is
wire-visible on every read.  ``promote`` flips a replica into a
primary under a bumped fencing *epoch*; any server contacted with a
higher epoch than its own fences itself and rejects further ingests,
which is what makes a zombie primary harmless.  ``query`` and
``query_batch`` accept an optional ``as_of`` checkpoint generation
(see ``--keep-generations``) answered from the retained checkpoint of
that version -- time-travel reads.

Insertion events use the exact execution-log JSON schema of
:func:`repro.io.jsonio.insertion_to_json`, so a recorded execution file
can be streamed to the service without transformation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Type

from repro.errors import (
    DerivationError,
    ExecutionError,
    GraphError,
    LabelingError,
    ProtocolError,
    ReproError,
    ServiceError,
    SessionNotFoundError,
    SpecificationError,
    UnsupportedWorkflowError,
)
from repro.io.jsonio import insertion_from_json, insertion_to_json
from repro.io.xmlio import FormatError
from repro.workflow.execution import Insertion

OPS = (
    "create_session",
    "ingest",
    "query",
    "query_batch",
    "snapshot",
    "sync",
    "recover_info",
    "schemes",
    "stats",
    "metrics",
    "close",
    "list_sessions",
    "ping",
    "shutdown",
    "cluster_info",
    "repl_subscribe",
    "repl_ack",
    "promote",
)

# default per-request cap on batch payload items (query_batch pairs,
# ingest events); the server turns anything larger into a structured
# 'protocol' error instead of attempting an unbounded amount of work
MAX_BATCH = 65536


def check_batch_size(count: int, what: str, limit: int = MAX_BATCH) -> None:
    """Reject an oversized batch payload with a :class:`ProtocolError`."""
    if limit and count > limit:
        raise ProtocolError(
            f"{what} batch of {count} items exceeds the per-request "
            f"limit of {limit}; split it into pipelined chunks"
        )

# error code <-> exception class (most specific classes first so that
# code_for_exception resolves subclasses to their own code).
_CODE_TO_ERROR: Dict[str, Type[ReproError]] = {
    "no-session": SessionNotFoundError,
    "protocol": ProtocolError,
    "service": ServiceError,
    "unsupported-workflow": UnsupportedWorkflowError,
    "labeling": LabelingError,
    "execution": ExecutionError,
    "derivation": DerivationError,
    "specification": SpecificationError,
    "graph": GraphError,
    "error": ReproError,
}
_ERROR_TO_CODE = {cls: code for code, cls in _CODE_TO_ERROR.items()}


@dataclass
class Request:
    """One decoded client request."""

    op: str
    params: Dict[str, Any] = field(default_factory=dict)
    id: Optional[Any] = None
    trace_id: Optional[str] = None

    def require(self, name: str) -> Any:
        try:
            return self.params[name]
        except KeyError:
            raise ProtocolError(
                f"op {self.op!r} requires parameter {name!r}"
            ) from None


@dataclass
class Response:
    """One server reply; ``ok`` decides which payload fields are set."""

    ok: bool
    result: Any = None
    error: Optional[str] = None
    code: Optional[str] = None
    id: Optional[Any] = None
    trace_id: Optional[str] = None
    # set on every response from a read replica: {"applied": <global
    # ship position>, "epoch": <fencing epoch>, "role": "replica"}
    replica_lag: Optional[Dict[str, Any]] = None


# ---------------------------------------------------------------------------
# encoding / decoding
# ---------------------------------------------------------------------------


def encode_request(request: Request) -> str:
    """Serialize a request to one newline-terminated JSON line."""
    doc: Dict[str, Any] = {"op": request.op}
    if request.id is not None:
        doc["id"] = request.id
    if request.trace_id is not None:
        doc["trace_id"] = request.trace_id
    doc.update(request.params)
    return json.dumps(doc) + "\n"


def decode_request(line: str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` when bad."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("request must be a JSON object")
    op = doc.pop("op", None)
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    request_id = doc.pop("id", None)
    trace_id = doc.pop("trace_id", None)
    if trace_id is not None and not isinstance(trace_id, str):
        raise ProtocolError("'trace_id' must be a string")
    return Request(op=op, params=doc, id=request_id, trace_id=trace_id)


def encode_response(response: Response) -> str:
    """Serialize a response to one newline-terminated JSON line."""
    doc: Dict[str, Any] = {"ok": response.ok}
    if response.id is not None:
        doc["id"] = response.id
    if response.trace_id is not None:
        doc["trace_id"] = response.trace_id
    if response.replica_lag is not None:
        doc["replica_lag"] = response.replica_lag
    if response.ok:
        doc["result"] = response.result
    else:
        doc["error"] = response.error
        doc["code"] = response.code
    return json.dumps(doc) + "\n"


def decode_response(line: str) -> Response:
    """Parse one response line; raises :class:`ProtocolError` when bad."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"response is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or "ok" not in doc:
        raise ProtocolError("response must be a JSON object with 'ok'")
    return Response(
        ok=bool(doc["ok"]),
        result=doc.get("result"),
        error=doc.get("error"),
        code=doc.get("code"),
        id=doc.get("id"),
        trace_id=doc.get("trace_id"),
        replica_lag=doc.get("replica_lag"),
    )


# ---------------------------------------------------------------------------
# error mapping
# ---------------------------------------------------------------------------


def code_for_exception(exc: BaseException) -> str:
    """The wire code of a library exception ('error' for the base)."""
    for cls in type(exc).__mro__:
        code = _ERROR_TO_CODE.get(cls)
        if code is not None:
            return code
    return "error"


def exception_for_code(code: Optional[str], message: str) -> ReproError:
    """Rebuild the library exception a failed response stands for."""
    cls = _CODE_TO_ERROR.get(code or "", ReproError)
    return cls(message)


def error_response(exc: BaseException, request_id: Any = None) -> Response:
    """The failure response reporting ``exc`` to the client."""
    return Response(
        ok=False,
        error=str(exc),
        code=code_for_exception(exc),
        id=request_id,
    )


def raise_for_response(response: Response) -> Any:
    """Return a response's result, re-raising mapped remote failures."""
    if response.ok:
        return response.result
    raise exception_for_code(response.code, response.error or "remote error")


# ---------------------------------------------------------------------------
# insertion payloads
# ---------------------------------------------------------------------------


def insertions_to_wire(insertions) -> List[Dict[str, Any]]:
    """Serialize insertions for an ``ingest`` request."""
    return [insertion_to_json(ins) for ins in insertions]


def insertions_from_wire(events: Any) -> List[Insertion]:
    """Decode an ``ingest`` payload (a list of insertion events)."""
    if isinstance(events, dict):  # a single bare event is accepted
        events = [events]
    if not isinstance(events, list):
        raise ProtocolError("'insertions' must be an event or event list")
    try:
        return [insertion_from_json(event) for event in events]
    except FormatError as exc:
        raise ProtocolError(f"bad insertion event: {exc}") from None
