"""The service process: protocol dispatch over TCP or stdio.

:class:`ReproService` is the transport-independent core -- it owns a
:class:`SessionManager` and a :class:`QueryEngine` and turns one
decoded :class:`Request` into one :class:`Response`.  Two transports
drive it:

* :class:`ReproServer`, a ``socketserver.ThreadingTCPServer`` speaking
  the JSON-lines protocol, one handler thread per connection (sessions
  are shared across connections; the session and engine locks make the
  shared state safe);
* :func:`serve_stdio`, the same loop over a file pair, for subprocess
  embedding and piping recorded executions through ``repro serve``.

A ``shutdown`` request stops the TCP server gracefully: in-flight
requests finish, then ``serve_forever`` returns.

Observability
-------------
Every request is traced (:mod:`repro.obs.trace`): the service starts a
:class:`~repro.obs.trace.Trace` from the request's ``trace_id`` (or
mints one), activates it on the handler thread so the engine, sessions
and WAL attach their span timings, records the request's latency into
the per-op ``repro_op_latency_seconds`` histogram plus an ok/error
``repro_requests_total`` counter, echoes the id on the response, and
hands the finished trace to a :class:`~repro.obs.trace.Tracer` that
keeps bounded rings of recent and slow traces and emits the structured
slow-query log.  The ``metrics`` op returns the registry snapshot and
the tracer summary; ``repro serve --metrics-port`` serves the same
registry as Prometheus text.
"""

from __future__ import annotations

import logging
import socketserver
import threading
import time
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from repro.errors import ProtocolError, ServiceError
from repro.faults import FAILPOINTS
from repro.obs.logs import log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.names import OP_LATENCY_SECONDS, REQUESTS_TOTAL
from repro.obs.trace import Tracer, activate
from repro.service.checkpoint import checkpoint_session, restore_session
from repro.service.engine import QueryEngine
from repro.service.replication import ReplicaApplier, ReplicationHub
from repro.service.wal import Checkpointer, DurableStore
from repro.service.protocol import (
    MAX_BATCH,
    Request,
    Response,
    check_batch_size,
    decode_request,
    encode_response,
    error_response,
    insertions_from_wire,
)
from repro.service.sessions import SessionManager

DEFAULT_PORT = 7464  # "RL" on a phone keypad, roughly
DEFAULT_SHARDS = 4

# queries slower than this are retained in the slow ring and dumped to
# the structured slow-query log with their full span timeline
DEFAULT_SLOW_THRESHOLD = 0.5

_server_logger = logging.getLogger("repro.service.server")


class ReproService:
    """Dispatches protocol requests against hosted sessions.

    ``shards`` stripes both the session registry and the query cache
    (see :class:`QueryEngine`); ``max_batch`` caps the payload size of
    one ``query_batch``/``ingest`` request -- larger batches get a
    structured ``protocol`` error telling the client to pipeline chunks.

    ``data_dir`` mounts the durability layer (:mod:`repro.service.wal`):
    every session found under it is recovered on construction
    (checkpoint + WAL-tail replay), every subsequent ingest is logged to
    a per-session write-ahead log under the ``fsync`` policy before it
    is acknowledged, and -- with ``checkpoint_interval`` set -- a
    background :class:`Checkpointer` periodically rolls WALs into
    checkpoints.  Call :meth:`close` when done so the WALs flush.

    Replication (:mod:`repro.service.replication`): every durable
    server owns a :class:`ReplicationHub` and can serve
    ``repl_subscribe`` as a primary.  ``replicate_from`` instead starts
    the server as a read replica of that ``(host, port)`` primary --
    client mutations are rejected until a ``promote`` flips the role
    under a bumped fencing epoch.  ``repl_min_acks`` makes ingest
    acknowledgements semi-synchronous: each waits until that many
    replicas cover the batch's ship position, which is the zero-acked-
    loss-under-promotion guarantee.  ``keep_generations`` retains old
    checkpoint generations, the substrate of ``query --as-of``.
    """

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        engine: Optional[QueryEngine] = None,
        cache_size: int = 65536,
        shards: int = DEFAULT_SHARDS,
        max_batch: int = MAX_BATCH,
        data_dir: Optional[str] = None,
        fsync: str = "always",
        checkpoint_interval: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
        keep_generations: int = 1,
        replicate_from: Optional[Tuple[str, int]] = None,
        repl_peers: Sequence[Tuple[str, int]] = (),
        repl_min_acks: int = 0,
        replica_id: Optional[str] = None,
    ) -> None:
        self.manager = manager or SessionManager(shards=shards)
        self.metrics = metrics if metrics is not None else default_registry()
        self.tracer = tracer or Tracer(slow_threshold=slow_threshold)
        self.engine = engine or QueryEngine(
            self.manager, cache_size, shards=shards, metrics=self.metrics
        )
        self.max_batch = max_batch
        self.shutdown_requested = threading.Event()
        self.store: Optional[DurableStore] = None
        self.checkpointer: Optional[Checkpointer] = None
        self.hub: Optional[ReplicationHub] = None
        self.applier: Optional[ReplicaApplier] = None
        self.read_only = False
        self._repl_min_acks = max(0, int(repl_min_acks))
        self._as_of_cache: "OrderedDict[Tuple[str, int], Any]" = (
            OrderedDict()
        )
        self._as_of_lock = threading.Lock()
        if replicate_from is not None and data_dir is None:
            raise ServiceError(
                "--replicate-from needs --data-dir: a replica applies "
                "the shipped WAL into its own durable store"
            )
        if data_dir is not None:
            self.store = DurableStore(
                data_dir, fsync=fsync, keep_generations=keep_generations
            )
            self.store.recover(self.manager)
            if checkpoint_interval is not None:
                self.checkpointer = Checkpointer(
                    self.store, interval=checkpoint_interval
                )
                self.checkpointer.start()
            if replicate_from is None:
                self.hub = ReplicationHub(
                    self.manager, self.store, min_acks=self._repl_min_acks
                )
            else:
                self.read_only = True
                self.applier = ReplicaApplier(
                    self.manager,
                    self.store,
                    primary=replicate_from,
                    peers=repl_peers,
                    replica_id=replica_id,
                    on_close=self.engine.drop_session_entries,
                )
                self.applier.start()
        self._ops: Dict[str, Callable[[Request], Any]] = {
            "create_session": self._op_create_session,
            "ingest": self._op_ingest,
            "query": self._op_query,
            "query_batch": self._op_query_batch,
            "snapshot": self._op_snapshot,
            "sync": self._op_sync,
            "recover_info": self._op_recover_info,
            "schemes": self._op_schemes,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "close": self._op_close,
            "list_sessions": self._op_list_sessions,
            "ping": self._op_ping,
            "shutdown": self._op_shutdown,
            "cluster_info": self._op_cluster_info,
            "repl_subscribe": self._op_repl_subscribe,
            "repl_ack": self._op_repl_ack,
            "promote": self._op_promote,
        }
        # per-op instruments, pre-bound so the hot path never touches
        # the registry's lock; "unknown" absorbs bad op names
        self._op_instruments: Dict[str, tuple] = {}
        for op in (*self._ops, "unknown"):
            self._op_instruments[op] = (
                self.metrics.histogram(OP_LATENCY_SECONDS, op=op),
                self.metrics.counter(
                    REQUESTS_TOTAL, op=op, status="ok"
                ),
                self.metrics.counter(
                    REQUESTS_TOTAL, op=op, status="error"
                ),
            )

    def close(self) -> None:
        """Stop the applier/checkpointer and flush/close every WAL."""
        if self.applier is not None:
            self.applier.stop()
            self.applier = None
        if self.checkpointer is not None:
            self.checkpointer.stop()
            self.checkpointer = None
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Answer one request; any failure becomes a failure response.

        Library errors keep their mapped code; anything else (a bad
        parameter shape the op handler tripped over, an OS error from a
        checkpoint path...) is reported as the generic ``error`` code so
        one poisoned request can never kill the connection or, under
        stdio, the whole server process.

        The request runs under an active trace (the client's
        ``trace_id`` or a fresh one), its latency lands in the per-op
        histogram and ok/error counter either way, and the response
        echoes the trace id so the client can join logs and traces.
        """
        trace = self.tracer.start(request.op, trace_id=request.trace_id)
        trace.session = request.params.get("session")
        instruments = self._op_instruments.get(
            request.op, self._op_instruments["unknown"]
        )
        latency, ok_total, err_total = instruments
        started = time.perf_counter()
        try:
            with activate(trace):
                handler = self._ops.get(request.op)
                if handler is None:
                    raise ProtocolError(f"unknown op {request.op!r}")
                response = Response(
                    ok=True, result=handler(request), id=request.id
                )
            status = "ok"
        except Exception as exc:
            # error_response maps ReproError subclasses to their wire
            # codes and anything else to the generic 'error' code
            response = error_response(exc, request.id)
            status = "error"
            log_event(
                _server_logger, logging.WARNING, "request-error",
                op=request.op, code=response.code, error=response.error,
                trace_id=trace.trace_id,
            )
        finally:
            latency.record(time.perf_counter() - started)
            (ok_total if status == "ok" else err_total).inc()
            self.tracer.finish(trace, status=status)
        response.trace_id = trace.trace_id
        applier = self.applier
        if applier is not None:
            # every response from a replica carries its staleness
            response.replica_lag = applier.lag()
        return response

    def handle_line(self, line: str) -> str:
        """Answer one raw protocol line with one raw response line."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            return encode_response(error_response(exc))
        return encode_response(self.handle(request))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _check_writable(self, op: str) -> None:
        if self.read_only:
            primary = ""
            if self.applier is not None:
                host, port = self.applier.primary
                primary = f"; write to the primary at {host}:{port}"
            raise ServiceError(
                f"op {op!r} rejected: this server is a read "
                f"replica{primary}"
            )

    def _op_create_session(self, request: Request) -> Dict[str, Any]:
        self._check_writable("create_session")
        name = request.require("name")
        checkpoint = request.params.get("checkpoint")
        if checkpoint is not None:
            if not isinstance(checkpoint, str):
                raise ProtocolError("'checkpoint' must be a directory path")
            session = restore_session(self.manager, checkpoint, name=name)
            requested = request.params.get("scheme")
            if requested is not None and requested != session.scheme_name:
                self.manager.close(session.name)
                raise ServiceError(
                    f"checkpoint was written under scheme "
                    f"{session.scheme_name!r}, not {requested!r}"
                )
        else:
            spec = request.params.get("spec")
            if not isinstance(spec, str):
                raise ProtocolError(
                    "create_session needs 'spec' (a builtin name or "
                    "server-side file path) or 'checkpoint'"
                )
            session = self.manager.create(
                name,
                spec,
                scheme=request.params.get("scheme", "drl"),
                skeleton=request.params.get("skeleton", "tcl"),
                mode=request.params.get("mode", "logged"),
            )
        if self.store is not None:
            # durable tracking must be armed before the create is
            # acknowledged; if it cannot be, the session must not exist
            try:
                self.store.register(session)
            except Exception:
                self.manager.close(session.name)
                raise
        if self.hub is not None:
            self.hub.publish_control("create", session)
        return {
            "session": session.name,
            "spec": session.spec.name,
            "scheme": session.scheme_name,
            "vertices": len(session),
            "version": session.version,
        }

    def _op_ingest(self, request: Request) -> Dict[str, Any]:
        self._check_writable("ingest")
        name = request.require("session")
        events = request.require("insertions")
        if isinstance(events, list):
            check_batch_size(len(events), "ingest", self.max_batch)
        insertions = insertions_from_wire(events)
        count, version = self.engine.ingest(name, insertions)
        hub = self.hub
        if hub is not None and count:
            # semi-sync: acknowledge only once enough replicas cover
            # this batch's ship position (no-op with min_acks = 0).
            # The session lock is NOT held here, so replicas keep
            # bootstrapping/acking while we wait.
            hub.wait_covered(hub.seq)
        return {"ingested": count, "version": version}

    def _op_query(self, request: Request) -> Dict[str, Any]:
        source = request.require("source")
        target = request.require("target")
        if not isinstance(source, int) or not isinstance(target, int):
            raise ProtocolError("'source' and 'target' must be vertex ids")
        as_of = request.params.get("as_of")
        if as_of is not None:
            answers = self._answer_as_of(
                request.require("session"), as_of, [(source, target)]
            )
            return {"answer": answers[0], "as_of": as_of}
        answer = self.engine.query(request.require("session"), source, target)
        return {"answer": answer}

    def _op_query_batch(self, request: Request) -> Dict[str, Any]:
        pairs = request.require("pairs")
        if isinstance(pairs, list):
            check_batch_size(len(pairs), "query_batch", self.max_batch)
        if not isinstance(pairs, list) or any(
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(isinstance(vid, int) for vid in pair)
            for pair in pairs
        ):
            raise ProtocolError(
                "'pairs' must be a list of [source, target] vertex ids"
            )
        as_of = request.params.get("as_of")
        if as_of is not None:
            answers = self._answer_as_of(
                request.require("session"), as_of, pairs
            )
            return {"answers": answers, "as_of": as_of}
        answers = self.engine.query_many(request.require("session"), pairs)
        return {"answers": answers}

    # ------------------------------------------------------------------
    # time travel: answer from a retained checkpoint generation
    # ------------------------------------------------------------------
    def _answer_as_of(
        self, name: str, as_of: Any, pairs: List[Any]
    ) -> List[bool]:
        if not isinstance(as_of, int) or isinstance(as_of, bool):
            raise ProtocolError(
                "'as_of' must be a checkpoint generation version (int)"
            )
        session = self._historical_session(name, as_of)
        return [session.query(source, target) for source, target in pairs]

    def _historical_session(self, name: str, version: int):
        """A read-only session restored from a retained generation.

        Restores verify labels against a deterministic replay, so they
        are not free; a tiny LRU keyed ``(name, version)`` makes
        repeated time-travel queries against the same generation cheap.
        """
        if self.store is None:
            raise ServiceError(
                "time-travel queries need a durable server "
                "(started without --data-dir)"
            )
        key = (name, version)
        with self._as_of_lock:
            cached = self._as_of_cache.get(key)
            if cached is not None:
                self._as_of_cache.move_to_end(key)
                return cached
        directory = self.store.generation_dir(name, version)
        session = self._restore_historical(directory)
        with self._as_of_lock:
            self._as_of_cache[key] = session
            while len(self._as_of_cache) > 4:
                self._as_of_cache.popitem(last=False)
        return session

    @staticmethod
    def _restore_historical(directory):
        # a throwaway manager: the historical instance must never
        # collide with (or be mutated through) the live session registry
        return restore_session(SessionManager(shards=1), directory)

    def _op_snapshot(self, request: Request) -> Dict[str, Any]:
        session = self.manager.get(request.require("session"))
        target = request.params.get("path")
        if target is None:
            # on a durable server a pathless snapshot rolls the WAL
            # into the session's own checkpoint generation
            if self.store is None:
                raise ProtocolError(
                    "op 'snapshot' requires parameter 'path' "
                    "(the server has no --data-dir)"
                )
            rolled = self.store.checkpoint(session)
            return {
                "path": None,
                "version": rolled["checkpoint_version"],
                "vertices": rolled["checkpoint_vertices"],
            }
        path = checkpoint_session(session, target)
        return {
            "path": str(path),
            "version": session.version,
            "vertices": len(session),
        }

    def _op_sync(self, request: Request) -> Dict[str, Any]:
        if self.store is None:
            raise ServiceError(
                "server is not durable (started without --data-dir)"
            )
        name = request.params.get("session")
        if name is not None and not isinstance(name, str):
            raise ProtocolError("'session' must be a session name")
        if name is not None:
            self.manager.get(name)  # map unknown names to no-session
        synced = self.store.sync(name)
        return {"synced": synced, "fsync": self.store.fsync}

    def _op_recover_info(self, request: Request) -> Dict[str, Any]:
        if self.store is None:
            return {"durable": False}
        info = self.store.info()
        if self.checkpointer is not None:
            info["checkpoint_interval"] = self.checkpointer.interval
        info["replication"] = self._replication_info()
        return info

    def _replication_info(self) -> Dict[str, Any]:
        """The ``replication`` block of ``recover_info``."""
        applier = self.applier
        if applier is not None:
            block = applier.lag()
            host, port = applier.primary
            block["primary"] = f"{host}:{port}"
            block["replica_id"] = applier.replica_id
            if applier.errors:
                block["errors"] = list(applier.errors)
            block["fenced"] = self.store.fenced if self.store else False
            return block
        hub = self.hub
        if hub is None:
            return {"role": "none"}
        block = hub.lag_table()
        block["role"] = "primary"
        block["epoch"] = hub.epoch
        block["fenced"] = self.store.fenced if self.store else False
        return block

    def _op_schemes(self, request: Request) -> Dict[str, Any]:
        from repro.schemes import registry as scheme_registry

        return {"schemes": scheme_registry.describe()}

    def _op_stats(self, request: Request) -> Dict[str, Any]:
        return self.engine.stats().to_dict()

    def _op_metrics(self, request: Request) -> Dict[str, Any]:
        # raw=true ships the full integer histogram state instead of
        # summaries -- what a cluster router asks its workers for so
        # per-worker series merge exactly before summarizing
        snapshot = self.metrics.snapshot(
            raw=bool(request.params.get("raw"))
        )
        snapshot["traces"] = self.tracer.summary()
        return snapshot

    def _op_close(self, request: Request) -> Dict[str, Any]:
        self._check_writable("close")
        name = request.require("session")
        session = self.manager.close(name)
        evicted = self.engine.drop_session_entries(session)
        if self.store is not None:
            # final checkpoint + CLOSED marker: the directory stays as
            # the run's provenance record but recovery skips it
            self.store.finalize(session)
        if self.hub is not None:
            self.hub.publish_control("close", session)
        return {
            "closed": session.name,
            "vertices": len(session),
            "cache_evicted": evicted,
        }

    def _op_list_sessions(self, request: Request) -> Dict[str, Any]:
        return {"sessions": self.manager.names()}

    def _op_ping(self, request: Request) -> Dict[str, Any]:
        return {"pong": True}

    def _op_shutdown(self, request: Request) -> Dict[str, Any]:
        self.shutdown_requested.set()
        return {"stopping": True}

    def _op_cluster_info(self, request: Request) -> Dict[str, Any]:
        # a plain in-process server is not a cluster; the router
        # answers this op itself with the real topology
        return {"cluster": False, "workers": 0}

    # ------------------------------------------------------------------
    # replication ops
    # ------------------------------------------------------------------
    def _require_hub(self) -> ReplicationHub:
        if self.store is None:
            raise ServiceError(
                "replication needs a durable server "
                "(started without --data-dir)"
            )
        if self.hub is None:
            primary = ""
            if self.applier is not None:
                host, port = self.applier.primary
                primary = f" (a replica of {host}:{port})"
            raise ServiceError(
                f"this server is not a primary{primary}; "
                "subscribe to the primary instead"
            )
        return self.hub

    def _op_repl_subscribe(self, request: Request) -> Dict[str, Any]:
        hub = self._require_hub()
        from_seq = request.require("from_seq")
        if not isinstance(from_seq, int) or isinstance(from_seq, bool):
            raise ProtocolError("'from_seq' must be an integer position")
        return hub.subscribe(
            from_seq=from_seq,
            epoch=int(request.params.get("epoch", 0)),
            replica_id=request.params.get("replica_id"),
            wait=float(request.params.get("wait", 1.0)),
        )

    def _op_repl_ack(self, request: Request) -> Dict[str, Any]:
        hub = self._require_hub()
        replica_id = request.require("replica_id")
        if not isinstance(replica_id, str):
            raise ProtocolError("'replica_id' must be a string")
        seq = request.require("seq")
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise ProtocolError("'seq' must be an integer position")
        return hub.ack(
            replica_id, seq, epoch=int(request.params.get("epoch", 0))
        )

    def _op_promote(self, request: Request) -> Dict[str, Any]:
        return self._promote(request.params.get("epoch"))

    def _promote(self, epoch: Optional[Any]) -> Dict[str, Any]:
        """Flip this replica into the primary under a bumped epoch."""
        if self.store is None:
            raise ServiceError(
                "promote needs a durable server "
                "(started without --data-dir)"
            )
        if self.applier is None:
            raise ServiceError(
                f"already a primary (epoch {self.store.epoch})"
            )
        if epoch is None:
            target_epoch = self.store.epoch + 1
        else:
            if not isinstance(epoch, int) or isinstance(epoch, bool):
                raise ProtocolError("'epoch' must be an integer")
            target_epoch = epoch
        if target_epoch <= self.store.epoch:
            raise ServiceError(
                f"promotion epoch {target_epoch} must exceed the "
                f"current epoch {self.store.epoch}"
            )
        FAILPOINTS.hit("repl.pre_promote")
        applier = self.applier
        applier.stop()
        applied = applier.position
        # the epoch bump is durable BEFORE the first write is accepted:
        # a crash right here leaves a fenced-off replica that can be
        # promoted again, never two primaries on one epoch
        self.store.set_epoch(target_epoch)
        self.applier = None
        self.read_only = False
        self.hub = ReplicationHub(
            self.manager, self.store, min_acks=self._repl_min_acks
        )
        log_event(
            _server_logger, logging.INFO, "promoted",
            epoch=target_epoch, applied=applied,
            sessions=len(self.manager),
        )
        return {
            "promoted": True,
            "epoch": target_epoch,
            "applied": applied,
            "sessions": self.manager.names(),
        }


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    def handle(self) -> None:
        service: ReproService = self.server.service  # type: ignore[attr-defined]
        try:
            peer = "%s:%s" % self.client_address[:2]
        except Exception:  # pragma: no cover - exotic address families
            peer = str(self.client_address)
        log_event(
            _server_logger, logging.INFO, "connection-open", peer=peer
        )
        requests = 0
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            requests += 1
            self.wfile.write(service.handle_line(line).encode("utf-8"))
            self.wfile.flush()
            if service.shutdown_requested.is_set():
                self.server.trigger_shutdown()  # type: ignore[attr-defined]
                break
        log_event(
            _server_logger, logging.INFO, "connection-close",
            peer=peer, requests=requests,
        )


class ReproServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines TCP server around a :class:`ReproService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: Optional[ReproService] = None):
        self.service = service or ReproService()
        super().__init__(address, _LineHandler)

    def trigger_shutdown(self) -> None:
        """Stop ``serve_forever`` without blocking the handler thread."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve_stdio(
    service: ReproService, infile: TextIO, outfile: TextIO
) -> int:
    """Drive the protocol over a file pair until EOF or ``shutdown``."""
    for line in infile:
        if not line.strip():
            continue
        outfile.write(service.handle_line(line))
        outfile.flush()
        if service.shutdown_requested.is_set():
            break
    return 0
