"""The service process: protocol dispatch over TCP or stdio.

:class:`ReproService` is the transport-independent core -- it owns a
:class:`SessionManager` and a :class:`QueryEngine` and turns one
decoded :class:`Request` into one :class:`Response`.  Two transports
drive it:

* :class:`ReproServer`, a ``socketserver.ThreadingTCPServer`` speaking
  the JSON-lines protocol, one handler thread per connection (sessions
  are shared across connections; the session and engine locks make the
  shared state safe);
* :func:`serve_stdio`, the same loop over a file pair, for subprocess
  embedding and piping recorded executions through ``repro serve``.

A ``shutdown`` request stops the TCP server gracefully: in-flight
requests finish, then ``serve_forever`` returns.

Observability
-------------
Every request is traced (:mod:`repro.obs.trace`): the service starts a
:class:`~repro.obs.trace.Trace` from the request's ``trace_id`` (or
mints one), activates it on the handler thread so the engine, sessions
and WAL attach their span timings, records the request's latency into
the per-op ``repro_op_latency_seconds`` histogram plus an ok/error
``repro_requests_total`` counter, echoes the id on the response, and
hands the finished trace to a :class:`~repro.obs.trace.Tracer` that
keeps bounded rings of recent and slow traces and emits the structured
slow-query log.  The ``metrics`` op returns the registry snapshot and
the tracer summary; ``repro serve --metrics-port`` serves the same
registry as Prometheus text.
"""

from __future__ import annotations

import logging
import socketserver
import threading
import time
from typing import Any, Callable, Dict, Optional, TextIO

from repro.errors import ProtocolError, ServiceError
from repro.obs.logs import log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.names import OP_LATENCY_SECONDS, REQUESTS_TOTAL
from repro.obs.trace import Tracer, activate
from repro.service.checkpoint import checkpoint_session, restore_session
from repro.service.engine import QueryEngine
from repro.service.wal import Checkpointer, DurableStore
from repro.service.protocol import (
    MAX_BATCH,
    Request,
    Response,
    check_batch_size,
    decode_request,
    encode_response,
    error_response,
    insertions_from_wire,
)
from repro.service.sessions import SessionManager

DEFAULT_PORT = 7464  # "RL" on a phone keypad, roughly
DEFAULT_SHARDS = 4

# queries slower than this are retained in the slow ring and dumped to
# the structured slow-query log with their full span timeline
DEFAULT_SLOW_THRESHOLD = 0.5

_server_logger = logging.getLogger("repro.service.server")


class ReproService:
    """Dispatches protocol requests against hosted sessions.

    ``shards`` stripes both the session registry and the query cache
    (see :class:`QueryEngine`); ``max_batch`` caps the payload size of
    one ``query_batch``/``ingest`` request -- larger batches get a
    structured ``protocol`` error telling the client to pipeline chunks.

    ``data_dir`` mounts the durability layer (:mod:`repro.service.wal`):
    every session found under it is recovered on construction
    (checkpoint + WAL-tail replay), every subsequent ingest is logged to
    a per-session write-ahead log under the ``fsync`` policy before it
    is acknowledged, and -- with ``checkpoint_interval`` set -- a
    background :class:`Checkpointer` periodically rolls WALs into
    checkpoints.  Call :meth:`close` when done so the WALs flush.
    """

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        engine: Optional[QueryEngine] = None,
        cache_size: int = 65536,
        shards: int = DEFAULT_SHARDS,
        max_batch: int = MAX_BATCH,
        data_dir: Optional[str] = None,
        fsync: str = "always",
        checkpoint_interval: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
    ) -> None:
        self.manager = manager or SessionManager(shards=shards)
        self.metrics = metrics if metrics is not None else default_registry()
        self.tracer = tracer or Tracer(slow_threshold=slow_threshold)
        self.engine = engine or QueryEngine(
            self.manager, cache_size, shards=shards, metrics=self.metrics
        )
        self.max_batch = max_batch
        self.shutdown_requested = threading.Event()
        self.store: Optional[DurableStore] = None
        self.checkpointer: Optional[Checkpointer] = None
        if data_dir is not None:
            self.store = DurableStore(data_dir, fsync=fsync)
            self.store.recover(self.manager)
            if checkpoint_interval is not None:
                self.checkpointer = Checkpointer(
                    self.store, interval=checkpoint_interval
                )
                self.checkpointer.start()
        self._ops: Dict[str, Callable[[Request], Any]] = {
            "create_session": self._op_create_session,
            "ingest": self._op_ingest,
            "query": self._op_query,
            "query_batch": self._op_query_batch,
            "snapshot": self._op_snapshot,
            "sync": self._op_sync,
            "recover_info": self._op_recover_info,
            "schemes": self._op_schemes,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "close": self._op_close,
            "list_sessions": self._op_list_sessions,
            "ping": self._op_ping,
            "shutdown": self._op_shutdown,
            "cluster_info": self._op_cluster_info,
        }
        # per-op instruments, pre-bound so the hot path never touches
        # the registry's lock; "unknown" absorbs bad op names
        self._op_instruments: Dict[str, tuple] = {}
        for op in (*self._ops, "unknown"):
            self._op_instruments[op] = (
                self.metrics.histogram(OP_LATENCY_SECONDS, op=op),
                self.metrics.counter(
                    REQUESTS_TOTAL, op=op, status="ok"
                ),
                self.metrics.counter(
                    REQUESTS_TOTAL, op=op, status="error"
                ),
            )

    def close(self) -> None:
        """Stop the checkpointer and flush/close every WAL."""
        if self.checkpointer is not None:
            self.checkpointer.stop()
            self.checkpointer = None
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Answer one request; any failure becomes a failure response.

        Library errors keep their mapped code; anything else (a bad
        parameter shape the op handler tripped over, an OS error from a
        checkpoint path...) is reported as the generic ``error`` code so
        one poisoned request can never kill the connection or, under
        stdio, the whole server process.

        The request runs under an active trace (the client's
        ``trace_id`` or a fresh one), its latency lands in the per-op
        histogram and ok/error counter either way, and the response
        echoes the trace id so the client can join logs and traces.
        """
        trace = self.tracer.start(request.op, trace_id=request.trace_id)
        trace.session = request.params.get("session")
        instruments = self._op_instruments.get(
            request.op, self._op_instruments["unknown"]
        )
        latency, ok_total, err_total = instruments
        started = time.perf_counter()
        try:
            with activate(trace):
                handler = self._ops.get(request.op)
                if handler is None:
                    raise ProtocolError(f"unknown op {request.op!r}")
                response = Response(
                    ok=True, result=handler(request), id=request.id
                )
            status = "ok"
        except Exception as exc:
            # error_response maps ReproError subclasses to their wire
            # codes and anything else to the generic 'error' code
            response = error_response(exc, request.id)
            status = "error"
            log_event(
                _server_logger, logging.WARNING, "request-error",
                op=request.op, code=response.code, error=response.error,
                trace_id=trace.trace_id,
            )
        finally:
            latency.record(time.perf_counter() - started)
            (ok_total if status == "ok" else err_total).inc()
            self.tracer.finish(trace, status=status)
        response.trace_id = trace.trace_id
        return response

    def handle_line(self, line: str) -> str:
        """Answer one raw protocol line with one raw response line."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            return encode_response(error_response(exc))
        return encode_response(self.handle(request))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_create_session(self, request: Request) -> Dict[str, Any]:
        name = request.require("name")
        checkpoint = request.params.get("checkpoint")
        if checkpoint is not None:
            if not isinstance(checkpoint, str):
                raise ProtocolError("'checkpoint' must be a directory path")
            session = restore_session(self.manager, checkpoint, name=name)
            requested = request.params.get("scheme")
            if requested is not None and requested != session.scheme_name:
                self.manager.close(session.name)
                raise ServiceError(
                    f"checkpoint was written under scheme "
                    f"{session.scheme_name!r}, not {requested!r}"
                )
        else:
            spec = request.params.get("spec")
            if not isinstance(spec, str):
                raise ProtocolError(
                    "create_session needs 'spec' (a builtin name or "
                    "server-side file path) or 'checkpoint'"
                )
            session = self.manager.create(
                name,
                spec,
                scheme=request.params.get("scheme", "drl"),
                skeleton=request.params.get("skeleton", "tcl"),
                mode=request.params.get("mode", "logged"),
            )
        if self.store is not None:
            # durable tracking must be armed before the create is
            # acknowledged; if it cannot be, the session must not exist
            try:
                self.store.register(session)
            except Exception:
                self.manager.close(session.name)
                raise
        return {
            "session": session.name,
            "spec": session.spec.name,
            "scheme": session.scheme_name,
            "vertices": len(session),
            "version": session.version,
        }

    def _op_ingest(self, request: Request) -> Dict[str, Any]:
        name = request.require("session")
        events = request.require("insertions")
        if isinstance(events, list):
            check_batch_size(len(events), "ingest", self.max_batch)
        insertions = insertions_from_wire(events)
        count, version = self.engine.ingest(name, insertions)
        return {"ingested": count, "version": version}

    def _op_query(self, request: Request) -> Dict[str, Any]:
        source = request.require("source")
        target = request.require("target")
        if not isinstance(source, int) or not isinstance(target, int):
            raise ProtocolError("'source' and 'target' must be vertex ids")
        answer = self.engine.query(request.require("session"), source, target)
        return {"answer": answer}

    def _op_query_batch(self, request: Request) -> Dict[str, Any]:
        pairs = request.require("pairs")
        if isinstance(pairs, list):
            check_batch_size(len(pairs), "query_batch", self.max_batch)
        if not isinstance(pairs, list) or any(
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(isinstance(vid, int) for vid in pair)
            for pair in pairs
        ):
            raise ProtocolError(
                "'pairs' must be a list of [source, target] vertex ids"
            )
        answers = self.engine.query_many(request.require("session"), pairs)
        return {"answers": answers}

    def _op_snapshot(self, request: Request) -> Dict[str, Any]:
        session = self.manager.get(request.require("session"))
        target = request.params.get("path")
        if target is None:
            # on a durable server a pathless snapshot rolls the WAL
            # into the session's own checkpoint generation
            if self.store is None:
                raise ProtocolError(
                    "op 'snapshot' requires parameter 'path' "
                    "(the server has no --data-dir)"
                )
            rolled = self.store.checkpoint(session)
            return {
                "path": None,
                "version": rolled["checkpoint_version"],
                "vertices": rolled["checkpoint_vertices"],
            }
        path = checkpoint_session(session, target)
        return {
            "path": str(path),
            "version": session.version,
            "vertices": len(session),
        }

    def _op_sync(self, request: Request) -> Dict[str, Any]:
        if self.store is None:
            raise ServiceError(
                "server is not durable (started without --data-dir)"
            )
        name = request.params.get("session")
        if name is not None and not isinstance(name, str):
            raise ProtocolError("'session' must be a session name")
        if name is not None:
            self.manager.get(name)  # map unknown names to no-session
        synced = self.store.sync(name)
        return {"synced": synced, "fsync": self.store.fsync}

    def _op_recover_info(self, request: Request) -> Dict[str, Any]:
        if self.store is None:
            return {"durable": False}
        info = self.store.info()
        if self.checkpointer is not None:
            info["checkpoint_interval"] = self.checkpointer.interval
        return info

    def _op_schemes(self, request: Request) -> Dict[str, Any]:
        from repro.schemes import registry as scheme_registry

        return {"schemes": scheme_registry.describe()}

    def _op_stats(self, request: Request) -> Dict[str, Any]:
        return self.engine.stats().to_dict()

    def _op_metrics(self, request: Request) -> Dict[str, Any]:
        # raw=true ships the full integer histogram state instead of
        # summaries -- what a cluster router asks its workers for so
        # per-worker series merge exactly before summarizing
        snapshot = self.metrics.snapshot(
            raw=bool(request.params.get("raw"))
        )
        snapshot["traces"] = self.tracer.summary()
        return snapshot

    def _op_close(self, request: Request) -> Dict[str, Any]:
        name = request.require("session")
        session = self.manager.close(name)
        evicted = self.engine.drop_session_entries(session)
        if self.store is not None:
            # final checkpoint + CLOSED marker: the directory stays as
            # the run's provenance record but recovery skips it
            self.store.finalize(session)
        return {
            "closed": session.name,
            "vertices": len(session),
            "cache_evicted": evicted,
        }

    def _op_list_sessions(self, request: Request) -> Dict[str, Any]:
        return {"sessions": self.manager.names()}

    def _op_ping(self, request: Request) -> Dict[str, Any]:
        return {"pong": True}

    def _op_shutdown(self, request: Request) -> Dict[str, Any]:
        self.shutdown_requested.set()
        return {"stopping": True}

    def _op_cluster_info(self, request: Request) -> Dict[str, Any]:
        # a plain in-process server is not a cluster; the router
        # answers this op itself with the real topology
        return {"cluster": False, "workers": 0}


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    def handle(self) -> None:
        service: ReproService = self.server.service  # type: ignore[attr-defined]
        try:
            peer = "%s:%s" % self.client_address[:2]
        except Exception:  # pragma: no cover - exotic address families
            peer = str(self.client_address)
        log_event(
            _server_logger, logging.INFO, "connection-open", peer=peer
        )
        requests = 0
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            requests += 1
            self.wfile.write(service.handle_line(line).encode("utf-8"))
            self.wfile.flush()
            if service.shutdown_requested.is_set():
                self.server.trigger_shutdown()  # type: ignore[attr-defined]
                break
        log_event(
            _server_logger, logging.INFO, "connection-close",
            peer=peer, requests=requests,
        )


class ReproServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines TCP server around a :class:`ReproService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: Optional[ReproService] = None):
        self.service = service or ReproService()
        super().__init__(address, _LineHandler)

    def trigger_shutdown(self) -> None:
        """Stop ``serve_forever`` without blocking the handler thread."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve_stdio(
    service: ReproService, infile: TextIO, outfile: TextIO
) -> int:
    """Drive the protocol over a file pair until EOF or ``shutdown``."""
    for line in infile:
        if not line.strip():
            continue
        outfile.write(service.handle_line(line))
        outfile.flush()
        if service.shutdown_requested.is_set():
            break
    return 0
