"""WAL shipping: read replicas, epoch fencing, replica promotion.

The durability layer already persists every acknowledged ingest as a
WAL record (:mod:`repro.service.wal`); this module ships that stream
to N read replicas over the ordinary JSON-lines protocol and manages
the role flip when the primary dies.

Topology
--------
One **primary** (a durable server) owns a :class:`ReplicationHub`: a
bounded in-memory ring of recently appended WAL records, each stamped
with a monotone global *ship position* (positions never reset, unlike
per-session WAL seqs which re-sequence at every checkpoint roll).  The
hub is fed by :attr:`DurableStore.on_append` -- records enter the ring
only after their WAL append succeeded, still under the session lock,
so the shipped stream is always a prefix of the durable log.

Each **replica** is itself a durable server (its own data dir, WAL and
checkpoints) started read-only with ``--replicate-from``.  Its
:class:`ReplicaApplier` thread long-polls ``repl_subscribe`` on the
primary, applies the returned records through the ordinary session
ingest path (so the replica's own WAL and checkpoints stay warm), and
reports coverage with ``repl_ack``.  A replica whose position fell off
the primary's ring (or that never bootstrapped) receives ``reset``
plus a full snapshot instead and rebuilds from it.  Applies are
idempotent: a record whose ``start`` precedes the local insertion log
length is skipped prefix-wise, so overlap after a snapshot or a retry
can never double-apply an event.

Zero acked loss
---------------
With ``--repl-min-acks N`` the primary acknowledges an ingest only
once >= N replicas have acked a ship position covering it
(:meth:`ReplicationHub.wait_covered`).  Coverage is prefix-based, so
at promotion time the most-caught-up replica holds *every* write the
primary ever acknowledged -- the invariant the ``kill-primary`` chaos
scenario asserts mechanically.

Epoch fencing
-------------
Every data dir persists a fencing *epoch* (``EPOCH``; stamped into WAL
headers).  ``promote`` bumps the epoch durably before the replica
starts acknowledging writes as the new primary.  Any server contacted
(``repl_subscribe`` / ``repl_ack``) with a higher epoch than its own
**fences itself**: the store rejects every subsequent ingest, so a
zombie primary that lost a promotion race can never acknowledge a
write the new timeline does not contain.
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, ServiceError, SessionNotFoundError
from repro.faults import FAILPOINTS
from repro.io.jsonio import (
    insertion_from_json,
    insertion_to_json,
    specification_from_json,
    specification_to_json,
)
from repro.obs.logs import log_event
from repro.obs.metrics import default_registry
from repro.obs.names import (
    REPL_APPLY_SECONDS,
    REPL_RECORDS_APPLIED_TOTAL,
    REPL_RECORDS_SHIPPED_TOTAL,
)
from repro.service.sessions import Session, SessionManager
from repro.service.wal import DurableStore

DEFAULT_RING_CAPACITY = 4096
DEFAULT_ACK_TIMEOUT = 10.0
DEFAULT_POLL_WAIT = 1.0
DEFAULT_RETRY_INTERVAL = 0.25

_logger = logging.getLogger("repro.service.replication")

_h_apply = default_registry().histogram(REPL_APPLY_SECONDS)
_c_shipped = default_registry().counter(REPL_RECORDS_SHIPPED_TOTAL)
_c_applied = default_registry().counter(REPL_RECORDS_APPLIED_TOTAL)


class _ResetNeeded(ReproError):
    """Replica-internal: the incremental stream cannot apply; resync."""


# ---------------------------------------------------------------------------
# the primary's hub
# ---------------------------------------------------------------------------


class ReplicationHub:
    """The primary's ship ring: publish, long-poll, coverage acks.

    One lock (the condition's) guards the ring, the ship position and
    the per-replica ack table.  ``publish`` runs under the session lock
    (it is called from the store's append hook) and does O(1) work;
    snapshot assembly for a reset happens *outside* the hub lock so the
    hub lock is never held while a session lock is taken -- the reverse
    order of ``publish``, which would otherwise be a lock cycle.
    """

    def __init__(
        self,
        manager: SessionManager,
        store: DurableStore,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        min_acks: int = 0,
        ack_timeout: float = DEFAULT_ACK_TIMEOUT,
    ) -> None:
        self.manager = manager
        self.store = store
        self.min_acks = max(0, int(min_acks))
        self.ack_timeout = ack_timeout
        self._cond = threading.Condition()
        self._ring: deque = deque(maxlen=max(16, ring_capacity))
        self._seq = 0       # next ship position to assign
        self._min_seq = 0   # position of the oldest record still ringed
        self._acks: Dict[str, int] = {}
        store.on_append = self.publish

    @property
    def epoch(self) -> int:
        return self.store.epoch

    @property
    def seq(self) -> int:
        with self._cond:
            return self._seq

    # ------------------------------------------------------------------
    # publishing (called under the session lock; O(1), never blocks)
    # ------------------------------------------------------------------
    def publish(
        self,
        session: Session,
        start: int,
        version: int,
        events: List[Dict[str, Any]],
    ) -> None:
        """Ring one durably appended ingest batch for shipping."""
        with self._cond:
            record = {
                "pos": self._seq,
                "kind": "ingest",
                "session": session.name,
                "start": start,
                "version": version,
                "events": events,
            }
            self._append_locked(record)

    def publish_control(self, kind: str, session: Session) -> None:
        """Ring a session lifecycle record (``create`` / ``close``)."""
        doc: Dict[str, Any] = {
            "kind": kind,
            "session": session.name,
        }
        if kind == "create":
            doc["spec"] = specification_to_json(session.spec)
            doc["scheme"] = session.scheme_name
            doc["skeleton"] = session.skeleton
            doc["mode"] = session.mode
        with self._cond:
            doc["pos"] = self._seq
            self._append_locked(doc)

    def _append_locked(self, record: Dict[str, Any]) -> None:
        self._ring.append(record)  # a full deque drops the oldest
        self._seq = record["pos"] + 1
        self._min_seq = self._ring[0]["pos"]
        _c_shipped.inc()
        self._cond.notify_all()

    # ------------------------------------------------------------------
    # the wire surface (repl_subscribe / repl_ack)
    # ------------------------------------------------------------------
    def subscribe(
        self,
        from_seq: int,
        epoch: int = 0,
        replica_id: Optional[str] = None,
        wait: float = DEFAULT_POLL_WAIT,
    ) -> Dict[str, Any]:
        """One long-poll turn: records past ``from_seq``, or a reset.

        A negative ``from_seq`` always requests a reset (the replica
        has no position yet, or detected it cannot apply the stream).
        A subscriber proving a *higher* epoch fences this node (see the
        module docstring); a subscriber on a lower epoch is told the
        current one in the response and adopts it.
        """
        if epoch > self.store.epoch:
            self.store.fence()
            raise ServiceError(
                f"fenced: subscriber proved epoch {epoch} > local "
                f"{self.store.epoch}; this node is no longer primary"
            )
        wait = min(max(0.0, float(wait)), 30.0)
        with self._cond:
            if from_seq < 0 or from_seq < self._min_seq:
                reset_to = self._seq
            else:
                deadline = time.monotonic() + wait
                while self._seq <= from_seq:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                records = [
                    dict(record)
                    for record in self._ring
                    if record["pos"] >= from_seq
                ]
                return {
                    "records": records,
                    "seq": self._seq,
                    "epoch": self.store.epoch,
                }
        # reset path: assemble the snapshot WITHOUT the hub lock (the
        # session locks it takes are the ones publish() holds *before*
        # taking the hub lock).  Records published meanwhile may overlap
        # the snapshot; prefix-idempotent apply absorbs the overlap.
        return {
            "reset": True,
            "seq": reset_to,
            "epoch": self.store.epoch,
            "snapshot": self._snapshot_all(),
        }

    def _snapshot_all(self) -> List[Dict[str, Any]]:
        snapshots: List[Dict[str, Any]] = []
        for name in self.manager.names():
            try:
                session = self.manager.get(name)
            except SessionNotFoundError:
                continue
            version, _, log = session.snapshot_state()
            snapshots.append(
                {
                    "session": name,
                    "spec": specification_to_json(session.spec),
                    "scheme": session.scheme_name,
                    "skeleton": session.skeleton,
                    "mode": session.mode,
                    "version": version,
                    "events": [insertion_to_json(event) for event in log],
                }
            )
        return snapshots

    def ack(
        self, replica_id: str, seq: int, epoch: int = 0
    ) -> Dict[str, Any]:
        """Record a replica's covered ship position."""
        if epoch > self.store.epoch:
            self.store.fence()
            raise ServiceError(
                f"fenced: replica {replica_id!r} proved epoch {epoch} > "
                f"local {self.store.epoch}"
            )
        with self._cond:
            previous = self._acks.get(replica_id, 0)
            self._acks[replica_id] = max(previous, int(seq))
            self._cond.notify_all()
            return {"acked": self._acks[replica_id], "seq": self._seq}

    def wait_covered(
        self, seq: int, timeout: Optional[float] = None
    ) -> None:
        """Block until >= ``min_acks`` replicas cover position ``seq``.

        Raises :class:`ServiceError` on timeout -- the ingest that
        called this then fails instead of acknowledging a write no
        replica holds, which is what keeps promotion lossless.
        """
        if self.min_acks <= 0:
            return
        if timeout is None:
            timeout = self.ack_timeout
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                covered = sum(
                    1 for acked in self._acks.values() if acked >= seq
                )
                if covered >= self.min_acks:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"replication timeout: only {covered} of the "
                        f"required {self.min_acks} replicas acked "
                        f"position {seq} within {timeout:.1f}s; the "
                        "write is durable locally but NOT acknowledged"
                    )
                self._cond.wait(remaining)

    def lag_table(self) -> Dict[str, Any]:
        """Per-replica coverage for ``recover_info``."""
        with self._cond:
            seq = self._seq
            return {
                "seq": seq,
                "min_acks": self.min_acks,
                "replicas": {
                    replica: {"acked": acked, "behind": seq - acked}
                    for replica, acked in sorted(self._acks.items())
                },
            }


# ---------------------------------------------------------------------------
# the replica's applier
# ---------------------------------------------------------------------------


class ReplicaApplier(threading.Thread):
    """Long-polls the primary and applies shipped records locally.

    Applies go through the ordinary session ingest path, so the
    replica's own WAL/checkpoints track what it has applied and a
    replica restart recovers from local state before resubscribing.
    On connection loss (or on being told the primary is fenced) the
    applier probes ``peers`` for the live primary -- the node whose
    ``recover_info`` shows ``role: primary`` under the highest epoch --
    and resubscribes there.
    """

    def __init__(
        self,
        manager: SessionManager,
        store: DurableStore,
        primary: Tuple[str, int],
        peers: Sequence[Tuple[str, int]] = (),
        replica_id: Optional[str] = None,
        poll_wait: float = DEFAULT_POLL_WAIT,
        retry_interval: float = DEFAULT_RETRY_INTERVAL,
        on_close: Optional[Callable[[Session], None]] = None,
    ) -> None:
        super().__init__(name="repro-replica-applier", daemon=True)
        self.manager = manager
        self.store = store
        self.primary = tuple(primary)
        self.peers = [tuple(peer) for peer in peers]
        if self.primary not in self.peers:
            self.peers.insert(0, self.primary)
        self.replica_id = replica_id or f"replica-{uuid.uuid4().hex[:8]}"
        self.poll_wait = poll_wait
        self.retry_interval = retry_interval
        self.on_close = on_close
        self._halt = threading.Event()
        self._lock = threading.Lock()
        # next ship position to request; -1 = no position yet, which
        # forces an initial snapshot (local recovered state, if any, is
        # absorbed by the prefix-idempotent snapshot apply)
        self._position = -1
        self.errors: List[str] = []

    # ------------------------------------------------------------------
    @property
    def position(self) -> int:
        with self._lock:
            return self._position

    def lag(self) -> Dict[str, Any]:
        """The wire-visible ``replica_lag`` payload."""
        with self._lock:
            return {
                "applied": self._position,
                "epoch": self.store.epoch,
                "role": "replica",
            }

    def stop(self, timeout: float = 10.0) -> None:
        self._halt.set()
        if self.is_alive():
            self.join(timeout=timeout)

    # ------------------------------------------------------------------
    # the subscribe/apply/ack loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        from repro.service.client import ServiceClient

        while not self._halt.is_set():
            host, port = self.primary
            try:
                with ServiceClient(
                    host, port, timeout=max(5.0, self.poll_wait * 4),
                    reconnect=False,
                ) as client:
                    self._follow(client)
            except ReproError as exc:
                self._note(f"replication stream error: {exc}")
            except OSError as exc:
                self._note(f"primary {host}:{port} unreachable: {exc}")
            if self._halt.is_set():
                return
            self._retarget()
            self._halt.wait(self.retry_interval)

    def _follow(self, client) -> None:
        """Drain one healthy connection until it fails or we stop."""
        while not self._halt.is_set():
            response = client.repl_subscribe(
                from_seq=self.position,
                epoch=self.store.epoch,
                replica_id=self.replica_id,
                wait=self.poll_wait,
            )
            epoch = int(response.get("epoch", 0))
            if epoch > self.store.epoch:
                # the primary is ahead of us (we subscribed after a
                # promotion we missed): adopt its timeline's epoch
                self.store.set_epoch(epoch)
            try:
                if response.get("reset"):
                    self._apply_snapshot(response)
                else:
                    self._apply_records(response.get("records", []))
                    with self._lock:
                        self._position = max(
                            self._position, int(response.get("seq", 0))
                        )
            except _ResetNeeded as exc:
                self._note(str(exc))
                with self._lock:
                    self._position = -1
                continue
            client.repl_ack(
                replica_id=self.replica_id,
                seq=self.position,
                epoch=self.store.epoch,
            )

    def _apply_records(self, records: List[Dict[str, Any]]) -> None:
        for record in records:
            FAILPOINTS.hit("repl.pre_apply")
            apply_started = time.perf_counter()
            kind = record.get("kind", "ingest")
            try:
                if kind == "create":
                    self._apply_create(record)
                elif kind == "close":
                    self._apply_close(record.get("session", ""))
                else:
                    self._apply_ingest(record)
            except _ResetNeeded:
                raise
            except (ReproError, KeyError, TypeError, ValueError) as exc:
                raise _ResetNeeded(
                    f"record at position {record.get('pos')} did not "
                    f"apply cleanly ({exc}); resyncing from snapshot"
                ) from exc
            _h_apply.record(time.perf_counter() - apply_started)
            _c_applied.inc()
            with self._lock:
                self._position = int(record["pos"]) + 1
            FAILPOINTS.hit("repl.post_apply")

    def _apply_create(self, record: Dict[str, Any]) -> None:
        name = record["session"]
        if name in self.manager:
            return  # idempotent: a rewind re-shipped the create
        spec = specification_from_json(record["spec"])
        session = self.manager.create(
            name,
            spec,
            scheme=record.get("scheme", "drl"),
            skeleton=record.get("skeleton", "tcl"),
            mode=record.get("mode", "logged"),
        )
        self.store.register(session)

    def _apply_close(self, name: str) -> None:
        try:
            session = self.manager.close(name)
        except SessionNotFoundError:
            return  # idempotent
        self.store.finalize(session)
        if self.on_close is not None:
            self.on_close(session)

    def _apply_ingest(self, record: Dict[str, Any]) -> None:
        try:
            session = self.manager.get(record["session"])
        except SessionNotFoundError:
            raise _ResetNeeded(
                f"session {record['session']!r} unknown locally"
            ) from None
        start = int(record["start"])
        events = record["events"]
        skip = len(session.log) - start
        if skip < 0:
            raise _ResetNeeded(
                f"gap: record starts at {start} but only "
                f"{len(session.log)} events are applied locally"
            )
        if skip >= len(events):
            return  # fully applied already (snapshot overlap / retry)
        session.ingest_many(
            [insertion_from_json(event) for event in events[skip:]]
        )
        session.version = int(record["version"])

    def _apply_snapshot(self, response: Dict[str, Any]) -> None:
        """Rebuild local state from a full snapshot (reset path)."""
        log_event(
            _logger, logging.INFO, "replica-resync",
            replica=self.replica_id, position=self.position,
            reset_to=response.get("seq"),
        )
        snapshot = response.get("snapshot", [])
        shipped = {entry["session"] for entry in snapshot}
        for name in self.manager.names():
            if name not in shipped:
                self._apply_close(name)
        for entry in snapshot:
            name = entry["session"]
            try:
                session = self.manager.get(name)
            except SessionNotFoundError:
                spec = specification_from_json(entry["spec"])
                session = self.manager.create(
                    name,
                    spec,
                    scheme=entry.get("scheme", "drl"),
                    skeleton=entry.get("skeleton", "tcl"),
                    mode=entry.get("mode", "logged"),
                )
                self.store.register(session)
            events = entry.get("events", [])
            skip = len(session.log)
            if skip > len(events):
                # the local copy is AHEAD of the snapshot: a diverged
                # timeline (we were primary once); rebuild from scratch
                self._apply_close(name)
                self._apply_snapshot_entry_fresh(entry)
                continue
            if skip < len(events):
                session.ingest_many(
                    [
                        insertion_from_json(event)
                        for event in events[skip:]
                    ]
                )
            session.version = int(entry.get("version", session.version))
        with self._lock:
            self._position = int(response.get("seq", 0))

    def _apply_snapshot_entry_fresh(self, entry: Dict[str, Any]) -> None:
        spec = specification_from_json(entry["spec"])
        session = self.manager.create(
            entry["session"],
            spec,
            scheme=entry.get("scheme", "drl"),
            skeleton=entry.get("skeleton", "tcl"),
            mode=entry.get("mode", "logged"),
        )
        self.store.register(session)
        events = entry.get("events", [])
        if events:
            session.ingest_many(
                [insertion_from_json(event) for event in events]
            )
        session.version = int(entry.get("version", session.version))

    # ------------------------------------------------------------------
    # retargeting after a primary death
    # ------------------------------------------------------------------
    def _retarget(self) -> None:
        best: Optional[Tuple[str, int]] = None
        best_epoch = -1
        for endpoint in self.peers:
            info = probe_replication(endpoint)
            if info is None:
                continue
            if info.get("role") != "primary" or info.get("fenced"):
                continue
            epoch = int(info.get("epoch", 0))
            if epoch > best_epoch:
                best, best_epoch = endpoint, epoch
        if best is not None and best != self.primary:
            log_event(
                _logger, logging.INFO, "replica-retarget",
                replica=self.replica_id,
                old=f"{self.primary[0]}:{self.primary[1]}",
                new=f"{best[0]}:{best[1]}", epoch=best_epoch,
            )
            self.primary = best

    def _note(self, message: str) -> None:
        if not self.errors or self.errors[-1] != message:
            self.errors.append(message)
            del self.errors[:-20]  # bounded


def probe_replication(
    endpoint: Tuple[str, int], timeout: float = 2.0
) -> Optional[Dict[str, Any]]:
    """One endpoint's ``recover_info`` replication block, or ``None``.

    Used by appliers hunting the live primary and by supervisors
    choosing a promotion target; unreachable or non-durable endpoints
    simply answer ``None``.
    """
    from repro.service.client import ServiceClient

    host, port = endpoint
    try:
        with ServiceClient(
            host, port, timeout=timeout, reconnect=False
        ) as client:
            info = client.recover_info()
    except (ReproError, OSError):
        return None
    replication = info.get("replication")
    if not isinstance(replication, dict):
        return None
    replication = dict(replication)
    replication.setdefault("fenced", info.get("fenced", False))
    return replication


def choose_promotion_target(
    endpoints: Sequence[Tuple[str, int]],
) -> Optional[Tuple[str, int]]:
    """The most-caught-up live replica among ``endpoints``.

    Prefix coverage means the replica with the highest applied ship
    position holds a superset of every other's acknowledged state, so
    promoting it can never lose an acknowledged write that any replica
    still holds.
    """
    best: Optional[Tuple[str, int]] = None
    best_key = (-1, -1)
    for endpoint in endpoints:
        info = probe_replication(endpoint)
        if info is None or info.get("role") != "replica":
            continue
        key = (int(info.get("epoch", 0)), int(info.get("applied", 0)))
        if key > best_key:
            best, best_key = endpoint, key
    return best
