"""A concurrent multi-run provenance query service.

The library labels one execution at a time, in process.  This package
turns that capability into a long-lived *service*: many named runs
hosted concurrently (:mod:`repro.service.sessions`), single and batch
reachability queries answered through a version-aware LRU cache
(:mod:`repro.service.engine`), a JSON-lines wire protocol
(:mod:`repro.service.protocol`) served over TCP or stdio
(:mod:`repro.service.server`, :mod:`repro.service.client`),
checkpoint/recovery of live sessions built on the label store
(:mod:`repro.service.checkpoint`), and -- under a ``--data-dir`` -- a
per-session write-ahead log with configurable fsync policy, background
checkpoint rolling, and crash recovery (:mod:`repro.service.wal`).
``repro serve --workers N`` escapes the GIL entirely: a supervisor
forks N worker processes, each owning a disjoint slice of sessions by
stable name hash, behind a single-threaded hash-routing frontend that
speaks the same wire protocol (:mod:`repro.service.cluster`).

Because dynamic labels are assigned on-the-fly and never change, the
service answers provenance queries about a run *while that run is
still executing* -- the paper's central capability, lifted to a
serveable system.  Each session's labeling backend is pluggable: the
wire-visible ``scheme`` field names any registered *dynamic* scheme
(:mod:`repro.schemes.registry`; DRL by default), the ``schemes``
protocol op lists the available backends, and checkpoints record and
restore the scheme they were written under.
"""

from repro.service.checkpoint import checkpoint_session, restore_session
from repro.service.client import ServiceClient
from repro.service.cluster import ClusterSupervisor, session_worker
from repro.service.engine import QueryEngine, ServiceStats
from repro.service.protocol import Request, Response
from repro.service.server import ReproServer, ReproService, serve_stdio
from repro.service.sessions import Session, SessionManager
from repro.service.wal import (
    Checkpointer,
    DurableStore,
    WriteAheadLog,
    replay_wal,
)

__all__ = [
    "Session",
    "SessionManager",
    "QueryEngine",
    "ServiceStats",
    "Request",
    "Response",
    "ReproService",
    "ReproServer",
    "ServiceClient",
    "ClusterSupervisor",
    "session_worker",
    "serve_stdio",
    "checkpoint_session",
    "restore_session",
    "WriteAheadLog",
    "DurableStore",
    "Checkpointer",
    "replay_wal",
]
