"""The process-per-shard serving tier: supervisor + hash router.

One Python process serves every request under one GIL, so the engine's
lock-striped shards and the packed batch kernels can never use more
than one core.  Sessions, however, are *embarrassingly partitionable*:
a session's graph, labels, cache entries and WAL are touched only by
requests naming that session.  :class:`ClusterSupervisor` exploits
that:

* it forks ``N`` **worker processes** (``multiprocessing`` spawn
  context), each a complete, unmodified single-process server --
  its own :class:`~repro.service.server.ReproService` (engine +
  session manager + optional :class:`~repro.service.wal.DurableStore`
  rooted at ``data_dir/worker-<i>/``) behind a
  :class:`~repro.service.server.ReproServer` on an ephemeral loopback
  port;
* it fronts them with a **single-threaded non-blocking router**
  (:mod:`selectors`) that speaks the existing JSON-lines protocol to
  clients, owns no session state, and does no labeling work -- so the
  GIL it runs under is spent purely on byte shuffling.

Routing
-------
Each session lives on exactly one worker, chosen by a **stable** hash
of its name (:func:`session_worker` -- CRC-32, *not* Python's salted
``hash()``), so the same name maps to the same worker directory across
restarts and the worker's WAL/checkpoint layout stays valid.  A
session-scoped request line is forwarded to its owner *verbatim* and
the worker's response line -- which already echoes the client's
request id -- is relayed back untouched: the single-owner fast path
rewrites zero bytes.  Responses per worker connection arrive strictly
in request order (the protocol's ordering guarantee), so the router
matches them positionally, with no id table.

Fan-out ops (``schemes``/``stats``/``metrics``/``list_sessions``/
``recover_info``/``sync``/``ping``/``shutdown``) broadcast to every
worker and merge: ``stats`` sums the integer counters and recomputes
the hit rate (plus ``per_worker`` rows), ``metrics`` asks workers for
their **raw all-integer histogram state** and merges it *exactly*
(:meth:`~repro.obs.histogram.HistogramSnapshot.merge` is associative),
then summarizes.  A request naming sessions owned by different workers
is rejected with a structured ``protocol`` error -- cross-worker
requests have no single owner and no atomicity story.

Failover
--------
Every worker's process sentinel is registered in the selector.  When a
worker dies (crash, OOM kill, SIGKILL), in-flight requests routed to
it fail with structured ``service`` errors -- the router and every
other worker keep serving -- and the supervisor immediately respawns
it.  A durable worker replays its checkpoint + WAL tail on boot
(the ``data_dir/worker-<i>/`` layout is per-worker, so recovery is
local), which is what makes "SIGKILL one worker, lose zero
acknowledged ingests" hold; the kernel releases the dead worker's
``LOCK`` flock, so the respawn can always mount the store.

A ``cluster.json`` manifest in the data dir records the worker count:
booting the same data dir with a different ``--workers`` would hash
sessions to the wrong directories, so the mismatch is refused.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import selectors
import signal
import socket
import zlib
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ServiceError
from repro.faults import FAILPOINTS
from repro.obs.histogram import HistogramSnapshot, merge_snapshots
from repro.obs.logs import log_event
from repro.service.protocol import (
    MAX_BATCH,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_response,
)

_cluster_logger = logging.getLogger("repro.service.cluster")

#: manifest file recording the worker count a data dir was laid out for
MANIFEST = "cluster.json"

#: seconds a freshly spawned worker gets to report its port
WORKER_BOOT_TIMEOUT = 60.0

#: ops forwarded to the one worker owning the named session
_SESSION_OPS = frozenset({"ingest", "query", "query_batch", "snapshot",
                          "close"})

#: ops broadcast to every worker and merged
_BROADCAST_OPS = frozenset({"schemes", "stats", "metrics",
                            "list_sessions", "recover_info", "ping",
                            "shutdown"})

#: every op the router knows how to place: session-keyed forwards,
#: broadcasts, and the three special cases ``_route`` handles inline
#: (``cluster_info`` is answered by the router itself; a
#: ``create_session`` is forwarded to the owner of its ``name``; a
#: session-less ``sync`` broadcasts, a keyed one forwards).  The
#: replication ops fall through to the default forward path (worker 0),
#: whose unmodified handler produces the canonical structured error:
#: replication pairs whole *servers*, not routed shards -- a replica of
#: a cluster follows each worker directly, not the router.  The
#: ``ops-surface`` rule of :mod:`repro.analysis` fails the build if
#: this union ever drifts from ``protocol.OPS``.
_ROUTED_OPS = _SESSION_OPS | _BROADCAST_OPS | frozenset({
    "cluster_info", "create_session", "sync",
    "repl_subscribe", "repl_ack", "promote",
})


def session_worker(name: str, workers: int) -> int:
    """The worker index owning session ``name`` -- stable across
    processes and restarts.

    CRC-32 of the UTF-8 name, not Python's ``hash()``: the builtin is
    salted per process (PYTHONHASHSEED), which would scatter a restart
    onto the wrong worker directories.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return zlib.crc32(name.encode("utf-8")) % workers


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------


def _worker_main(index: int, conn, config: Dict[str, Any]) -> None:
    """Entry point of one worker process (spawn target).

    Builds an ordinary single-process server (the exact code path
    ``--workers 0`` runs), binds an ephemeral loopback port, reports it
    through ``conn``, and serves until a ``shutdown`` request arrives.
    A durable worker recovers its checkpoint + WAL tail inside
    ``ReproService.__init__`` before the port is ever reported, so the
    router never routes to a half-recovered worker.
    """
    # the router owns lifecycle; a terminal Ctrl-C must not race it
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # spawn children inherit the environment but not the parent's
    # armed registry state; re-arm so failpoints fire inside workers
    FAILPOINTS.arm_from_env()
    from repro.service.server import ReproServer, ReproService

    try:
        service = ReproService(
            cache_size=config["cache_size"],
            shards=config["shards"],
            max_batch=config["max_batch"],
            data_dir=config["data_dir"],
            fsync=config["fsync"],
            checkpoint_interval=config["checkpoint_interval"],
            slow_threshold=config["slow_threshold"],
            keep_generations=config.get("keep_generations", 1),
        )
        server = ReproServer(("127.0.0.1", 0), service)
    except Exception as exc:
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    conn.send(("ready", server.port))
    conn.close()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        service.close()


class _Worker:
    """The supervisor's handle on one worker process."""

    __slots__ = ("index", "process", "port", "restarts")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.port: int = 0
        self.restarts: int = 0


# ---------------------------------------------------------------------------
# router bookkeeping
# ---------------------------------------------------------------------------


class _Slot:
    """One client request's place in that client's response order.

    Responses must leave a connection in request order even when a
    fast single-owner answer overtakes a slow broadcast merge, so each
    request takes a slot in the client's deque and the flusher only
    emits from the front.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data: Optional[bytes] = None  # the ready response line


class _Gather:
    """One broadcast request waiting for every worker's answer."""

    __slots__ = ("op", "request", "slot", "client", "replies", "missing")

    def __init__(self, op: str, request: Request, slot: _Slot,
                 client: "_ClientConn", workers: int) -> None:
        self.op = op
        self.request = request
        self.slot = slot
        self.client = client
        self.replies: List[Optional[Response]] = [None] * workers
        self.missing = workers


class _ClientConn:
    """One accepted client connection's buffers and response order."""

    __slots__ = ("sock", "recv", "send", "slots", "closed", "peer")

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.recv = b""
        self.send = bytearray()
        self.slots: Deque[_Slot] = deque()
        self.closed = False
        self.peer = peer


class _WorkerConn:
    """The router's connection to one worker, plus its FIFO of pending
    request contexts (responses arrive strictly in request order)."""

    __slots__ = ("sock", "recv", "send", "pending")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.recv = b""
        self.send = bytearray()
        # each entry: ("forward", slot, client) or ("gather", gather, i)
        self.pending: Deque[Tuple] = deque()


# ---------------------------------------------------------------------------
# the supervisor
# ---------------------------------------------------------------------------


class ClusterSupervisor:
    """Runs the worker fleet and the routing frontend.

    Usage::

        supervisor = ClusterSupervisor(workers=4, port=0,
                                       data_dir="/var/lib/repro")
        supervisor.start()            # spawn workers, bind the port
        supervisor.serve_forever()    # the router loop (blocking)

    ``workers=0`` is not a cluster -- callers keep the in-process
    :class:`~repro.service.server.ReproServer` path for that.
    """

    def __init__(
        self,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 65536,
        shards: int = 4,
        max_batch: int = MAX_BATCH,
        data_dir: Optional[str] = None,
        fsync: str = "always",
        checkpoint_interval: Optional[float] = None,
        slow_threshold: float = 0.5,
        keep_generations: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("a cluster needs at least 1 worker")
        self.workers = workers
        self.host = host
        self._requested_port = port
        self.data_dir = data_dir
        self._config = {
            "cache_size": cache_size,
            "shards": shards,
            "max_batch": max_batch,
            "data_dir": None,  # per-worker, filled at spawn
            "fsync": fsync,
            "checkpoint_interval": checkpoint_interval,
            "slow_threshold": slow_threshold,
            "keep_generations": keep_generations,
        }
        self._mp = multiprocessing.get_context("spawn")
        self._fleet: List[_Worker] = [_Worker(i) for i in range(workers)]
        self._conns: List[Optional[_WorkerConn]] = [None] * workers
        self._selector: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        self._wakeup_r: Optional[socket.socket] = None
        self._wakeup_w: Optional[socket.socket] = None
        self._clients: Dict[socket.socket, _ClientConn] = {}
        self._running = False
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The router's bound port (valid after :meth:`start`)."""
        if self._listener is None:
            raise ServiceError("cluster is not started")
        return self._listener.getsockname()[1]

    def start(self) -> "ClusterSupervisor":
        """Spawn the fleet, connect to it, bind the client port."""
        if self._started:
            raise ServiceError("cluster already started")
        self._check_manifest()
        self._selector = selectors.DefaultSelector()
        for worker in self._fleet:
            self._spawn(worker)
        for worker in self._fleet:
            self._attach(worker)
        self._listener = socket.create_server(
            (self.host, self._requested_port), backlog=128,
            reuse_port=False,
        )
        self._listener.setblocking(False)
        self._selector.register(self._listener, selectors.EVENT_READ,
                                ("accept", None))
        self._wakeup_r, self._wakeup_w = socket.socketpair()
        self._wakeup_r.setblocking(False)
        self._selector.register(self._wakeup_r, selectors.EVENT_READ,
                                ("wakeup", None))
        self._started = True
        log_event(
            _cluster_logger, logging.INFO, "cluster-start",
            workers=self.workers, port=self.port,
            pids=[w.process.pid for w in self._fleet],
        )
        return self

    def _check_manifest(self) -> None:
        if self.data_dir is None:
            return
        os.makedirs(self.data_dir, exist_ok=True)
        path = os.path.join(self.data_dir, MANIFEST)
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            laid_out = int(manifest.get("workers", 0))
            if laid_out != self.workers:
                raise ServiceError(
                    f"data dir {self.data_dir!r} was laid out for "
                    f"{laid_out} workers; starting with {self.workers} "
                    f"would route sessions to the wrong worker "
                    f"directories"
                )
        else:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump({"workers": self.workers}, handle)
                handle.write("\n")

    def _worker_dir(self, index: int) -> Optional[str]:
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, f"worker-{index}")

    def _spawn(self, worker: _Worker) -> None:
        """Start one worker process and learn its port."""
        parent, child = self._mp.Pipe(duplex=False)
        config = dict(self._config)
        config["data_dir"] = self._worker_dir(worker.index)
        process = self._mp.Process(
            target=_worker_main,
            args=(worker.index, child, config),
            name=f"repro-worker-{worker.index}",
            daemon=True,
        )
        process.start()
        child.close()
        if not parent.poll(WORKER_BOOT_TIMEOUT):
            process.terminate()
            raise ServiceError(
                f"worker {worker.index} did not report a port within "
                f"{WORKER_BOOT_TIMEOUT}s"
            )
        status, payload = parent.recv()
        parent.close()
        if status != "ready":
            process.join(timeout=5)
            raise ServiceError(
                f"worker {worker.index} failed to boot: {payload}"
            )
        worker.process = process
        worker.port = payload

    def _attach(self, worker: _Worker) -> None:
        """Connect to a (re)spawned worker and register its fds."""
        sock = socket.create_connection(("127.0.0.1", worker.port),
                                        timeout=10.0)
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _WorkerConn(sock)
        self._conns[worker.index] = conn
        self._selector.register(sock, selectors.EVENT_READ,
                                ("worker", worker.index))
        # the sentinel becomes readable the instant the process dies --
        # faster and more reliable than noticing the socket EOF
        self._selector.register(worker.process.sentinel,
                                selectors.EVENT_READ,
                                ("sentinel", worker.index))

    def stop(self) -> None:
        """Stop the router loop and the fleet (thread-safe)."""
        if self._wakeup_w is not None:
            try:
                self._wakeup_w.send(b"x")
            except OSError:  # pragma: no cover - already closed
                pass

    # ------------------------------------------------------------------
    # the router loop
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the router until ``shutdown`` (op or :meth:`stop`)."""
        if not self._started:
            raise ServiceError("call start() before serve_forever()")
        self._running = True
        try:
            while self._running:
                if self._stopping and self._drained():
                    break
                for key, events in self._selector.select(timeout=0.5):
                    kind, payload = key.data
                    if kind == "accept":
                        self._accept()
                    elif kind == "client":
                        self._client_event(payload, events)
                    elif kind == "worker":
                        self._worker_event(payload, events)
                    elif kind == "sentinel":
                        self._worker_died(payload)
                    elif kind == "wakeup":
                        self._wakeup_r.recv(4096)
                        self._begin_shutdown()
        finally:
            self._running = False
            self._cleanup()

    def _drained(self) -> bool:
        # a shutdown is done once every client's responses -- the
        # shutdown ack above all -- are computed AND handed to the
        # kernel, so the last flush is never cut off
        return all(
            not c.send and not c.slots for c in self._clients.values()
        )

    def _cleanup(self) -> None:
        for client in list(self._clients.values()):
            self._close_client(client)
        for conn in self._conns:
            if conn is not None:
                try:
                    self._selector.unregister(conn.sock)
                except (KeyError, ValueError):
                    pass
                conn.sock.close()
        for worker in self._fleet:
            if worker.process is not None:
                try:
                    self._selector.unregister(worker.process.sentinel)
                except (KeyError, ValueError):
                    pass
                if not self._stopping and worker.process.is_alive():
                    # exception-path teardown: nobody broadcast a
                    # shutdown, so don't wait politely
                    worker.process.terminate()
                worker.process.join(timeout=10)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5)
        for sock in (self._listener, self._wakeup_r, self._wakeup_w):
            if sock is not None:
                sock.close()
        if self._selector is not None:
            self._selector.close()
        self._started = False
        log_event(_cluster_logger, logging.INFO, "cluster-stop",
                  restarts=sum(w.restarts for w in self._fleet))

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def _accept(self) -> None:
        try:
            sock, address = self._listener.accept()
        except OSError:  # pragma: no cover - raced disconnect
            return
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test sockets
            pass
        try:
            peer = "%s:%s" % address[:2]
        except Exception:  # pragma: no cover - exotic families
            peer = str(address)
        client = _ClientConn(sock, peer)
        self._clients[sock] = client
        self._selector.register(sock, selectors.EVENT_READ,
                                ("client", client))

    def _client_event(self, client: _ClientConn, events: int) -> None:
        if events & selectors.EVENT_WRITE and client.send:
            self._flush_client(client)
        if client.closed or not events & selectors.EVENT_READ:
            return
        try:
            data = client.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._close_client(client)
            return
        if not data:
            self._close_client(client)
            return
        client.recv += data
        while b"\n" in client.recv:
            line, client.recv = client.recv.split(b"\n", 1)
            if line.strip():
                self._route(client, line + b"\n")

    def _close_client(self, client: _ClientConn) -> None:
        if client.closed:
            return
        client.closed = True
        self._clients.pop(client.sock, None)
        try:
            self._selector.unregister(client.sock)
        except (KeyError, ValueError):
            pass
        client.sock.close()
        # pending worker responses for this client are consumed and
        # dropped by the positional matcher via the closed flag

    def _client_interest(self, client: _ClientConn) -> None:
        if client.closed:
            return
        events = selectors.EVENT_READ
        if client.send:
            events |= selectors.EVENT_WRITE
        self._selector.modify(client.sock, events, ("client", client))

    def _flush_client(self, client: _ClientConn) -> None:
        try:
            while client.send:
                sent = client.sock.send(client.send)
                del client.send[:sent]
        except BlockingIOError:
            pass
        except OSError:
            self._close_client(client)
            return
        self._client_interest(client)

    def _emit(self, client: _ClientConn, slot: _Slot,
              data: bytes) -> None:
        """Fill a slot and flush every leading ready slot in order."""
        slot.data = data
        while client.slots and client.slots[0].data is not None:
            client.send += client.slots.popleft().data
        if client.send and not client.closed:
            self._flush_client(client)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, client: _ClientConn, raw: bytes) -> None:
        slot = _Slot()
        client.slots.append(slot)
        try:
            request = decode_request(raw.decode("utf-8",
                                                errors="replace"))
        except ProtocolError as exc:
            self._emit(client, slot, encode_response(
                error_response(exc)).encode("utf-8"))
            return
        try:
            op = request.op
            if op == "cluster_info":
                self._answer(client, slot, request,
                             self._cluster_info())
            elif op in _BROADCAST_OPS:
                self._broadcast(client, slot, request)
            elif op == "sync" and request.params.get("session") is None:
                self._broadcast(client, slot, request)
            else:
                self._forward(client, slot, request, raw)
        except Exception as exc:
            self._emit(client, slot, encode_response(
                error_response(exc, request.id)).encode("utf-8"))

    def _answer(self, client: _ClientConn, slot: _Slot,
                request: Request, result: Any) -> None:
        response = Response(ok=True, result=result, id=request.id,
                            trace_id=request.trace_id)
        self._emit(client, slot,
                   encode_response(response).encode("utf-8"))

    def _owner_of(self, request: Request) -> int:
        """The worker index a session-scoped request routes to.

        A malformed routing key (missing, non-string) is *not* judged
        here -- the request goes to worker 0, whose unmodified op
        handler produces the canonical structured error.  The one
        router-level rejection is a *list* of sessions spanning
        workers: no single worker could own it.
        """
        key = "name" if request.op == "create_session" else "session"
        value = request.params.get(key)
        if isinstance(value, str):
            return session_worker(value, self.workers)
        if isinstance(value, list):
            owners = {
                session_worker(item, self.workers)
                for item in value if isinstance(item, str)
            }
            if len(owners) > 1:
                raise ProtocolError(
                    f"op {request.op!r} mixes sessions owned by "
                    f"different workers; cross-worker requests are "
                    f"not supported -- issue one request per session"
                )
            raise ProtocolError(
                f"'{key}' must be a single session name"
            )
        return 0

    def _forward(self, client: _ClientConn, slot: _Slot,
                 request: Request, raw: bytes) -> None:
        index = self._owner_of(request)
        conn = self._conns[index]
        if conn is None:  # mid-restart; only reachable on spawn failure
            raise ServiceError(f"worker {index} is unavailable")
        conn.pending.append(("forward", slot, client))
        self._send_worker(index, conn, raw)

    def _broadcast(self, client: _ClientConn, slot: _Slot,
                   request: Request) -> None:
        gather = _Gather(request.op, request, slot, client,
                         self.workers)
        if request.op == "shutdown":
            # flag before the workers can exit: their sentinels firing
            # must read as expected exits, not crashes to restart
            self._stopping = True
        if request.op == "metrics":
            # ask workers for raw integer histograms so the merged
            # series is exact; summarized on the way out
            request = Request(op="metrics",
                              params={**request.params, "raw": True},
                              id=request.id, trace_id=request.trace_id)
        raw = encode_request(request).encode("utf-8")
        for index, conn in enumerate(self._conns):
            if conn is None:
                gather.replies[index] = error_response(
                    ServiceError(f"worker {index} is unavailable"))
                gather.missing -= 1
                continue
            conn.pending.append(("gather", gather, index))
            self._send_worker(index, conn, raw)
        if gather.missing == 0:  # every worker down: still answer
            self._finish_gather(gather)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _send_worker(self, index: int, conn: _WorkerConn,
                     raw: bytes) -> None:
        conn.send += raw
        try:
            while conn.send:
                sent = conn.sock.send(conn.send)
                del conn.send[:sent]
        except BlockingIOError:
            pass
        except OSError:
            # the sentinel event will fail pendings and restart
            return
        self._worker_interest(index, conn)

    def _worker_interest(self, index: int, conn: _WorkerConn) -> None:
        events = selectors.EVENT_READ
        if conn.send:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, ("worker", index))
        except (KeyError, ValueError):  # pragma: no cover - mid-restart
            pass

    def _worker_event(self, index: int, events: int) -> None:
        conn = self._conns[index]
        if conn is None:  # pragma: no cover - stale event mid-restart
            return
        if events & selectors.EVENT_WRITE and conn.send:
            self._send_worker(index, conn, b"")
        if not events & selectors.EVENT_READ:
            return
        try:
            data = conn.sock.recv(262144)
        except BlockingIOError:
            return
        except OSError:
            data = b""
        if not data:
            # EOF: normal during shutdown (workers exit after
            # answering); otherwise the sentinel handler takes over
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            return
        conn.recv += data
        while b"\n" in conn.recv:
            line, conn.recv = conn.recv.split(b"\n", 1)
            if not line.strip():
                continue
            self._worker_reply(index, conn, line + b"\n")

    def _worker_reply(self, index: int, conn: _WorkerConn,
                      raw: bytes) -> None:
        if not conn.pending:  # pragma: no cover - protocol violation
            log_event(_cluster_logger, logging.WARNING,
                      "unmatched-worker-reply", worker=index)
            return
        entry = conn.pending.popleft()
        if entry[0] == "forward":
            _, slot, client = entry
            if not client.closed:
                self._emit(client, slot, raw)
            return
        _, gather, windex = entry
        try:
            gather.replies[windex] = decode_response(
                raw.decode("utf-8", errors="replace"))
        except ProtocolError as exc:  # pragma: no cover - broken worker
            gather.replies[windex] = error_response(exc)
        gather.missing -= 1
        if gather.missing == 0:
            self._finish_gather(gather)

    def _worker_died(self, index: int) -> None:
        """A worker's sentinel fired: fail its in-flight work, then
        restart it (synchronously -- the brief router pause is the
        price of never routing to a vacant slot)."""
        worker = self._fleet[index]
        try:
            self._selector.unregister(worker.process.sentinel)
        except (KeyError, ValueError):
            pass
        conn = self._conns[index]
        self._conns[index] = None
        if conn is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            # responses the worker wrote before dying are sitting in
            # the socket buffer; deliver them before failing the rest
            self._drain_dead_worker(index, conn)
            conn.sock.close()
            self._fail_pending(index, conn)
        worker.process.join(timeout=5)
        if self._stopping:
            return  # expected: workers exit after a shutdown broadcast
        log_event(
            _cluster_logger, logging.WARNING, "worker-died",
            worker=index, exitcode=worker.process.exitcode,
            restarts=worker.restarts,
        )
        try:
            self._restart(worker)
        except Exception as exc:
            # leave the slot vacant: requests routed here fail with a
            # structured error while the rest of the fleet serves on
            log_event(
                _cluster_logger, logging.ERROR, "worker-restart-failed",
                worker=index, error=str(exc),
            )

    def _drain_dead_worker(self, index: int, conn: _WorkerConn) -> None:
        while True:
            try:
                data = conn.sock.recv(262144)
            except (BlockingIOError, OSError):
                break
            if not data:
                break
            conn.recv += data
        while b"\n" in conn.recv and conn.pending:
            line, conn.recv = conn.recv.split(b"\n", 1)
            if line.strip():
                self._worker_reply(index, conn, line + b"\n")

    def _fail_pending(self, index: int, conn: _WorkerConn) -> None:
        exc = ServiceError(
            f"worker {index} died while handling the request; "
            f"it is being restarted -- idempotent calls may be retried"
        )
        while conn.pending:
            entry = conn.pending.popleft()
            if entry[0] == "forward":
                _, slot, client = entry
                if not client.closed:
                    self._emit(client, slot, encode_response(
                        error_response(exc)).encode("utf-8"))
            else:
                _, gather, windex = entry
                gather.replies[windex] = error_response(exc)
                gather.missing -= 1
                if gather.missing == 0:
                    self._finish_gather(gather)

    def _restart(self, worker: _Worker) -> None:
        FAILPOINTS.hit("cluster.pre_respawn")
        worker.restarts += 1
        self._spawn(worker)
        self._attach(worker)
        log_event(
            _cluster_logger, logging.INFO, "worker-restarted",
            worker=worker.index, pid=worker.process.pid,
            restarts=worker.restarts,
        )

    # ------------------------------------------------------------------
    # merges
    # ------------------------------------------------------------------
    def _finish_gather(self, gather: _Gather) -> None:
        if gather.client.closed:
            if gather.op == "shutdown":
                self._begin_shutdown()
            return
        failure = next(
            (r for r in gather.replies if r is not None and not r.ok),
            None,
        )
        if failure is not None:
            response = Response(
                ok=False, error=failure.error, code=failure.code,
                id=gather.request.id, trace_id=gather.request.trace_id,
            )
        else:
            results = [r.result for r in gather.replies]
            merged = self._merge(gather.op, gather.request, results)
            response = Response(ok=True, result=merged,
                                id=gather.request.id,
                                trace_id=gather.request.trace_id)
        self._emit(gather.client, gather.slot,
                   encode_response(response).encode("utf-8"))
        if gather.op == "shutdown":
            self._begin_shutdown()

    def _merge(self, op: str, request: Request,
               results: List[Any]) -> Any:
        if op == "ping":
            return {"pong": True, "workers": self.workers}
        if op == "schemes":
            return results[0]  # every worker hosts the same registry
        if op == "list_sessions":
            names: List[str] = []
            for result in results:
                names.extend(result.get("sessions", []))
            return {"sessions": sorted(names)}
        if op == "shutdown":
            return {"stopping": True, "workers": self.workers}
        if op == "sync":
            return {
                "synced": sum(r.get("synced", 0) for r in results),
                "fsync": results[0].get("fsync"),
            }
        if op == "recover_info":
            # surface every torn WAL tail any worker dropped at boot --
            # with the per-record forensics (bytes dropped, last good
            # seq) -- so one cluster-level probe answers "did any shard
            # lose an unacknowledged tail, and how much?"
            torn_tails = [
                {"worker": i, **report}
                for i, result in enumerate(results)
                for report in result.get("recovered", [])
                if report.get("torn_tail")
            ]
            return {
                "durable": all(r.get("durable", True) for r in results),
                "cluster": True,
                "workers": self.workers,
                "torn_tails": torn_tails,
                "torn_bytes_dropped": sum(
                    int(t.get("torn_bytes_dropped", 0))
                    for t in torn_tails
                ),
                "per_worker": [
                    {"worker": i, **result}
                    for i, result in enumerate(results)
                ],
            }
        if op == "stats":
            return merge_stats(results)
        if op == "metrics":
            raw = bool(request.params.get("raw"))
            return merge_metrics(results, raw=raw)
        raise ServiceError(f"no merge for op {op!r}")  # pragma: no cover

    def _cluster_info(self) -> Dict[str, Any]:
        return {
            "cluster": True,
            "workers": self.workers,
            "restarts": sum(w.restarts for w in self._fleet),
            "per_worker": [
                {
                    "worker": w.index,
                    "pid": w.process.pid if w.process else None,
                    "port": w.port,
                    "restarts": w.restarts,
                    "alive": bool(w.process and w.process.is_alive()),
                }
                for w in self._fleet
            ],
        }

    def _begin_shutdown(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        # workers that saw the shutdown broadcast are already exiting;
        # a stop() call must still bring down a quiet fleet
        raw = encode_request(Request(op="shutdown")).encode("utf-8")
        for index, conn in enumerate(self._conns):
            worker = self._fleet[index]
            if conn is None or not (worker.process
                                    and worker.process.is_alive()):
                continue
            conn.pending.append(("gather",
                                 _Gather("noop", Request(op="shutdown"),
                                         _Slot(), _ClosedClient(),
                                         1),
                                 0))
            self._send_worker(index, conn, raw)


class _ClosedClient:
    """A stand-in client for internally originated requests."""

    closed = True
    slots: Deque = deque()


# ---------------------------------------------------------------------------
# merge functions (module-level: tested directly)
# ---------------------------------------------------------------------------


def merge_stats(results: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-worker ``stats`` payloads into the cluster view.

    Integer and float counters sum, list fields concatenate, the hit
    rate is recomputed from the summed hit/miss counts (a mean of
    ratios would be wrong), and the per-worker payloads ride along
    under ``per_worker`` so dashboards can show both.
    """
    if not results:
        return {"workers": 0, "per_worker": []}
    merged: Dict[str, Any] = {}
    for key, value in results[0].items():
        if key == "hit_rate":
            continue
        if isinstance(value, bool):  # pragma: no cover - none today
            merged[key] = value
        elif isinstance(value, (int, float)):
            merged[key] = sum(r.get(key, 0) for r in results)
        elif isinstance(value, list):
            merged[key] = [item for r in results
                           for item in r.get(key, [])]
        else:
            merged[key] = value
    hits = merged.get("cache_hits", 0)
    misses = merged.get("cache_misses", 0)
    merged["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
    merged["workers"] = len(results)
    merged["per_worker"] = [
        {"worker": i, **result} for i, result in enumerate(results)
    ]
    return merged


def merge_metrics(results: List[Dict[str, Any]],
                  raw: bool = False) -> Dict[str, Any]:
    """Combine per-worker raw ``metrics`` payloads *exactly*.

    Counters sum by ``(name, labels)``.  Histograms arrive as raw
    all-integer state (the router requests ``raw: true`` from its
    workers), rebuild into :class:`HistogramSnapshot` and merge
    exactly -- the merged p50/p95/p99 are computed from the true
    combined bucket counts, not averaged from per-worker percentiles.
    Trace summaries sum their counts.
    """
    counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {}
    histograms: Dict[
        Tuple[str, Tuple[Tuple[str, str], ...]],
        List[HistogramSnapshot],
    ] = {}
    traces: Dict[str, Any] = {}
    for result in results:
        for entry in result.get("counters", []):
            key = (entry["name"],
                   tuple(sorted(entry.get("labels", {}).items())))
            counters[key] = counters.get(key, 0) + int(entry["value"])
        for entry in result.get("histograms", []):
            key = (entry["name"],
                   tuple(sorted(entry.get("labels", {}).items())))
            histograms.setdefault(key, []).append(
                HistogramSnapshot.from_raw(entry))
        summary = result.get("traces")
        if isinstance(summary, dict):
            for field, value in summary.items():
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    if field == "slow_threshold_s":
                        traces.setdefault(field, value)
                    else:
                        traces[field] = traces.get(field, 0) + value
                else:  # pragma: no cover - no such fields today
                    traces.setdefault(field, value)
    merged_histograms = []
    for (name, labels), snapshots in sorted(histograms.items()):
        snapshot = merge_snapshots(snapshots)
        payload = snapshot.raw_dict() if raw else snapshot.to_dict()
        merged_histograms.append(
            {"name": name, "labels": dict(labels), **payload})
    return {
        "counters": [
            {"name": name, "labels": dict(labels), "value": value}
            for (name, labels), value in sorted(counters.items())
        ],
        "histograms": merged_histograms,
        "traces": traces,
        "workers": len(results),
    }
