"""SKL: the skeleton-based *static* scheme (comparison baseline, Section 7.4).

Reconstruction of "An optimal labeling scheme for workflow provenance
using skeleton labels" [Bao, Davidson, Khanna, Roy -- SIGMOD 2010], with
the properties this paper states and measures:

* static: the entire run must be known before labeling starts;
* non-recursive workflows only (loops and forks);
* labels are **three indexes plus one skeleton label** over a **global
  specification graph** (every composite module expanded in place), i.e.
  ``3 log n + O(log n_G)`` bits;
* O(1) queries with TCL skeletons, search-based queries with BFS.

Construction (documented in DESIGN.md section 3): the nesting structure of
a loop/fork run is series-parallel -- loops compose copies in series,
forks in parallel, and everything inside one sub-workflow copy is decided
by the specification.  Series-parallel orders have order dimension 2, so:

* ``Q``   (loops = series, forks/plain = parallel) captures *loop-order*
  reachability: ``v`` reaches ``v'`` across loop iterations iff
  ``v <_Q v'``;
* ``Q_F`` (forks = series, loops/plain = parallel) captures *fork
  separation*: ``v`` and ``v'`` sit in different copies of one fork iff
  they are comparable in ``Q_F``.

A left-to-right DFS of the parse tree is a linear extension of both
orders, so three integers per vertex -- ``t1`` (shared DFS), ``t2``
(reversing parallel-in-Q children) and ``t3`` (reversing parallel-in-Q_F
children) -- decide both tests; all remaining pairs reduce to a
reachability query between the vertices' images in the global
specification graph (correct by Lemma 4.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import LabelingError, UnsupportedWorkflowError
from repro.graphs.digraph import IdAllocator, NamedDAG
from repro.graphs.reachability import TransitiveClosure, reaches
from repro.labeling.bits import pointer_bits, uint_bits
from repro.parsetree.explicit import ExplicitParseTree, NodeKind, ParseNode
from repro.parsetree.explicit import build_explicit_tree
from repro.workflow.derivation import Derivation
from repro.workflow.grammar import GrammarInfo, analyze_grammar
from repro.workflow.specification import GraphKey, START_KEY, Specification

# An occurrence path: ((composite template vid, impl key), ...) from the
# start graph down to one sub-workflow occurrence of the global spec.
OccurrencePath = Tuple[Tuple[int, GraphKey], ...]


@dataclass(frozen=True)
class SKLLabel:
    """An SKL label: three traversal indexes + a global-spec pointer."""

    t1: int
    t2: int
    t3: int
    gs: int


class GlobalSpecification:
    """The global specification graph: every composite expanded in place.

    Each composite occurrence is replaced by the union of *all* its
    implementations wired in parallel between the occurrence's
    predecessors and successors, so every possible run maps into it.
    Non-recursive specifications only (otherwise the expansion is
    infinite).
    """

    def __init__(self, spec: Specification, info: Optional[GrammarInfo] = None):
        info = info if info is not None else analyze_grammar(spec)
        if info.is_recursive:
            raise UnsupportedWorkflowError(
                "the global specification of a recursive workflow is infinite"
            )
        self.spec = spec
        self.graph = NamedDAG()
        self._alloc = IdAllocator()
        # (occurrence path, atomic template vid) -> global-spec vertex
        self._map: Dict[Tuple[OccurrencePath, int], int] = {}
        self._instantiate(START_KEY, ())

    def _instantiate(
        self, key: GraphKey, path: OccurrencePath
    ) -> Tuple[List[int], List[int]]:
        """Expand one occurrence; returns its (sources, sinks) in the GS."""
        template = self.spec.graph(key)
        faces: Dict[int, Tuple[List[int], List[int]]] = {}
        for tv in template.vertices():
            name = template.name(tv)
            if self.spec.is_atomic(name):
                vid = self._alloc.fresh()
                self.graph.add_vertex(vid, name)
                self._map[(path, tv)] = vid
                faces[tv] = ([vid], [vid])
            else:
                sources: List[int] = []
                sinks: List[int] = []
                for impl_key in self.spec.impl_keys(name):
                    sub_path = path + ((tv, impl_key),)
                    s, t = self._instantiate(impl_key, sub_path)
                    sources.extend(s)
                    sinks.extend(t)
                faces[tv] = (sources, sinks)
        for a, b in template.edges():
            for out_vid in faces[a][1]:
                for in_vid in faces[b][0]:
                    self.graph.add_edge(out_vid, in_vid)
        return faces[template.source][0], faces[template.sink][1]

    def vertex_for(self, path: OccurrencePath, template_vid: int) -> int:
        """GS vertex of an atomic template vertex at one occurrence."""
        try:
            return self._map[(path, template_vid)]
        except KeyError:
            raise LabelingError(
                f"no global-spec vertex for occurrence {path!r}/{template_vid}"
            ) from None

    def __len__(self) -> int:
        return len(self.graph)


class SKL:
    """The static SKL scheme for one specification.

    ``skeleton='tcl'`` precomputes the global spec's transitive closure
    (fast queries, large preprocessing -- Table 2); ``skeleton='bfs'``
    stores nothing and searches the global spec per query (Figure 22's
    slow combination).
    """

    def __init__(
        self,
        spec: Specification,
        skeleton: str = "tcl",
        info: Optional[GrammarInfo] = None,
    ) -> None:
        self.spec = spec
        self.info = info if info is not None else analyze_grammar(spec)
        if self.info.is_recursive:
            raise UnsupportedWorkflowError(
                "SKL supports only non-recursive workflows (loops and forks)"
            )
        start = time.perf_counter()
        self.global_spec = GlobalSpecification(spec, self.info)
        self.skeleton_kind = skeleton
        self._closure: Optional[TransitiveClosure] = None
        if skeleton == "tcl":
            self._closure = TransitiveClosure(self.global_spec.graph)
        elif skeleton != "bfs":
            raise LabelingError(f"unknown skeleton kind {skeleton!r}")
        self.build_seconds = time.perf_counter() - start
        self._gs_pointer_bits = pointer_bits(max(len(self.global_spec), 2))

    # ------------------------------------------------------------------
    # preprocessing overhead (Table 2)
    # ------------------------------------------------------------------
    def skeleton_bits(self) -> int:
        """Bits of the global-spec skeleton labels (0 for BFS)."""
        if self._closure is None:
            return 0
        n = len(self._closure)
        return n * (n - 1) // 2

    def _gs_reaches(self, u: int, v: int) -> bool:
        if self._closure is not None:
            return self._closure.reaches(u, v)
        return reaches(self.global_spec.graph, u, v)

    # ------------------------------------------------------------------
    # labeling a completed run
    # ------------------------------------------------------------------
    def label_run(self, derivation: Derivation) -> Dict[int, SKLLabel]:
        """Label every vertex of a completed run; returns vid -> label."""
        tree = build_explicit_tree(derivation, info=self.info, r_mode="linear")
        assert tree.root is not None
        occurrence: Dict[ParseNode, OccurrencePath] = {}
        components: Dict[ParseNode, List[Tuple[str, object]]] = {}
        self._prepare(tree, tree.root, (), occurrence, components)

        t1 = self._traversal(tree.root, components, reverse_kinds=frozenset())
        t2 = self._traversal(
            tree.root, components, reverse_kinds=frozenset((NodeKind.F, NodeKind.N))
        )
        t3 = self._traversal(
            tree.root, components, reverse_kinds=frozenset((NodeKind.L, NodeKind.N))
        )

        labels: Dict[int, SKLLabel] = {}
        for node in tree.nodes():
            if node.instance is None:
                continue
            template = self.spec.graph(node.instance.key)
            path = occurrence[node]
            for tv in template.vertices():
                if not self.spec.is_atomic(template.name(tv)):
                    continue
                vid = node.instance.mapping[tv]
                labels[vid] = SKLLabel(
                    t1=t1[vid],
                    t2=t2[vid],
                    t3=t3[vid],
                    gs=self.global_spec.vertex_for(path, tv),
                )
        return labels

    def _prepare(
        self,
        tree: ExplicitParseTree,
        node: ParseNode,
        path: OccurrencePath,
        occurrence: Dict[ParseNode, OccurrencePath],
        components: Dict[ParseNode, List[Tuple[str, object]]],
    ) -> None:
        """Compute occurrence paths and the ordered component lists.

        The components of an N node are its own atomic vertices (leaves)
        and the structures expanded from its composite vertices, ordered
        by template vertex id; the components of an L/F node are its copy
        children in index order.  The order is arbitrary but fixed, which
        is all the three traversals need.
        """
        if node.kind is NodeKind.N:
            occurrence[node] = path
            assert node.instance is not None
            template = self.spec.graph(node.instance.key)
            child_by_tv: Dict[int, ParseNode] = {}
            for child in node.children:
                if child.edge_composite is None:
                    raise LabelingError("missing edge composite below N node")
                _, tv = tree.context_of(child.edge_composite)
                child_by_tv[tv] = child
            comps: List[Tuple[str, object]] = []
            for tv in sorted(template.vertices()):
                if self.spec.is_atomic(template.name(tv)):
                    comps.append(("leaf", node.instance.mapping[tv]))
                else:
                    child = child_by_tv.get(tv)
                    if child is None:
                        raise LabelingError(
                            "composite vertex never expanded; run incomplete"
                        )
                    comps.append(("child", child))
                    if child.kind is NodeKind.N:
                        sub_path = path + ((tv, child.instance.key),)
                        self._prepare(tree, child, sub_path, occurrence, components)
                    else:
                        # L/F node: all copies share the occurrence.
                        occurrence[child] = path + ((tv, ""),)
                        comps_lf: List[Tuple[str, object]] = []
                        for copy in child.children:
                            comps_lf.append(("child", copy))
                            assert copy.instance is not None
                            sub_path = path + ((tv, copy.instance.key),)
                            self._prepare(
                                tree, copy, sub_path, occurrence, components
                            )
                        components[child] = comps_lf
            components[node] = comps
        else:
            raise LabelingError("special nodes are prepared by their parent")

    def _traversal(
        self,
        root: ParseNode,
        components: Dict[ParseNode, List[Tuple[str, object]]],
        reverse_kinds: frozenset,
    ) -> Dict[int, int]:
        """One DFS order over run vertices, reversing selected node kinds."""
        position: Dict[int, int] = {}
        counter = 0
        stack: List[object] = [root]
        while stack:
            item = stack.pop()
            if isinstance(item, int):
                position[item] = counter
                counter += 1
                continue
            node = item
            comps = components[node]
            if node.kind in reverse_kinds:
                ordered = list(comps)
            else:
                ordered = list(reversed(comps))
            # stack is LIFO: push in reverse of the desired visit order.
            for tag, payload in ordered:
                stack.append(payload)
        return position

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, a: SKLLabel, b: SKLLabel) -> bool:
        """Does ``a``'s vertex reach ``b``'s?  Reflexive, O(1) with TCL."""
        if a == b:
            return True
        # fork separation: comparable in Q_F (either direction)
        if (a.t1 < b.t1) == (a.t3 < b.t3):
            return False
        # loop order: comparable in Q
        if a.t1 < b.t1 and a.t2 < b.t2:
            return True
        if b.t1 < a.t1 and b.t2 < a.t2:
            return False
        # same copy context at every level: global specification decides.
        return self._gs_reaches(a.gs, b.gs)

    # ------------------------------------------------------------------
    def label_bits(self, label: SKLLabel) -> int:
        """Size of one SKL label in bits (3 indexes + GS pointer)."""
        return (
            uint_bits(label.t1)
            + uint_bits(label.t2)
            + uint_bits(label.t3)
            + self._gs_pointer_bits
        )
