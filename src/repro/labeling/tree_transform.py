"""Tree-transform reachability labeling (Heinis & Alonso, SIGMOD 2008).

Reference [13] of the paper: label a run by *transforming the DAG into a
tree* -- duplicating every vertex once per incoming tree path -- and then
applying the classic interval scheme [22] to the tree.  Each original
vertex keeps the intervals of **all** its tree copies; ``u`` reaches
``v`` iff some copy of ``v`` lies inside some interval of ``u``.

The paper's criticism is exactly what this implementation exhibits: the
transformed tree can be exponentially larger than the DAG (every diamond
doubles the paths), so per-vertex labels degenerate to linear size and
beyond.  A ``max_tree_size`` cap makes the blow-up observable without
exhausting memory; construction fails cleanly when the cap is hit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import LabelingError, UnsupportedWorkflowError
from repro.graphs.digraph import NamedDAG
from repro.labeling.bits import uint_bits

# per-vertex label: the (pre, post) intervals of all tree copies
TransformLabel = Tuple[Tuple[int, int], ...]


class TreeTransformIndex:
    """Static reachability labels via DAG-to-tree unfolding.

    Parameters
    ----------
    graph:
        The DAG to label (must have at least one source).
    max_tree_size:
        Abort with :class:`UnsupportedWorkflowError` when the unfolded
        tree exceeds this many nodes -- the exponential-blow-up guard.
    """

    def __init__(self, graph: NamedDAG, max_tree_size: int = 200_000) -> None:
        sources = graph.sources()
        if not sources:
            raise LabelingError("graph has no source to unfold from")
        # iterative unfolding with interval assignment: each stack frame
        # is (vertex, state); pre numbers are assigned on entry, post on
        # exit, exactly the [22] scheme on the unfolded tree.
        self.tree_size = 0
        intervals: Dict[int, List[Tuple[int, int]]] = {
            v: [] for v in graph.vertices()
        }
        counter = 0
        for root in sorted(sources):
            stack: List[Tuple[int, int]] = [(root, -1)]  # (vertex, pre)
            pending: List[Tuple[int, int]] = []
            # explicit DFS with enter/exit markers
            work: List[Tuple[int, bool, int]] = [(root, False, 0)]
            entry_pre: List[int] = []
            while work:
                vertex, done, _ = work.pop()
                if done:
                    pre = entry_pre.pop()
                    intervals[vertex].append((pre, counter - 1))
                    continue
                self.tree_size += 1
                if self.tree_size > max_tree_size:
                    raise UnsupportedWorkflowError(
                        f"unfolded tree exceeds {max_tree_size} nodes "
                        "(the [13] exponential blow-up)"
                    )
                entry_pre.append(counter)
                counter += 1
                work.append((vertex, True, 0))
                for succ in sorted(graph.successors(vertex), reverse=True):
                    work.append((succ, False, 0))
        self._labels: Dict[int, TransformLabel] = {
            v: tuple(sorted(ivs)) for v, ivs in intervals.items()
        }

    # ------------------------------------------------------------------
    def label(self, vid: int) -> TransformLabel:
        """The interval set of one vertex."""
        try:
            return self._labels[vid]
        except KeyError:
            raise LabelingError(f"vertex {vid} not labeled") from None

    @staticmethod
    def query(label_u: TransformLabel, label_v: TransformLabel) -> bool:
        """Does ``u`` reach ``v``?  Some copy of v inside some u interval."""
        for pre_u, post_u in label_u:
            for pre_v, _ in label_v:
                if pre_u <= pre_v <= post_u:
                    return True
        return False

    def reaches(self, u: int, v: int) -> bool:
        """Convenience wrapper over vertex ids."""
        return self.query(self.label(u), self.label(v))

    # ------------------------------------------------------------------
    def label_bits(self, label: TransformLabel) -> int:
        """Accounted size: two counters per tree copy."""
        return sum(uint_bits(a) + uint_bits(b) for a, b in label)

    def total_bits(self) -> int:
        """Total index size in bits."""
        return sum(self.label_bits(l) for l in self._labels.values())

    def max_copies(self) -> int:
        """The largest number of tree copies any vertex received."""
        return max(len(label) for label in self._labels.values())
