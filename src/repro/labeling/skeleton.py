"""Skeleton schemes: labeling the workflow specification (Section 5.1).

A skeleton-based scheme first labels the small, fixed specification graphs
``G(S) = {g0} + implementation graphs`` with *any* static scheme, then
extends those skeleton labels to runs.  Two simple skeleton schemes are
evaluated by the paper:

* **TCL** -- precompute the transitive closure of every specification
  graph; a vertex's label is its topological index plus the bitset of its
  ancestors (exactly the Section 3.2 construction applied statically).
  O(1) queries; ``i - 1`` bits for the i-th vertex.
* **BFS** -- no labels at all; answer each query with a breadth-first
  search over the specification graph.  Zero space, linear query time.

Both expose the same interface, so the run-labeling schemes are
parameterized by the skeleton scheme exactly like ``DRL(TCL)`` /
``DRL(BFS)`` in Section 7.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Dict, Mapping

from repro.errors import LabelingError
from repro.graphs.digraph import NamedDAG
from repro.graphs.reachability import TransitiveClosure, reaches
from repro.workflow.specification import GraphKey, Specification


class SkeletonScheme(ABC):
    """Interface shared by all skeleton schemes.

    Implementations answer reachability between two vertices of one
    specification graph in the *reflexive* sense (``u`` reaches ``u``).
    ``total_bits`` and ``build_seconds`` feed Table 2 (preprocessing
    overhead).
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.build_seconds: float = 0.0

    @abstractmethod
    def reaches(self, key: GraphKey, u: int, v: int) -> bool:
        """Does vertex ``u`` reach vertex ``v`` inside graph ``key``?"""

    @abstractmethod
    def total_bits(self) -> int:
        """Total storage of all skeleton labels, in bits."""


class _GraphTable:
    """Shared bookkeeping: a named set of DAGs to answer queries over."""

    def __init__(self, graphs: Mapping[GraphKey, NamedDAG]) -> None:
        self._graphs = dict(graphs)

    def graph(self, key: GraphKey) -> NamedDAG:
        try:
            return self._graphs[key]
        except KeyError:
            raise LabelingError(f"unknown skeleton graph {key!r}") from None

    @property
    def graphs(self) -> Dict[GraphKey, NamedDAG]:
        return self._graphs


class TCLSkeleton(SkeletonScheme):
    """Transitive-closure skeleton labels (the paper's ``TCL``).

    The label of the i-th vertex (in topological order) is the ``i-1``-bit
    ancestor bitset of Section 3.2; a query is two O(1) word operations.
    """

    name = "TCL"

    def __init__(self, graphs: Mapping[GraphKey, NamedDAG]) -> None:
        super().__init__()
        start = time.perf_counter()
        self._table = _GraphTable(graphs)
        self._closures: Dict[GraphKey, TransitiveClosure] = {
            key: TransitiveClosure(g) for key, g in self._table.graphs.items()
        }
        self.build_seconds = time.perf_counter() - start

    def reaches(self, key: GraphKey, u: int, v: int) -> bool:
        try:
            closure = self._closures[key]
        except KeyError:
            raise LabelingError(f"unknown skeleton graph {key!r}") from None
        return closure.reaches(u, v)

    def total_bits(self) -> int:
        # The i-th vertex stores i-1 bits of ancestor bitset: n(n-1)/2 per
        # graph (matching the paper's "even linear-size skeleton labels
        # take negligible storage").
        total = 0
        for closure in self._closures.values():
            n = len(closure)
            total += n * (n - 1) // 2
        return total


class BFSSkeleton(SkeletonScheme):
    """The label-free skeleton scheme (the paper's ``BFS``).

    Stores nothing; every query walks the specification graph.
    """

    name = "BFS"

    def __init__(self, graphs: Mapping[GraphKey, NamedDAG]) -> None:
        super().__init__()
        self._table = _GraphTable(graphs)

    def reaches(self, key: GraphKey, u: int, v: int) -> bool:
        return reaches(self._table.graph(key), u, v)

    def total_bits(self) -> int:
        return 0


def spec_graph_table(spec: Specification) -> Dict[GraphKey, NamedDAG]:
    """The DAGs of ``G(S)``, keyed like the specification's graphs."""
    return {key: g.dag for key, g in spec.graphs_to_label().items()}


def make_skeleton(spec: Specification, kind: str = "tcl") -> SkeletonScheme:
    """Build a skeleton scheme over ``G(S)``; ``kind`` is 'tcl' or 'bfs'."""
    table = spec_graph_table(spec)
    if kind == "tcl":
        return TCLSkeleton(table)
    if kind == "bfs":
        return BFSSkeleton(table)
    raise LabelingError(f"unknown skeleton kind {kind!r}; expected 'tcl'|'bfs'")
