"""Binary serialization of reachability labels, keyed by scheme name.

The bit accounting of :meth:`DRL.label_bits` claims a label fits in so
many bits; this module makes the claim concrete by actually encoding
labels into a self-delimiting bitstring and decoding them back.  The
wire format per DRL entry:

* ``index``    -- Elias-gamma coded (self-delimiting, ~2 log i bits);
* ``kind``     -- 2 bits (N=0, L=1, F=2, R=3);
* ``has_skl``  -- 1 bit, followed (when set) by a fixed-width graph-key
  ordinal and vertex ordinal (the "pointer" into the shared skeleton
  labels);
* ``has_rec``  -- 1 bit, followed (when set) by the two recursion flags.

The encoded size is within a small constant factor of the accounted
size (gamma coding doubles the index bits to make them self-delimiting);
round-tripping is exact, which the property tests assert.

Since the scheme layer (:mod:`repro.schemes`) made labeling pluggable,
persistence dispatches on *registered scheme names*: every dynamic
scheme the service can host has a codec here (``drl``, ``naive``,
``path-position``), resolved via :meth:`LabelCodec.for_scheme` /
:func:`codec_for_scheme`, and extensions can :func:`register_codec`
their own.  Every codec exposes the same two-method surface
(``encode(label) -> (payload, bit_length)`` / ``decode(payload,
bit_length) -> label``), which is all :mod:`repro.io.labelstore` needs.

Wire versions
-------------
The ``drl`` codec is :class:`PackedLabelCodec` (wire version 2): it
encodes straight from the packed representation of
:mod:`repro.labeling.compact` -- no Entry objects are materialized on
either side of a checkpoint -- and stores the skeleton pointer as one
fixed-width *interned skeleton id* (``log2 sum |V_g|`` bits, never
wider and usually narrower than version 1's separate graph + vertex
ordinals, so stores shrink).  A codec advertises its format with
``wire_version``; stores record it, and ``decode_compat`` keeps
version-1 stores (the per-entry graph/vertex pointer format of
:class:`LabelCodec`) loadable forever.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import LabelingError
from repro.labeling.bits import pointer_bits
from repro.labeling.compact import (
    META_HAS_REC,
    META_HAS_SKL,
    META_KIND_MASK,
    META_REC1,
    META_REC2,
    META_SID_SHIFT,
    PackedLabel,
    SkeletonBitsets,
    is_packed,
    pack_label,
)
from repro.labeling.drl import Entry, Label, SkeletonRef
from repro.labeling.naive_dynamic import NaiveLabel
from repro.parsetree.explicit import NodeKind
from repro.workflow.specification import Specification

_KIND_CODES = {NodeKind.N: 0, NodeKind.L: 1, NodeKind.F: 2, NodeKind.R: 3}
_KIND_FROM_CODE = {v: k for k, v in _KIND_CODES.items()}


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write_bit(self, bit: int) -> None:
        self._bits.append(1 if bit else 0)

    def write_uint(self, value: int, width: int) -> None:
        """Write ``value`` in ``width`` bits, most significant first."""
        if value < 0 or value >= (1 << width):
            raise LabelingError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append(value >> shift & 1)

    def write_gamma(self, value: int) -> None:
        """Elias-gamma code for ``value >= 0`` (coded as value + 1)."""
        n = value + 1
        width = n.bit_length()
        for _ in range(width - 1):
            self._bits.append(0)
        self.write_uint(n, width)

    def __len__(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        out = bytearray()
        for i in range(0, len(self._bits), 8):
            byte = 0
            for bit in self._bits[i : i + 8]:
                byte = (byte << 1) | bit
            byte <<= max(0, 8 - len(self._bits[i : i + 8]))
            out.append(byte)
        return bytes(out)


class BitReader:
    """Sequential reader over a bit buffer."""

    def __init__(self, data: bytes, bit_length: int) -> None:
        self._data = data
        self._length = bit_length
        self._pos = 0

    def read_bit(self) -> int:
        if self._pos >= self._length:
            raise LabelingError("bitstring exhausted")
        byte = self._data[self._pos // 8]
        bit = byte >> (7 - self._pos % 8) & 1
        self._pos += 1
        return bit

    def read_uint(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_gamma(self) -> int:
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
        value = 1
        for _ in range(zeros):
            value = (value << 1) | self.read_bit()
        return value - 1

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._length


class LabelCodec:
    """Encode/decode reference (entry-tuple) DRL labels: wire version 1.

    Kept for version-1 stores and for tooling that works on the
    reference representation; new stores are written by
    :class:`PackedLabelCodec`.  :meth:`for_scheme` is the dispatch
    point for other schemes' labels: it resolves a registered scheme
    name to that scheme's current codec.
    """

    wire_version = 1

    scheme = "drl"

    @classmethod
    def for_scheme(
        cls, scheme: str, spec: Optional[Specification] = None
    ):
        """The codec for a registered scheme's labels."""
        return codec_for_scheme(scheme, spec)

    def __init__(self, spec: Specification) -> None:
        self.spec = spec
        self._keys: List[str] = list(spec.graph_keys())
        self._key_ordinal: Dict[str, int] = {
            key: i for i, key in enumerate(self._keys)
        }
        self._key_bits = pointer_bits(max(len(self._keys), 2))
        self._vertex_bits = pointer_bits(max(spec.max_graph_size, 2))

    # ------------------------------------------------------------------
    def encode(self, label: Label) -> Tuple[bytes, int]:
        """Encode a label; returns ``(payload, bit_length)``."""
        writer = BitWriter()
        writer.write_gamma(len(label))
        for entry in label:
            writer.write_gamma(entry.index)
            writer.write_uint(_KIND_CODES[entry.kind], 2)
            if entry.skl is None:
                writer.write_bit(0)
            else:
                writer.write_bit(1)
                writer.write_uint(self._key_ordinal[entry.skl.key], self._key_bits)
                writer.write_uint(entry.skl.vertex, self._vertex_bits)
            if entry.rec1 is None:
                writer.write_bit(0)
            else:
                writer.write_bit(1)
                writer.write_bit(1 if entry.rec1 else 0)
                writer.write_bit(1 if entry.rec2 else 0)
        return writer.to_bytes(), len(writer)

    def decode(self, payload: bytes, bit_length: int) -> Label:
        """Decode a label previously produced by :meth:`encode`."""
        reader = BitReader(payload, bit_length)
        count = reader.read_gamma()
        entries = []
        for _ in range(count):
            index = reader.read_gamma()
            kind = _KIND_FROM_CODE[reader.read_uint(2)]
            skl = None
            if reader.read_bit():
                key = self._keys[reader.read_uint(self._key_bits)]
                vertex = reader.read_uint(self._vertex_bits)
                skl = SkeletonRef(key, vertex)
            rec1 = rec2 = None
            if reader.read_bit():
                rec1 = bool(reader.read_bit())
                rec2 = bool(reader.read_bit())
            entries.append(
                Entry(index=index, kind=kind, skl=skl, rec1=rec1, rec2=rec2)
            )
        return tuple(entries)


class PackedLabelCodec:
    """Wire version 2 of the DRL codec: packed labels end to end.

    Encodes :data:`~repro.labeling.compact.PackedLabel` triples without
    ever unpacking them into :class:`Entry` objects -- a checkpoint of
    a packed session is one pass over machine ints -- and decodes back
    to packed triples, so restore skips the unpack/repack round-trip
    too.  The per-entry format::

        gamma(index)  2 kind bits  has_skl[ + fixed-width skeleton id]
        has_rec[ + rec1 + rec2]

    The skeleton id is the deterministic interned ordinal of
    :class:`~repro.labeling.compact.SkeletonBitsets`; its fixed width
    ``pointer_bits(sum |V_g|)`` is never wider than version 1's
    ``pointer_bits(|G|) + pointer_bits(max |V_g|)`` pair, so stores
    only shrink.  ``decode_compat`` accepts version-1 payloads (the
    :class:`LabelCodec` entry format) and packs them on the way in.
    """

    scheme = "drl"
    wire_version = 2

    def __init__(self, spec: Specification) -> None:
        if spec is None:
            raise LabelingError("the drl codec needs the specification")
        self.spec = spec
        self.bitsets = SkeletonBitsets(spec)
        self._sid_bits = pointer_bits(max(self.bitsets.num_ids, 2))
        # version-1 payloads still arrive through decode_compat
        self._legacy = LabelCodec(spec)

    # ------------------------------------------------------------------
    def encode(self, label: "PackedLabel | Label") -> Tuple[bytes, int]:
        """Encode a packed (or reference, packed on the fly) label."""
        if not is_packed(label):
            label = pack_label(self.bitsets, label)
        indexes, prefix, last = label
        writer = BitWriter()
        write_gamma = writer.write_gamma
        write_bit = writer.write_bit
        write_uint = writer.write_uint
        sid_bits = self._sid_bits
        count = len(indexes)
        write_gamma(count)
        final = count - 1
        for position in range(count):
            meta = prefix[position] if position < final else last
            write_gamma(indexes[position])
            write_uint(meta & META_KIND_MASK, 2)
            if meta & META_HAS_SKL:
                write_bit(1)
                write_uint(meta >> META_SID_SHIFT, sid_bits)
            else:
                write_bit(0)
            if meta & META_HAS_REC:
                write_bit(1)
                write_bit(1 if meta & META_REC1 else 0)
                write_bit(1 if meta & META_REC2 else 0)
            else:
                write_bit(0)
        return writer.to_bytes(), len(writer)

    def decode(self, payload: bytes, bit_length: int) -> PackedLabel:
        """Decode a version-2 payload back into a packed label."""
        reader = BitReader(payload, bit_length)
        count = reader.read_gamma()
        if count < 1:
            raise LabelingError("packed label payload has no entries")
        sid_bits = self._sid_bits
        indexes: List[int] = []
        metas: List[int] = []
        for _ in range(count):
            indexes.append(reader.read_gamma())
            meta = reader.read_uint(2)
            if reader.read_bit():
                sid = reader.read_uint(sid_bits)
                if sid >= self.bitsets.num_ids:
                    raise LabelingError(
                        f"skeleton id {sid} out of range for this spec"
                    )
                meta |= META_HAS_SKL | (sid << META_SID_SHIFT)
            if reader.read_bit():
                meta |= META_HAS_REC
                if reader.read_bit():
                    meta |= META_REC1
                if reader.read_bit():
                    meta |= META_REC2
            metas.append(meta)
        return (tuple(indexes), tuple(metas[:-1]), metas[-1])

    def decode_compat(
        self, payload: bytes, bit_length: int, wire: int
    ) -> PackedLabel:
        """Decode any supported wire version into a packed label."""
        if wire == self.wire_version:
            return self.decode(payload, bit_length)
        if wire == 1:
            legacy = self._legacy.decode(payload, bit_length)
            return pack_label(self.bitsets, legacy)
        raise LabelingError(
            f"unsupported drl label wire version {wire!r}; "
            f"supported: 1, {self.wire_version}"
        )


class NaiveLabelCodec:
    """Codec for the Section 3.2 scheme: gamma rank + ``i - 1`` ancestor bits."""

    scheme = "naive"

    def __init__(self, spec: Optional[Specification] = None) -> None:
        self.spec = spec  # unused: the naive scheme is spec-free

    def encode(self, label: NaiveLabel) -> Tuple[bytes, int]:
        writer = BitWriter()
        writer.write_gamma(label.index - 1)
        writer.write_uint(label.ancestors, label.index - 1)
        return writer.to_bytes(), len(writer)

    def decode(self, payload: bytes, bit_length: int) -> NaiveLabel:
        reader = BitReader(payload, bit_length)
        index = reader.read_gamma() + 1
        ancestors = reader.read_uint(index - 1)
        return NaiveLabel(index=index, ancestors=ancestors)


class PositionLabelCodec:
    """Codec for path-position labels: one gamma-coded integer."""

    scheme = "path-position"

    def __init__(self, spec: Optional[Specification] = None) -> None:
        self.spec = spec  # unused: positions carry no spec references

    def encode(self, label: int) -> Tuple[bytes, int]:
        writer = BitWriter()
        writer.write_gamma(label)
        return writer.to_bytes(), len(writer)

    def decode(self, payload: bytes, bit_length: int) -> int:
        reader = BitReader(payload, bit_length)
        return reader.read_gamma()


# ---------------------------------------------------------------------------
# scheme-name dispatch
# ---------------------------------------------------------------------------

# scheme name -> codec factory; a factory takes the (possibly None)
# specification and returns an encode/decode object.
_CODEC_FACTORIES: Dict[str, Callable[[Optional[Specification]], object]] = {}


def register_codec(
    scheme: str, factory: Callable[[Optional[Specification]], object]
) -> None:
    """Register (or override) the label codec for one scheme name."""
    _CODEC_FACTORIES[scheme.strip().lower()] = factory


register_codec("drl", lambda spec: PackedLabelCodec(spec))
register_codec("naive", NaiveLabelCodec)
register_codec("path-position", PositionLabelCodec)


def codec_for_scheme(scheme: str, spec: Optional[Specification] = None):
    """The codec registered for ``scheme``; :class:`LabelingError` if none.

    Static schemes have no persistence codec on purpose -- their labels
    are rebuilt from the frozen graph, not stored incrementally.
    """
    try:
        factory = _CODEC_FACTORIES[scheme.strip().lower()]
    except KeyError:
        raise LabelingError(
            f"no label codec registered for scheme {scheme!r}; "
            f"persistable schemes: {sorted(_CODEC_FACTORIES)}"
        ) from None
    return factory(spec)
