"""The Example 15 scheme: position labels for path-shaped run languages.

Section 6 shows the Omega(n) execution-based lower bound only for
*parallel* recursive workflows and leaves series-only recursion open;
Example 15 exhibits a nonlinear (series-)recursive grammar -- Figure 12
-- whose runs are simple paths, where the trivial dynamic scheme "label
the i-th inserted vertex with i" is compact and exact.

:class:`PathPositionScheme` implements exactly that: O(log n)-bit labels,
O(1) queries, fully dynamic -- but *only sound for specifications whose
every run is a path* (checked structurally as insertions arrive).  It
turns the paper's closing open-problem discussion into running code.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ExecutionError, LabelingError, UnsupportedWorkflowError
from repro.labeling.bits import uint_bits
from repro.workflow.execution import Insertion
from repro.workflow.grammar import GrammarInfo, analyze_grammar
from repro.workflow.specification import Specification

# a label is simply the insertion position (0-based)
PositionLabel = int


def runs_are_paths(spec: Specification, info: Optional[GrammarInfo] = None) -> bool:
    """Sufficient structural check that every run of ``spec`` is a path.

    True when every specification graph is itself a path (out-degree and
    in-degree at most 1) and there are no fork modules: series and
    single replacements of path bodies inside paths stay paths.
    """
    if spec.forks:
        return False
    for key in spec.graph_keys():
        graph = spec.graph(key)
        for v in graph.vertices():
            if graph.dag.out_degree(v) > 1 or graph.dag.in_degree(v) > 1:
                return False
    return True


class PathPositionScheme:
    """Dynamic position labels for path-shaped runs (Example 15).

    ``insert`` labels each vertex with its insertion position; on a path
    the (unique) topological order *is* the reachability order, so
    ``u ~> v  iff  position(u) <= position(v)``.  Insertions that reveal
    a non-path structure raise immediately.
    """

    def __init__(self, spec: Specification, info: Optional[GrammarInfo] = None):
        if not runs_are_paths(spec, info):
            raise UnsupportedWorkflowError(
                "PathPositionScheme needs a specification whose runs are "
                "simple paths (no forks, path-shaped bodies)"
            )
        self.spec = spec
        self._labels: Dict[int, PositionLabel] = {}
        self._last_vid: Optional[int] = None

    # ------------------------------------------------------------------
    def insert(self, vid: int, preds: Iterable[int]) -> PositionLabel:
        """Label the next vertex of the path execution."""
        if vid in self._labels:
            raise ExecutionError(f"vertex {vid} inserted twice")
        pred_list = list(preds)
        if len(pred_list) > 1:
            raise ExecutionError("run is not a path: vertex has two inputs")
        if self._last_vid is None:
            if pred_list:
                raise ExecutionError("first vertex cannot have predecessors")
        elif pred_list != [self._last_vid]:
            raise ExecutionError(
                "run is not a path: insertion does not extend the tail"
            )
        label = len(self._labels)
        self._labels[vid] = label
        self._last_vid = vid
        return label

    def insert_all(self, insertions: Iterable[Insertion]) -> Dict[int, PositionLabel]:
        """Label a whole insertion stream; returns vid -> label."""
        for ins in insertions:
            self.insert(ins.vid, ins.preds)
        return dict(self._labels)

    def label(self, vid: int) -> PositionLabel:
        """The position label of an inserted vertex."""
        try:
            return self._labels[vid]
        except KeyError:
            raise LabelingError(f"vertex {vid} has no label") from None

    @property
    def labels(self) -> Dict[int, PositionLabel]:
        """The live vid -> label map (labels are write-once)."""
        return self._labels

    # ------------------------------------------------------------------
    @staticmethod
    def query(label_u: PositionLabel, label_v: PositionLabel) -> bool:
        """Reflexive reachability: earlier position reaches later."""
        return label_u <= label_v

    @staticmethod
    def label_bits(label: PositionLabel) -> int:
        """Size of one position label."""
        return uint_bits(label)
