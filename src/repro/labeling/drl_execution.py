"""Execution-based DRL: labeling vertices one by one (Section 5.3).

The derivation-based labeler receives whole derivation steps; the
execution-based labeler receives single vertex insertions ``g + (v, C)``
in some topological order and must infer the derivation structure on the
fly.  Two inference modes are supported, matching the paper:

* ``mode='name'`` -- pure name inference.  Requires the Section 5.3
  naming conditions: (1) vertices of each specification graph have
  distinct names, (2) source/sink names are globally unique atomic
  "dummy modules".  A vertex whose name is the source name of some
  implementation graph announces a new derivation step; every other
  vertex is matched to an already-announced instance by its name and its
  predecessor set.
* ``mode='logged'`` -- each insertion carries the run-to-specification
  mapping ``(graph key, copy token, template vertex)`` that scientific
  workflow systems record in execution logs; no naming conditions needed.

Both modes grow the same explicit parse tree as Algorithm 2 (children of
loop/fork nodes are appended copy by copy instead of all at once) and use
the same :class:`~repro.labeling.drl.LabelFactory`, so they assign exactly
the same labels as the derivation-based scheme.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ExecutionError
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.labeling.drl import DRL, Label
from repro.parsetree.explicit import NodeKind, ParseNode
from repro.workflow.execution import Execution, Insertion, LogOrigin
from repro.workflow.specification import GraphKey, START_KEY
from repro.workflow.validation import check_naming_conditions

_MODES = ("name", "logged")


class _InstanceState:
    """One announced copy of a specification graph, filling up vertex by
    vertex as its module executions arrive."""

    __slots__ = ("node", "key", "template", "bound", "slots", "token")

    def __init__(
        self,
        node: ParseNode,
        key: GraphKey,
        template: TwoTerminalGraph,
        token: Optional[int] = None,
    ) -> None:
        self.node = node
        self.key = key
        self.template = template
        self.bound: Dict[int, int] = {}  # atomic template vid -> run vid
        self.slots: Dict[int, "_Slot"] = {}  # composite template vid -> slot
        self.token = token  # logged-mode copy token


class _Slot:
    """A composite occurrence awaiting (or undergoing) expansion."""

    __slots__ = ("owner", "tv", "head", "special_node", "copies", "expansion")

    def __init__(self, owner: _InstanceState, tv: int, head: str) -> None:
        self.owner = owner
        self.tv = tv
        self.head = head
        self.special_node: Optional[ParseNode] = None  # L or F node
        self.copies: List[_InstanceState] = []  # loop/fork copies, in order
        self.expansion: Optional[_InstanceState] = None  # plain expansion

    @property
    def is_pending(self) -> bool:
        return self.special_node is None and self.expansion is None


class DRLExecutionLabeler:
    """On-the-fly labeler for graph executions (Definition 8).

    Call :meth:`insert` for every vertex insertion, in topological order;
    it returns the vertex's final reachability label.  Labels agree with
    the derivation-based labeler's and are queried with the same
    :meth:`DRL.query` predicate.
    """

    def __init__(self, scheme: DRL, mode: str = "name") -> None:
        if mode not in _MODES:
            raise ExecutionError(f"unknown mode {mode!r}; expected {_MODES}")
        self.scheme = scheme
        self.spec = scheme.spec
        self.info = scheme.info
        self.mode = mode
        if mode == "name":
            check_naming_conditions(self.spec)
        self.factory = scheme.make_factory()
        self.labels: Dict[int, Label] = {}
        self.root: Optional[ParseNode] = None
        self._root_state: Optional[_InstanceState] = None
        # name mode lookups --------------------------------------------
        # source name -> graph key (condition 2 makes this unique)
        self._source_names: Dict[str, GraphKey] = {}
        for key in self.spec.graph_keys():
            template = self.spec.graph(key)
            self._source_names[template.name(template.source)] = key
        # open instances expecting an internal vertex with a given name
        self._expecting: Dict[str, List[Tuple[_InstanceState, int]]] = {}
        # logged mode lookup: copy token -> instance state
        self._by_token: Dict[int, _InstanceState] = {}
        # open slots by head name, for source matching
        self._slots_by_head: Dict[str, List[_Slot]] = {}
        self._open_loops: List[_Slot] = []
        self._open_forks: List[_Slot] = []

    # ------------------------------------------------------------------
    # anchors and frontiers
    # ------------------------------------------------------------------
    def _anchor(self, inst: _InstanceState, tv: int) -> Optional[FrozenSet[int]]:
        """Run vertices acting as the downstream face of template vertex
        ``tv``: the vertex itself when atomic, the sinks of its expansion
        when composite.  None while unresolved."""
        name = inst.template.name(tv)
        if self.spec.is_atomic(name):
            run_vid = inst.bound.get(tv)
            return None if run_vid is None else frozenset((run_vid,))
        slot = inst.slots.get(tv)
        if slot is None or slot.is_pending:
            return None
        if slot.special_node is not None:
            if slot.special_node.kind is NodeKind.L:
                last = slot.copies[-1]
                return self._anchor(last, last.template.sink)
            sinks: Set[int] = set()
            for copy in slot.copies:
                part = self._anchor(copy, copy.template.sink)
                if part is None:
                    return None
                sinks.update(part)
            return frozenset(sinks)
        assert slot.expansion is not None
        return self._anchor(slot.expansion, slot.expansion.template.sink)

    def _expected_preds(
        self, inst: _InstanceState, tv: int
    ) -> Optional[FrozenSet[int]]:
        """Run-level predecessor set a vertex derived at ``tv`` will carry."""
        preds: Set[int] = set()
        for p in inst.template.dag.predecessors(tv):
            part = self._anchor(inst, p)
            if part is None:
                return None
            preds.update(part)
        return frozenset(preds)

    # ------------------------------------------------------------------
    # instance bookkeeping
    # ------------------------------------------------------------------
    def _open_instance(
        self, node: ParseNode, key: GraphKey, token: Optional[int]
    ) -> _InstanceState:
        template = self.spec.graph(key)
        inst = _InstanceState(node, key, template, token)
        for tv in template.vertices():
            name = template.name(tv)
            if self.spec.is_atomic(name):
                if tv != template.source:
                    self._expecting.setdefault(name, []).append((inst, tv))
            else:
                slot = _Slot(inst, tv, name)
                inst.slots[tv] = slot
                self._slots_by_head.setdefault(name, []).append(slot)
        if token is not None:
            self._by_token[token] = inst
        return inst

    def _bind(self, inst: _InstanceState, tv: int, vid: int) -> Label:
        inst.bound[tv] = vid
        label = self.factory.label(inst.node, tv)
        self.labels[vid] = label
        return label

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def insert(self, insertion: Insertion) -> Label:
        """Label one inserted vertex; the label is final immediately."""
        vid, name, preds = insertion.vid, insertion.name, insertion.preds
        if vid in self.labels:
            raise ExecutionError(f"vertex {vid} inserted twice")
        if self.root is None:
            return self._start_run(insertion)
        key, token = self._classify_source(insertion)
        if key is not None:
            if self.mode == "logged":
                return self._handle_source_logged(insertion, key, token)
            return self._handle_source(vid, name, preds, key, None)
        return self._handle_internal(insertion)

    def label(self, vid: int) -> Label:
        """The label of an already inserted vertex."""
        try:
            return self.labels[vid]
        except KeyError:
            raise ExecutionError(f"vertex {vid} was never inserted") from None

    def run(self, execution: Execution) -> Dict[int, Label]:
        """Label a whole recorded execution; returns vid -> label."""
        for insertion in execution:
            self.insert(insertion)
        return self.labels

    # ------------------------------------------------------------------
    def _classify_source(
        self, insertion: Insertion
    ) -> Tuple[Optional[GraphKey], Optional[int]]:
        """(graph key, copy token) when the insertion starts a new copy."""
        if self.mode == "logged":
            key, token, tv = self._require_origin(insertion)
            template = self.spec.graph(key)
            if tv == template.source:
                return key, token
            return None, None
        return self._source_names.get(insertion.name), None

    def _require_origin(self, insertion: Insertion) -> LogOrigin:
        if insertion.origin is None:
            raise ExecutionError(
                f"logged mode needs origin metadata on vertex {insertion.vid}"
            )
        return insertion.origin

    def _start_run(self, insertion: Insertion) -> Label:
        """First insertion: must be the source of the start graph."""
        start_template = self.spec.graph(START_KEY)
        expected = start_template.name(start_template.source)
        if insertion.name != expected:
            raise ExecutionError(
                f"first insertion {insertion.name!r} is not the start "
                f"graph's source {expected!r}"
            )
        if insertion.preds:
            raise ExecutionError("the start vertex cannot have predecessors")
        if self.mode == "logged":
            token = self._require_origin(insertion)[1]
        else:
            token = insertion.origin[1] if insertion.origin is not None else None
        self.root = ParseNode(NodeKind.N, None)
        self.factory.register_node(self.root, START_KEY, None)
        self._root_state = self._open_instance(self.root, START_KEY, token)
        return self._bind(self._root_state, start_template.source, insertion.vid)

    # ------------------------------------------------------------------
    # new instance copies
    # ------------------------------------------------------------------
    def _handle_source_logged(
        self, insertion: Insertion, key: GraphKey, token: Optional[int]
    ) -> Label:
        """Logged mode: the log names the composite occurrence directly."""
        if insertion.slot is None:
            raise ExecutionError(
                f"vertex {insertion.vid}: logged mode needs slot metadata "
                "on instance sources"
            )
        parent_token, tv = insertion.slot
        owner = self._by_token.get(parent_token)
        if owner is None:
            raise ExecutionError(
                f"vertex {insertion.vid}: unknown parent copy {parent_token}"
            )
        slot = owner.slots.get(tv)
        if slot is None:
            raise ExecutionError(
                f"vertex {insertion.vid}: template vertex {tv} of "
                f"{owner.key!r} is not composite"
            )
        template = self.spec.graph(key)
        if slot.special_node is not None:
            node = ParseNode(NodeKind.N, slot.special_node)
            self.factory.register_node(node, key, None)
            inst = self._open_instance(node, key, token)
            slot.copies.append(inst)
            return self._bind(inst, template.source, insertion.vid)
        if not slot.is_pending:
            raise ExecutionError(
                f"vertex {insertion.vid}: slot already expanded"
            )
        return self._expand_fresh(slot, key, template, insertion.vid, token)

    def _handle_source(
        self,
        vid: int,
        name: str,
        preds: FrozenSet[int],
        key: GraphKey,
        token: Optional[int],
    ) -> Label:
        head = self.spec.head_of(key)
        if head is None:
            raise ExecutionError(
                f"vertex {vid}: start graph source {name!r} re-executed"
            )
        template = self.spec.graph(key)
        matches: List[Tuple[str, object]] = []
        # (a) next copy of an open loop: predecessor is the previous
        # copy's sink.
        for slot in self._open_loops:
            if slot.copies[0].key != key:
                continue
            last = slot.copies[-1]
            anchor = self._anchor(last, last.template.sink)
            if anchor == preds:
                matches.append(("loop", slot))
        # (b) another copy of an open fork: same frontier as the first.
        for slot in self._open_forks:
            if slot.copies[0].key != key:
                continue
            if self._expected_preds(slot.owner, slot.tv) == preds:
                matches.append(("fork", slot))
        # (c) a pending composite occurrence with this frontier.
        for slot in self._slots_by_head.get(head, ()):
            if not slot.is_pending:
                continue
            if self._expected_preds(slot.owner, slot.tv) == preds:
                matches.append(("fresh", slot))
        if not matches:
            raise ExecutionError(
                f"vertex {vid} ({name!r}): no composite occurrence matches "
                f"predecessors {sorted(preds)}"
            )
        if len(matches) > 1:
            raise ExecutionError(
                f"vertex {vid} ({name!r}): ambiguous attribution "
                f"({[m[0] for m in matches]})"
            )
        kind_tag, slot = matches[0]
        assert isinstance(slot, _Slot)
        if kind_tag == "loop" or kind_tag == "fork":
            node = ParseNode(NodeKind.N, slot.special_node)
            self.factory.register_node(node, key, None)
            inst = self._open_instance(node, key, token)
            slot.copies.append(inst)
            return self._bind(inst, template.source, vid)
        return self._expand_fresh(slot, key, template, vid, token)

    def _expand_fresh(
        self,
        slot: _Slot,
        key: GraphKey,
        template: TwoTerminalGraph,
        vid: int,
        token: Optional[int],
    ) -> Label:
        """Open the parse-tree structure for a first expansion of ``slot``."""
        owner = slot.owner
        head = slot.head
        if self._is_designated(owner, slot.tv):
            # Recursion chain continuation: sibling under the R node.
            r_node = owner.node.parent
            if r_node is None or r_node.kind is not NodeKind.R:
                raise ExecutionError("recursive expansion outside an R chain")
            node = ParseNode(NodeKind.N, r_node)
            self.factory.register_node(node, key, None)
        elif self.spec.is_loop(head) or self.spec.is_fork(head):
            kind = NodeKind.L if self.spec.is_loop(head) else NodeKind.F
            special = ParseNode(kind, owner.node)
            self.factory.register_node(special, None, slot.tv)
            slot.special_node = special
            if kind is NodeKind.L:
                self._open_loops.append(slot)
            else:
                self._open_forks.append(slot)
            node = ParseNode(NodeKind.N, special)
            self.factory.register_node(node, key, None)
        elif self._body_designated(key) is not None:
            r_node = ParseNode(NodeKind.R, owner.node)
            self.factory.register_node(r_node, None, slot.tv)
            node = ParseNode(NodeKind.N, r_node)
            self.factory.register_node(node, key, None)
        else:
            node = ParseNode(NodeKind.N, owner.node)
            self.factory.register_node(node, key, slot.tv)
        inst = self._open_instance(node, key, token)
        if slot.special_node is not None:
            slot.copies.append(inst)
        else:
            slot.expansion = inst
        return self._bind(inst, template.source, vid)

    def _is_designated(self, inst: _InstanceState, tv: int) -> bool:
        if self.scheme.r_mode == "simplified":
            return False
        return self.info.is_designated(inst.key, tv)

    def _body_designated(self, key: GraphKey) -> Optional[int]:
        if self.scheme.r_mode == "simplified":
            return None
        return self.info.designated_recursive.get(key)

    # ------------------------------------------------------------------
    # internal vertices
    # ------------------------------------------------------------------
    def _handle_internal(self, insertion: Insertion) -> Label:
        vid, name, preds = insertion.vid, insertion.name, insertion.preds
        if self.mode == "logged":
            key, token, tv = self._require_origin(insertion)
            inst = self._by_token.get(token)
            if inst is None or inst.key != key:
                raise ExecutionError(
                    f"vertex {vid}: unknown or mismatched copy token {token}"
                )
            return self._bind(inst, tv, vid)
        candidates = self._expecting.get(name, [])
        hits = [
            (inst, tv)
            for inst, tv in candidates
            if tv not in inst.bound and self._expected_preds(inst, tv) == preds
        ]
        if not hits:
            raise ExecutionError(
                f"vertex {vid} ({name!r}): no open instance expects it with "
                f"predecessors {sorted(preds)}"
            )
        if len(hits) > 1:
            raise ExecutionError(
                f"vertex {vid} ({name!r}): ambiguous instance attribution"
            )
        inst, tv = hits[0]
        candidates.remove(hits[0])
        return self._bind(inst, tv, vid)
