"""Chain-decomposition reachability index for general DAGs.

The classic compression of the transitive closure (Jagadish, TODS 1990 --
reference [15] of the paper): partition the DAG into vertex-disjoint
chains (paths); for every vertex store, per chain, the earliest chain
position it reaches.  A query ``u ~> v`` checks whether ``u``'s entry
for ``v``'s chain is at or before ``v``'s position: exact, O(1) per
query after O(k) per-vertex storage, where ``k`` is the number of
chains.

Like :mod:`repro.labeling.grail`, this is a *general-purpose static*
baseline: on workflow runs its per-vertex storage grows with the chain
count (driven by fork width), whereas DRL exploits the specification to
stay logarithmic.  Used by the baseline-comparison benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import LabelingError
from repro.graphs.digraph import NamedDAG
from repro.labeling.bits import uint_bits

# per-vertex label: (chain id, position) + earliest reachable position
# per chain (None = chain unreachable).
ChainLabel = Tuple[int, int, Tuple[Optional[int], ...]]


def greedy_chain_decomposition(graph: NamedDAG) -> List[List[int]]:
    """Split the DAG into vertex-disjoint chains, greedily along edges.

    Walks vertices in topological order; each unassigned vertex starts a
    new chain that is extended along unassigned successors.  Not minimal
    (minimum chain cover needs bipartite matching) but linear-time and
    within a small factor on workflow runs.
    """
    assigned: Dict[int, int] = {}
    chains: List[List[int]] = []
    for v in graph.topological_order():
        if v in assigned:
            continue
        chain: List[int] = []
        chain_id = len(chains)
        node: Optional[int] = v
        while node is not None and node not in assigned:
            assigned[node] = chain_id
            chain.append(node)
            node = next(
                (s for s in sorted(graph.successors(node)) if s not in assigned),
                None,
            )
        chains.append(chain)
    return chains


class ChainIndex:
    """Exact reachability via chain decomposition (static)."""

    def __init__(self, graph: NamedDAG) -> None:
        self.chains = greedy_chain_decomposition(graph)
        self._position: Dict[int, Tuple[int, int]] = {}
        for chain_id, chain in enumerate(self.chains):
            for pos, v in enumerate(chain):
                self._position[v] = (chain_id, pos)
        k = len(self.chains)
        # earliest reachable position per chain, computed in reverse
        # topological order: row(v) = min over successors, plus v itself.
        infinity = None
        rows: Dict[int, List[Optional[int]]] = {}
        for v in reversed(graph.topological_order()):
            row: List[Optional[int]] = [infinity] * k
            chain_id, pos = self._position[v]
            row[chain_id] = pos
            for succ in graph.successors(v):
                succ_row = rows[succ]
                for i in range(k):
                    entry = succ_row[i]
                    if entry is None:
                        continue
                    if row[i] is None or entry < row[i]:
                        row[i] = entry
            rows[v] = row
        self._labels: Dict[int, ChainLabel] = {
            v: (self._position[v][0], self._position[v][1], tuple(rows[v]))
            for v in graph.vertices()
        }

    # ------------------------------------------------------------------
    def label(self, vid: int) -> ChainLabel:
        """The chain label of one vertex."""
        try:
            return self._labels[vid]
        except KeyError:
            raise LabelingError(f"vertex {vid} not indexed") from None

    @staticmethod
    def query(label_u: ChainLabel, label_v: ChainLabel) -> bool:
        """Does ``u`` reach ``v``?  Reflexive, label-only, O(1)."""
        chain_v, pos_v, _ = label_v
        reach = label_u[2][chain_v]
        return reach is not None and reach <= pos_v

    def reaches(self, u: int, v: int) -> bool:
        """Convenience wrapper over vertex ids."""
        return self.query(self.label(u), self.label(v))

    # ------------------------------------------------------------------
    @property
    def chain_count(self) -> int:
        """Number of chains in the decomposition."""
        return len(self.chains)

    def label_bits(self, label: ChainLabel) -> int:
        """Accounted label size: position + one entry per chain."""
        chain_id, pos, row = label
        bits = uint_bits(chain_id) + uint_bits(pos)
        for entry in row:
            bits += 1  # presence flag
            if entry is not None:
                bits += uint_bits(entry)
        return bits

    def total_bits(self) -> int:
        """Total index size in bits."""
        return sum(self.label_bits(l) for l in self._labels.values())
