"""Packed DRL labels: the query hot path lowered to machine integers.

The reference representation in :mod:`repro.labeling.drl` stores a
label as a tuple of frozen :class:`~repro.labeling.drl.Entry`
dataclasses.  That is faithful to Algorithm 1 but every probe of
Algorithm 4 then pays Python object overhead: the reflexive check
deep-compares dataclasses field by field, the LCA scan does an
attribute lookup per position, and the skeleton comparison chases a
:class:`~repro.labeling.drl.SkeletonRef` through a scheme object and a
closure table.  This module keeps the *information* of a label
bit-for-bit identical while storing it as plain integers:

``PackedLabel = (indexes, meta_prefix, last_meta)``

* ``indexes`` -- the prefix-scheme child indexes along the
  root-to-context path, one machine int per entry, *including* the
  final (vertex) entry.  All vertices labeled at the same parse-tree
  node share this tuple **by object identity**, so the Algorithm 4
  index scan compares interned int tuples (a C-level loop with
  per-element identity shortcuts) instead of dataclass fields.
* ``meta_prefix`` -- one packed *meta word* per non-final entry (see
  the bit layout below).  Shared by identity across all vertices at
  the same node, exactly like ``indexes``.
* ``last_meta`` -- the meta word of the final entry, the only part of
  a label that differs between two vertices at the same node.

Meta word layout (low bits first)::

    bits 0-1   node kind        (N=0, L=1, F=2, R=3)
    bit  2     has_rec          (recursion-chain flags present)
    bit  3     rec1             (origin reaches the recursive vertex)
    bit  4     rec2             (the recursive vertex reaches the origin)
    bit  5     has_skl          (skeleton pointer present; N entries)
    bits 6+    skeleton id      (interned (graph, vertex) ref)

Skeleton ids are assigned *deterministically* -- graphs in
specification order, vertices in ascending order -- by
:class:`SkeletonBitsets`, which also lowers per-graph skeleton
reachability to precomputed descendant bitsets: ``reaches`` is a shift
and a mask, no closure object, no method dispatch.  The deterministic
numbering is what lets the serialized form
(:class:`repro.labeling.serialize.PackedLabelCodec`) store the id
directly and decode it in a fresh process.

:class:`PackedLabelFactory` mirrors the reference
:class:`~repro.labeling.drl.LabelFactory` surface (``entry`` aside)
but shares prefixes structurally: registering a node costs one tuple
extension (O(depth), once per *parse-tree node*), and labeling a
vertex after that is O(1) -- one cached-meta dict hit plus one 3-tuple
allocation, instead of an O(depth) tuple copy per vertex.

:class:`CompactDRL` is a drop-in :class:`~repro.labeling.drl.DRL`
whose labelers produce packed labels and whose :meth:`CompactDRL.query`
/ :meth:`CompactDRL.query_many_from` run the tight integer kernels.
``pack_label`` / ``unpack_label`` convert between the two
representations losslessly; the property suite in
``tests/test_packed_equivalence.py`` holds the representations to
answer-for-answer equality.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LabelingError
from repro.labeling.bits import uint_bits
from repro.labeling.drl import DRL, Entry, Label, SkeletonRef
from repro.parsetree.explicit import NodeKind, ParseNode
from repro.workflow.specification import GraphKey, Specification

# A packed label: (index vector, meta words above the final entry, the
# final entry's meta word).  len(indexes) == len(meta_prefix) + 1.
PackedLabel = Tuple[Tuple[int, ...], Tuple[int, ...], int]

# ---------------------------------------------------------------------------
# meta word layout
# ---------------------------------------------------------------------------

KIND_N = 0
KIND_L = 1
KIND_F = 2
KIND_R = 3

META_KIND_MASK = 0x3
META_HAS_REC = 1 << 2
META_REC1 = 1 << 3
META_REC2 = 1 << 4
META_HAS_SKL = 1 << 5
META_SID_SHIFT = 6

_KIND_CODE = {
    NodeKind.N: KIND_N,
    NodeKind.L: KIND_L,
    NodeKind.F: KIND_F,
    NodeKind.R: KIND_R,
}
_KIND_FROM_CODE = {code: kind for kind, code in _KIND_CODE.items()}


def is_packed(label: object) -> bool:
    """True when ``label`` is a :data:`PackedLabel` (vs an entry tuple)."""
    return (
        isinstance(label, tuple)
        and len(label) == 3
        and isinstance(label[0], tuple)
        and isinstance(label[1], tuple)
        and isinstance(label[2], int)
    )


def packed_meta_at(label: PackedLabel, position: int) -> int:
    """The meta word of entry ``position`` of a packed label."""
    prefix = label[1]
    return prefix[position] if position < len(prefix) else label[2]


class SkeletonBitsets:
    """Interned skeleton refs + descendant bitsets for one specification.

    Every ``(graph key, vertex)`` pair of ``G(S)`` gets a small integer
    id, assigned deterministically (graphs in ``spec.graph_keys()``
    order, vertices ascending) so ids agree across processes and can be
    serialized directly.  Per id the table stores the graph ordinal,
    the vertex, and the *reflexive descendant bitset* of the vertex
    inside its graph, so skeleton reachability between two interned
    refs is ``desc[a] >> vertex[b] & 1`` -- the Section 3.2 closure
    lowered to one shift and one mask.
    """

    __slots__ = ("spec", "keys", "num_ids", "key_ord", "vertex", "desc", "_sid")

    def __init__(self, spec: Specification) -> None:
        self.spec = spec
        self.keys: List[GraphKey] = list(spec.graph_keys())
        self._sid: Dict[Tuple[GraphKey, int], int] = {}
        key_ord: List[int] = []
        vertex: List[int] = []
        desc: List[int] = []
        for ordinal, key in enumerate(self.keys):
            dag = spec.graph(key).dag
            reach: Dict[int, int] = {}
            for v in reversed(dag.topological_order()):
                bits = 1 << v
                for successor in dag.successors(v):
                    bits |= reach[successor]
                reach[v] = bits
            for v in sorted(dag.vertices()):
                self._sid[(key, v)] = len(desc)
                key_ord.append(ordinal)
                vertex.append(v)
                desc.append(reach[v])
        self.key_ord = key_ord
        self.vertex = vertex
        self.desc = desc
        self.num_ids = len(desc)

    # ------------------------------------------------------------------
    def sid(self, key: GraphKey, vertex: int) -> int:
        """The interned id of skeleton vertex ``vertex`` of graph ``key``."""
        try:
            return self._sid[(key, vertex)]
        except KeyError:
            raise LabelingError(
                f"unknown skeleton vertex {vertex} of graph {key!r}"
            ) from None

    def ref_of(self, sid: int) -> SkeletonRef:
        """The :class:`SkeletonRef` an interned id stands for."""
        try:
            return SkeletonRef(self.keys[self.key_ord[sid]], self.vertex[sid])
        except IndexError:
            raise LabelingError(f"unknown skeleton id {sid}") from None

    def reaches(self, key: GraphKey, u: int, v: int) -> bool:
        """Reflexive skeleton reachability ``u ~> v`` inside ``key``."""
        return bool(self.desc[self.sid(key, u)] >> v & 1)


# ---------------------------------------------------------------------------
# pack / unpack
# ---------------------------------------------------------------------------


def pack_entry_meta(bitsets: SkeletonBitsets, entry: Entry) -> int:
    """The meta word of one reference :class:`Entry`."""
    meta = _KIND_CODE[entry.kind]
    if entry.skl is not None:
        meta |= META_HAS_SKL
        meta |= bitsets.sid(entry.skl.key, entry.skl.vertex) << META_SID_SHIFT
    if entry.rec1 is not None:
        meta |= META_HAS_REC
        if entry.rec1:
            meta |= META_REC1
        if entry.rec2:
            meta |= META_REC2
    return meta


def pack_label(bitsets: SkeletonBitsets, label: Label) -> PackedLabel:
    """Convert a reference entry-tuple label into its packed form."""
    if not label:
        raise LabelingError("cannot pack an empty label")
    indexes = tuple(entry.index for entry in label)
    metas = [pack_entry_meta(bitsets, entry) for entry in label]
    return (indexes, tuple(metas[:-1]), metas[-1])


def unpack_meta(bitsets: SkeletonBitsets, index: int, meta: int) -> Entry:
    """Reconstruct the reference :class:`Entry` of one packed entry."""
    kind = _KIND_FROM_CODE[meta & META_KIND_MASK]
    skl = None
    if meta & META_HAS_SKL:
        skl = bitsets.ref_of(meta >> META_SID_SHIFT)
    rec1 = rec2 = None
    if meta & META_HAS_REC:
        rec1 = bool(meta & META_REC1)
        rec2 = bool(meta & META_REC2)
    return Entry(index=index, kind=kind, skl=skl, rec1=rec1, rec2=rec2)


def unpack_label(bitsets: SkeletonBitsets, packed: PackedLabel) -> Label:
    """Convert a packed label back into the reference entry tuple."""
    indexes, prefix, last = packed
    metas = prefix + (last,)
    if len(indexes) != len(metas):
        raise LabelingError("malformed packed label: index/meta lengths differ")
    return tuple(
        unpack_meta(bitsets, index, meta)
        for index, meta in zip(indexes, metas)
    )


# ---------------------------------------------------------------------------
# the packed label factory
# ---------------------------------------------------------------------------


class PackedLabelFactory:
    """Structural-sharing factory producing :data:`PackedLabel` values.

    Mirrors the reference :class:`~repro.labeling.drl.LabelFactory`
    surface (``register_node`` / ``label`` / ``node_key``) so both DRL
    labelers run unchanged on either factory.  Labels share structure
    aggressively:

    * per node, the full index vector (prefix indexes + the node's own
      child index) is built **once** at registration and shared by
      object identity across every vertex labeled at the node;
    * per node, the meta words of the path above are likewise built
      once and shared;
    * per ``(graph key, template vertex)``, the final entry's meta word
      (skeleton id + recursion flags) is computed once and interned.

    After registration -- one tuple extension per parse-tree node --
    labeling a vertex is O(1): a cached-meta dict hit and a 3-tuple
    allocation, however deep the parse tree is.
    """

    def __init__(
        self,
        spec: Specification,
        info,
        skeleton,
        r_mode: str,
        bitsets: Optional[SkeletonBitsets] = None,
    ) -> None:
        self.spec = spec
        self.info = info
        self.skeleton = skeleton
        self.r_mode = r_mode
        self.bitsets = bitsets if bitsets is not None else SkeletonBitsets(spec)
        # node -> full index vector, including the node's own index
        self._indexes: Dict[ParseNode, Tuple[int, ...]] = {}
        # node -> meta words of the path strictly above the node
        self._metas: Dict[ParseNode, Tuple[int, ...]] = {}
        # node -> annotated graph key (N nodes only)
        self._key: Dict[ParseNode, GraphKey] = {}
        # (graph key, template vid) -> interned N-entry meta word
        self._n_meta: Dict[Tuple[GraphKey, int], int] = {}

    # ------------------------------------------------------------------
    def _meta_for(self, key: GraphKey, template_vid: int) -> int:
        """The interned meta word of an N entry at origin ``template_vid``."""
        cached = self._n_meta.get((key, template_vid))
        if cached is not None:
            return cached
        bitsets = self.bitsets
        meta = KIND_N | META_HAS_SKL
        meta |= bitsets.sid(key, template_vid) << META_SID_SHIFT
        recursive = None
        if self.r_mode != "simplified":
            recursive = self.info.designated_recursive.get(key)
        if recursive is not None:
            meta |= META_HAS_REC
            if bitsets.reaches(key, template_vid, recursive):
                meta |= META_REC1
            if bitsets.reaches(key, recursive, template_vid):
                meta |= META_REC2
        self._n_meta[(key, template_vid)] = meta
        return meta

    # ------------------------------------------------------------------
    def register_node(
        self,
        node: ParseNode,
        graph_key: Optional[GraphKey],
        edge_template_vid: Optional[int],
    ) -> None:
        """Record a new tree node; compute its shared prefix structure."""
        if node.kind is NodeKind.N:
            if graph_key is None:
                raise LabelingError("N nodes must carry a graph key")
            self._key[node] = graph_key
        parent = node.parent
        if parent is None:
            self._indexes[node] = (node.index,)
            self._metas[node] = ()
            return
        if parent.kind is NodeKind.N:
            if edge_template_vid is None:
                raise LabelingError(
                    "children of non-special nodes need the edge composite"
                )
            parent_meta = self._meta_for(self._key[parent], edge_template_vid)
        else:
            parent_meta = _KIND_CODE[parent.kind]
        try:
            parent_indexes = self._indexes[parent]
        except KeyError:
            raise LabelingError("node was never registered") from None
        self._indexes[node] = parent_indexes + (node.index,)
        self._metas[node] = self._metas[parent] + (parent_meta,)

    def label(self, node: ParseNode, template_vid: int) -> PackedLabel:
        """The packed label of vertex ``template_vid`` at ``node``: O(1)."""
        try:
            indexes = self._indexes[node]
        except KeyError:
            raise LabelingError("node was never registered") from None
        if node.kind is not NodeKind.N:
            raise LabelingError("vertices are labeled at N nodes only")
        return (
            indexes,
            self._metas[node],
            self._meta_for(self._key[node], template_vid),
        )

    def node_key(self, node: ParseNode) -> GraphKey:
        """Annotated graph key of a registered N node."""
        return self._key[node]


# ---------------------------------------------------------------------------
# the compact scheme
# ---------------------------------------------------------------------------


class CompactDRL(DRL):
    """DRL over packed labels: Algorithm 4 as a shift-and-mask kernel.

    A drop-in :class:`~repro.labeling.drl.DRL`: same construction
    parameters, same labeler classes (they ask the scheme for its
    factory), same bit accounting -- but labels are
    :data:`PackedLabel` triples, :meth:`query` runs on interned int
    tuples, and skeleton reachability at the LCA is one bitset probe
    through :class:`SkeletonBitsets` instead of a closure lookup.
    """

    packed = True

    def __init__(
        self,
        spec: Specification,
        skeleton: "str | object" = "tcl",
        info=None,
        r_mode: Optional[str] = None,
    ) -> None:
        super().__init__(spec, skeleton=skeleton, info=info, r_mode=r_mode)
        self.bitsets = SkeletonBitsets(spec)

    # ------------------------------------------------------------------
    def make_factory(self) -> PackedLabelFactory:
        return PackedLabelFactory(
            self.spec, self.info, self.skeleton, self.r_mode, self.bitsets
        )

    # ------------------------------------------------------------------
    def pack(self, label: Label) -> PackedLabel:
        """Pack a reference entry-tuple label produced by plain DRL."""
        return pack_label(self.bitsets, label)

    def unpack(self, packed: PackedLabel) -> Label:
        """The reference entry tuple a packed label stands for."""
        return unpack_label(self.bitsets, packed)

    # ------------------------------------------------------------------
    def query(self, label_v: PackedLabel, label_w: PackedLabel) -> bool:
        """Algorithm 4 over packed labels; answers equal the reference."""
        if label_v is label_w:
            return True
        iv, pv, lv = label_v
        iw, pw, lw = label_w
        nv = len(iv)
        nw = len(iw)
        if iv is iw:
            # same parse-tree node: the index scan is vacuous, the LCA
            # is the shared final position, and the answer is the
            # skeleton comparison of the two origins.
            if lv == lw:
                return True
            i = nv
        else:
            limit = nv if nv < nw else nw
            i = 0
            while i < limit and iv[i] == iw[i]:
                i += 1
            if i == 0:
                raise LabelingError(
                    "labels do not share a root; different runs?"
                )
            if i == limit and nv == nw and lv == lw and pv == pw:
                return True
        j = i - 1
        meta_lca = pv[j] if j < nv - 1 else lv
        kind = meta_lca & META_KIND_MASK
        if kind == KIND_N:
            mv = meta_lca
            mw = pw[j] if j < nw - 1 else lw
            if not (mv & META_HAS_SKL) or not (mw & META_HAS_SKL):
                raise LabelingError("missing skeleton pointer on N entry")
            sid_v = mv >> META_SID_SHIFT
            sid_w = mw >> META_SID_SHIFT
            bitsets = self.bitsets
            if bitsets.key_ord[sid_v] != bitsets.key_ord[sid_w]:
                raise LabelingError(
                    "origin skeleton pointers disagree on graph"
                )
            return bool(
                bitsets.desc[sid_v] >> bitsets.vertex[sid_w] & 1
            )
        if kind == KIND_L:
            return iv[i] < iw[i]
        if kind == KIND_F:
            return False
        # R: recursion chain
        if iv[i] < iw[i]:
            m = pv[i] if i < nv - 1 else lv
            if not m & META_HAS_REC:
                raise LabelingError("missing rec1 flag on R-chain entry")
            return bool(m & META_REC1)
        m = pw[i] if i < nw - 1 else lw
        if not m & META_HAS_REC:
            raise LabelingError("missing rec2 flag on R-chain entry")
        return bool(m & META_REC2)

    # ------------------------------------------------------------------
    def query_many_from(
        self,
        labels: Dict[int, PackedLabel],
        pairs: Sequence[Tuple[int, int]],
    ) -> List[bool]:
        """Batch Algorithm 4: one tight loop, labels resolved inline.

        Semantically ``[self.query(labels[u], labels[v]) for u, v in
        pairs]`` with the per-call dispatch hoisted out of the loop:
        the bitset tables are bound to locals once, the label lookup is
        fused (no intermediate pair list), and the common cases
        (identity, shared node, N-kind LCA) run without re-entering
        :meth:`query`.  ``KeyError`` propagates for unlabeled vertices.
        """
        bitsets = self.bitsets
        key_ord = bitsets.key_ord
        vertex = bitsets.vertex
        desc = bitsets.desc
        slow = self.query
        answers: List[bool] = []
        append = answers.append
        for pair in pairs:
            label_v = labels[pair[0]]
            label_w = labels[pair[1]]
            if label_v is label_w:
                append(True)
                continue
            iv, pv, lv = label_v
            iw, pw, lw = label_w
            if iv is iw:
                # same node: equal final metas mean equal labels,
                # otherwise compare the two origins' skeletons.
                if lv == lw:
                    append(True)
                    continue
                if lv & lw & META_HAS_SKL:
                    sid_v = lv >> META_SID_SHIFT
                    sid_w = lw >> META_SID_SHIFT
                    if key_ord[sid_v] == key_ord[sid_w]:
                        append(bool(desc[sid_v] >> vertex[sid_w] & 1))
                        continue
                append(slow(label_v, label_w))
                continue
            nv = len(iv)
            nw = len(iw)
            limit = nv if nv < nw else nw
            i = 0
            while i < limit and iv[i] == iw[i]:
                i += 1
            if i == 0:
                raise LabelingError(
                    "labels do not share a root; different runs?"
                )
            if i == limit and nv == nw and lv == lw and pv == pw:
                append(True)
                continue
            j = i - 1
            meta_lca = pv[j] if j < nv - 1 else lv
            kind = meta_lca & META_KIND_MASK
            if kind == KIND_N:
                mv = meta_lca
                mw = pw[j] if j < nw - 1 else lw
                if mv & mw & META_HAS_SKL:
                    sid_v = mv >> META_SID_SHIFT
                    sid_w = mw >> META_SID_SHIFT
                    if key_ord[sid_v] == key_ord[sid_w]:
                        append(bool(desc[sid_v] >> vertex[sid_w] & 1))
                        continue
                append(slow(label_v, label_w))
            elif kind == KIND_L:
                append(iv[i] < iw[i])
            elif kind == KIND_F:
                append(False)
            elif iv[i] < iw[i]:
                m = pv[i] if i < nv - 1 else lv
                if not m & META_HAS_REC:
                    raise LabelingError("missing rec1 flag on R-chain entry")
                append(bool(m & META_REC1))
            else:
                m = pw[i] if i < nw - 1 else lw
                if not m & META_HAS_REC:
                    raise LabelingError("missing rec2 flag on R-chain entry")
                append(bool(m & META_REC2))
        return answers

    # ------------------------------------------------------------------
    # bit accounting: identical numbers to the reference representation
    # ------------------------------------------------------------------
    def label_bits(self, label: PackedLabel) -> int:
        """Accounted size in bits; equals the reference accounting."""
        indexes, prefix, last = label
        pointer = self._skl_pointer_bits
        bits = 0
        final = len(indexes) - 1
        for position, index in enumerate(indexes):
            meta = prefix[position] if position < final else last
            bits += uint_bits(index) + 2
            if meta & META_HAS_SKL:
                bits += pointer
            if meta & META_HAS_REC:
                bits += 2
        return bits


def label_entries(label: PackedLabel) -> Iterable[Tuple[int, int]]:
    """Iterate ``(index, meta word)`` pairs of a packed label."""
    indexes, prefix, last = label
    final = len(indexes) - 1
    for position, index in enumerate(indexes):
        yield index, (prefix[position] if position < final else last)
