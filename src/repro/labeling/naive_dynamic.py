"""The Section 3.2 dynamic scheme: linear-size labels for any DAG execution.

The i-th inserted vertex receives a label of ``i - 1`` bits encoding its
reachability from every previously inserted vertex; together with the
Omega(n) lower bound of Theorem 1 this gives the tight Theta(n) bounds of
Figure 1 (and, as the paper notes, tight ``n - 1``-bit bounds for labeling
general dynamic DAGs and even dynamic trees).

It doubles as the ``TCL`` scheme applied dynamically: used on a whole
static graph in topological order, it is exactly the skeleton labeling of
:class:`~repro.labeling.skeleton.TCLSkeleton`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.errors import ExecutionError, LabelingError
from repro.workflow.execution import Insertion


@dataclass(frozen=True)
class NaiveLabel:
    """Label of the i-th inserted vertex.

    ``index`` is ``i`` (1-based insertion rank); ``ancestors`` is an
    ``i - 1``-bit integer whose bit ``j - 1`` is set when the j-th inserted
    vertex reaches this one.  The bit length of the label is ``i - 1``
    (the index is recoverable from the length, as in the paper).
    """

    index: int
    ancestors: int

    @property
    def bits(self) -> int:
        """Label size in bits (``i - 1`` for the i-th vertex)."""
        return self.index - 1


class NaiveDynamicScheme:
    """Execution-based dynamic labeling for arbitrary DAGs (Section 3.2).

    Works for *any* insertion stream -- no specification knowledge -- at
    the cost of linear-size labels.  Queries are O(1).
    """

    def __init__(self) -> None:
        self._labels: Dict[int, NaiveLabel] = {}
        self._count = 0

    # ------------------------------------------------------------------
    def insert(self, vid: int, preds: Iterable[int]) -> NaiveLabel:
        """Label the next inserted vertex given its predecessors."""
        if vid in self._labels:
            raise ExecutionError(f"vertex {vid} inserted twice")
        self._count += 1
        ancestors = 0
        for p in preds:
            try:
                pred_label = self._labels[p]
            except KeyError:
                raise ExecutionError(
                    f"predecessor {p} inserted after {vid}"
                ) from None
            # the predecessor itself, plus everything reaching it
            ancestors |= pred_label.ancestors | (1 << (pred_label.index - 1))
        label = NaiveLabel(index=self._count, ancestors=ancestors)
        self._labels[vid] = label
        return label

    def insert_all(self, insertions: Iterable[Insertion]) -> Dict[int, NaiveLabel]:
        """Label a whole insertion stream; returns vid -> label."""
        for ins in insertions:
            self.insert(ins.vid, ins.preds)
        return dict(self._labels)

    def label(self, vid: int) -> NaiveLabel:
        """The label assigned to ``vid``."""
        try:
            return self._labels[vid]
        except KeyError:
            raise LabelingError(f"vertex {vid} has no label") from None

    @property
    def labels(self) -> Dict[int, NaiveLabel]:
        """The live vid -> label map (labels are write-once)."""
        return self._labels

    # ------------------------------------------------------------------
    @staticmethod
    def query(label_v: NaiveLabel, label_w: NaiveLabel) -> bool:
        """Does ``label_v``'s vertex reach ``label_w``'s?  Reflexive."""
        if label_v.index == label_w.index:
            return True
        if label_v.index > label_w.index:
            return False
        return bool(label_w.ancestors >> (label_v.index - 1) & 1)

    @staticmethod
    def label_bits(label: NaiveLabel) -> int:
        """Label size in bits."""
        return label.bits
