"""Dynamic Dewey labels with insert-anywhere sibling keys (ORDPATH/DDE family).

The paper's prior work on dynamic trees ([10] prefix labels, [20]
ORDPATH, [23] DDE) supports *insert-anywhere* tree growth without ever
relabeling: new siblings can be placed before, after or **between**
existing ones.  This module implements that capability with a clean
invariant:

* a node label is the tuple of its ancestors' *sibling keys*;
* a sibling key is a pair ``(ordinal, tiebreak)``: an integer ordinal
  (so plain appends cost O(log n) bits, like ORDPATH's odd ordinals)
  plus a dyadic binary tiebreak in [0, 1) written with no trailing
  zeros (so a fresh key strictly between any two neighbours always
  exists, like ORDPATH's carets).

Ancestry is component-prefix testing and document order is
component-wise comparison, both label-only.  Like every dynamic tree
scheme it has a Theta(n)-bit worst case (repeatedly inserting into the
same gap), matching the "Trees (dynamic)" row of Figure 1; appends and
balanced insertions stay logarithmic.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import LabelingError
from repro.labeling.bits import uint_bits

# a sibling key: (integer ordinal, dyadic tiebreak with no trailing zeros)
SiblingKey = Tuple[int, str]
DeweyLabel = Tuple[SiblingKey, ...]

ROOT: DeweyLabel = ()


def _frac_value(tiebreak: str) -> Fraction:
    """Numeric value of the dyadic tiebreak part ('' = 0)."""
    value = Fraction(0)
    weight = Fraction(1, 2)
    for char in tiebreak:
        if char == "1":
            value += weight
        elif char != "0":
            raise LabelingError(f"invalid tiebreak character {char!r}")
        weight /= 2
    return value


def _frac_from_value(value: Fraction) -> str:
    """Binary expansion of a dyadic fraction in (0, 1)."""
    if not 0 < value < 1:
        raise LabelingError(f"tiebreak value {value} outside (0, 1)")
    digits: List[str] = []
    remainder = value
    while remainder:
        remainder *= 2
        if remainder >= 1:
            digits.append("1")
            remainder -= 1
        else:
            digits.append("0")
    return "".join(digits)


def key_value(key: SiblingKey) -> Fraction:
    """Numeric value of a sibling key (ordinal + tiebreak)."""
    ordinal, tiebreak = key
    return ordinal + _frac_value(tiebreak)


def key_between(
    left: Optional[SiblingKey], right: Optional[SiblingKey]
) -> SiblingKey:
    """A fresh key strictly between two neighbours (None = open end)."""
    if left is None and right is None:
        return (0, "")
    if right is None:
        assert left is not None
        return (left[0] + 1, "")
    if left is None:
        return (right[0] - 1, "")
    if not key_value(left) < key_value(right):
        raise LabelingError(f"no key fits between {left!r} and {right!r}")
    k1, f1 = left
    k2, _ = right
    if k2 - k1 >= 2:
        return (k1 + 1, "")
    if k2 == k1 + 1:
        # extend left's tiebreak toward 1: midpoint of (f1, 1)
        return (k1, _frac_from_value((_frac_value(f1) + 1) / 2))
    # same ordinal: midpoint of the two tiebreaks
    mid = (key_value(left) + key_value(right)) / 2
    return (k1, _frac_from_value(mid - k1))


def is_ancestor(label_u: DeweyLabel, label_v: DeweyLabel) -> bool:
    """Reflexive ancestor test: component-prefix."""
    return label_v[: len(label_u)] == label_u


def document_order(label_u: DeweyLabel, label_v: DeweyLabel) -> int:
    """-1 / 0 / +1 in document (pre-)order.

    Component tuples compare by (ordinal, tiebreak); the tiebreak's
    lexicographic order equals its numeric order because it carries no
    trailing zeros.  An ancestor precedes its descendants.
    """
    if label_u == label_v:
        return 0
    return -1 if label_u < label_v else 1


def label_bits(label: DeweyLabel) -> int:
    """Accounted size: ordinal + sign + tiebreak bits + delimiter."""
    total = 0
    for ordinal, tiebreak in label:
        total += uint_bits(abs(ordinal)) + 1 + len(tiebreak) + 1
    return total


class DeweyTree:
    """A growing ordered tree labeled with dynamic Dewey labels.

    All mutators return the new node's label; existing labels are never
    modified (the dynamic-labeling contract of Definition 8).
    """

    def __init__(self) -> None:
        self._children: Dict[DeweyLabel, List[SiblingKey]] = {ROOT: []}

    def _require(self, label: DeweyLabel) -> List[SiblingKey]:
        try:
            return self._children[label]
        except KeyError:
            raise LabelingError(f"unknown node {label!r}") from None

    def _attach(self, parent: DeweyLabel, key: SiblingKey, index: int) -> DeweyLabel:
        self._require(parent).insert(index, key)
        label = parent + (key,)
        self._children[label] = []
        return label

    # ------------------------------------------------------------------
    def append_child(self, parent: DeweyLabel = ROOT) -> DeweyLabel:
        """Add a new last child under ``parent``."""
        keys = self._require(parent)
        key = key_between(keys[-1] if keys else None, None)
        return self._attach(parent, key, len(keys))

    def prepend_child(self, parent: DeweyLabel = ROOT) -> DeweyLabel:
        """Add a new first child under ``parent``."""
        keys = self._require(parent)
        key = key_between(None, keys[0] if keys else None)
        return self._attach(parent, key, 0)

    def insert_before(self, sibling: DeweyLabel) -> DeweyLabel:
        """Insert a new node immediately before ``sibling``."""
        parent, key = sibling[:-1], sibling[-1]
        keys = self._require(parent)
        index = keys.index(key)
        left = keys[index - 1] if index > 0 else None
        return self._attach(parent, key_between(left, key), index)

    def insert_after(self, sibling: DeweyLabel) -> DeweyLabel:
        """Insert a new node immediately after ``sibling``."""
        parent, key = sibling[:-1], sibling[-1]
        keys = self._require(parent)
        index = keys.index(key)
        right = keys[index + 1] if index + 1 < len(keys) else None
        return self._attach(parent, key_between(key, right), index + 1)

    # ------------------------------------------------------------------
    def ordered_children(self, parent: DeweyLabel = ROOT) -> List[DeweyLabel]:
        """Children of ``parent`` in sibling order."""
        return [parent + (key,) for key in self._require(parent)]

    def nodes(self) -> List[DeweyLabel]:
        """All labels except the root sentinel, in document order."""
        return sorted(label for label in self._children if label != ROOT)
