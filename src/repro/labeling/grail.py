"""GRAIL-style randomized interval index for general DAGs.

One of the alternative approaches the paper surveys for reachability
over large DAGs (Yildirim, Chaoji & Zaki, PVLDB 2010 -- reference [24]):
since compact *exact* labels are impossible for general DAGs (the
Omega(n) bound of Section 3), GRAIL assigns each vertex ``k`` interval
labels from random post-order traversals.  Containment of all ``k``
intervals is a *necessary* condition for reachability, so a failed
containment answers "unreachable" in O(k); positive candidates fall back
to a depth-first search.

Included as a baseline substrate: it shows what general-purpose indexes
give up against DRL's specification-aware labels (no O(1) guarantee, a
graph-sized fallback) and powers an ablation benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import LabelingError
from repro.graphs.digraph import NamedDAG
from repro.labeling.bits import uint_bits


@dataclass(frozen=True)
class GrailLabel:
    """``k`` nested intervals: (low, post) per random traversal."""

    intervals: Tuple[Tuple[int, int], ...]

    @property
    def bits(self) -> int:
        """Accounted size of the label in bits."""
        return sum(uint_bits(a) + uint_bits(b) for a, b in self.intervals)


class GrailIndex:
    """Randomized interval index over one static DAG.

    Parameters
    ----------
    graph:
        The DAG to index (held for fallback searches).
    traversals:
        ``k``, the number of random post-order labelings (paper default 5).
    rng:
        Randomness source for the traversal orders.
    """

    def __init__(
        self,
        graph: NamedDAG,
        traversals: int = 3,
        rng: random.Random = None,
    ) -> None:
        if traversals < 1:
            raise LabelingError("need at least one traversal")
        self.graph = graph
        self._rng = rng if rng is not None else random.Random(0)
        per_vertex: Dict[int, List[Tuple[int, int]]] = {
            v: [] for v in graph.vertices()
        }
        for _ in range(traversals):
            for v, interval in self._one_traversal().items():
                per_vertex[v].append(interval)
        self._labels = {
            v: GrailLabel(intervals=tuple(ivs)) for v, ivs in per_vertex.items()
        }
        # statistics: how often the containment filter is conclusive
        self.fallback_searches = 0
        self.queries = 0

    def _one_traversal(self) -> Dict[int, Tuple[int, int]]:
        """One randomized post-order labeling: (min descendant rank, rank)."""
        order: Dict[int, Tuple[int, int]] = {}
        counter = 0
        visited = set()
        roots = list(self.graph.sources())
        self._rng.shuffle(roots)
        for root in roots:
            # iterative randomized DFS
            stack: List[Tuple[int, bool]] = [(root, False)]
            while stack:
                node, done = stack.pop()
                if done:
                    counter += 1
                    low = counter
                    for succ in self.graph.successors(node):
                        low = min(low, order[succ][0])
                    order[node] = (low, counter)
                    continue
                if node in visited:
                    continue
                visited.add(node)
                stack.append((node, True))
                children = [
                    s for s in self.graph.successors(node) if s not in visited
                ]
                self._rng.shuffle(children)
                for child in children:
                    stack.append((child, False))
        return order

    # ------------------------------------------------------------------
    def label(self, vid: int) -> GrailLabel:
        """The interval label of one vertex."""
        try:
            return self._labels[vid]
        except KeyError:
            raise LabelingError(f"vertex {vid} not indexed") from None

    @staticmethod
    def may_reach(label_u: GrailLabel, label_v: GrailLabel) -> bool:
        """The containment filter: False answers are definitive."""
        for (lu, pu), (lv, pv) in zip(label_u.intervals, label_v.intervals):
            if not (lu <= lv and pv <= pu):
                return False
        return True

    def reaches(self, u: int, v: int) -> bool:
        """Exact reachability: filter first, guided DFS on candidates."""
        self.queries += 1
        if u == v:
            return True
        label_u, label_v = self.label(u), self.label(v)
        if not self.may_reach(label_u, label_v):
            return False
        # guided DFS: prune every branch whose intervals exclude v
        self.fallback_searches += 1
        stack = [u]
        seen = {u}
        while stack:
            node = stack.pop()
            if node == v:
                return True
            for succ in self.graph.successors(node):
                if succ in seen:
                    continue
                if self.may_reach(self.label(succ), label_v) or succ == v:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def total_bits(self) -> int:
        """Total accounted index size in bits."""
        return sum(label.bits for label in self._labels.values())
