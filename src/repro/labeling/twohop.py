"""2-hop reachability labels via pruned landmark labeling.

The 2-hop cover approach of Cohen, Halperin, Kaplan & Zwick (SODA 2002)
-- reference [9] of the paper: every vertex stores two hub sets,
``out(u)`` (hubs u reaches) and ``in(v)`` (hubs reaching v), such that
``u ~> v  iff  out(u) and in(v) intersect``.  This implementation builds
the cover with the pruned-landmark strategy: process vertices from most
to least central; for each landmark run a forward and a backward BFS,
*pruning* any vertex whose reachability to the landmark is already
answered by the current partial index.  The result is an exact 2-hop
cover with small hub sets in practice.

Static and general-purpose: the last member of the related-work index
family (chains [15], GRAIL [24], tree transform [13]) implemented for
comparison against the specification-aware DRL labels.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import LabelingError
from repro.graphs.digraph import NamedDAG
from repro.labeling.bits import pointer_bits

# per-vertex label: (hubs this vertex reaches, hubs reaching this vertex)
TwoHopLabel = Tuple[FrozenSet[int], FrozenSet[int]]


class TwoHopIndex:
    """Exact 2-hop reachability labels over one static DAG."""

    def __init__(self, graph: NamedDAG) -> None:
        self.graph = graph
        order = self._landmark_order(graph)
        self._rank: Dict[int, int] = {v: i for i, v in enumerate(order)}
        self._out: Dict[int, set] = {v: set() for v in graph.vertices()}
        self._in: Dict[int, set] = {v: set() for v in graph.vertices()}
        for landmark in order:
            self._forward_bfs(landmark)
            self._backward_bfs(landmark)
        self._labels: Dict[int, TwoHopLabel] = {
            v: (frozenset(self._out[v]), frozenset(self._in[v]))
            for v in graph.vertices()
        }
        self._hub_bits = pointer_bits(max(len(self._rank), 2))

    # ------------------------------------------------------------------
    @staticmethod
    def _landmark_order(graph: NamedDAG) -> List[int]:
        """Most-central-first landmark order.

        Centrality of ``v`` is ``|ancestors(v)| * |descendants(v)|`` --
        the number of reachable pairs a hub at ``v`` can cover.  On a
        path this picks midpoints first (the order degree heuristics get
        badly wrong), keeping hub sets near-logarithmic.
        """
        from repro.graphs.reachability import TransitiveClosure

        closure = TransitiveClosure(graph)
        ancestor_count = {
            v: bin(closure.row_bits(v)).count("1") for v in graph.vertices()
        }
        # descendants of u = vertices whose ancestor bitset has u's rank
        descendant_count: Dict[int, int] = {
            closure.rank(v): 0 for v in graph.vertices()
        }
        for v in graph.vertices():
            row = closure.row_bits(v)
            while row:
                low = row & -row
                descendant_count[low.bit_length() - 1] += 1
                row ^= low
        return sorted(
            graph.vertices(),
            key=lambda v: (
                -(ancestor_count[v] + 1)
                * (descendant_count[closure.rank(v)] + 1),
                v,
            ),
        )

    def _covered(self, u: int, v: int) -> bool:
        """Does the current partial index already answer ``u ~> v``?"""
        if u == v:
            return True
        return not self._out[u].isdisjoint(self._in[v])

    def _forward_bfs(self, landmark: int) -> None:
        """Add ``landmark`` to in(w) for every w it reaches, pruned."""
        queue = deque((landmark,))
        seen = {landmark}
        while queue:
            w = queue.popleft()
            if w != landmark and self._covered(landmark, w):
                continue  # already answered; prune the whole branch
            self._in[w].add(landmark)
            for succ in self.graph.successors(w):
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)

    def _backward_bfs(self, landmark: int) -> None:
        """Add ``landmark`` to out(w) for every w reaching it, pruned."""
        queue = deque((landmark,))
        seen = {landmark}
        while queue:
            w = queue.popleft()
            if w != landmark and self._covered(w, landmark):
                continue
            self._out[w].add(landmark)
            for pred in self.graph.predecessors(w):
                if pred not in seen:
                    seen.add(pred)
                    queue.append(pred)

    # ------------------------------------------------------------------
    def label(self, vid: int) -> TwoHopLabel:
        """The (out-hubs, in-hubs) label of one vertex."""
        try:
            return self._labels[vid]
        except KeyError:
            raise LabelingError(f"vertex {vid} not indexed") from None

    @staticmethod
    def query(label_u: TwoHopLabel, label_v: TwoHopLabel) -> bool:
        """``u ~> v`` iff the hub sets intersect.  Reflexive by cover."""
        out_u, _ = label_u
        _, in_v = label_v
        return not out_u.isdisjoint(in_v)

    def reaches(self, u: int, v: int) -> bool:
        """Convenience wrapper over vertex ids."""
        if u == v:
            return True
        return self.query(self.label(u), self.label(v))

    # ------------------------------------------------------------------
    def label_bits(self, label: TwoHopLabel) -> int:
        """Accounted size: one hub pointer per entry."""
        out_hubs, in_hubs = label
        return (len(out_hubs) + len(in_hubs)) * self._hub_bits

    def total_bits(self) -> int:
        """Total index size in bits."""
        return sum(self.label_bits(l) for l in self._labels.values())

    def average_hubs(self) -> float:
        """Mean hub-set size per vertex (cover quality metric)."""
        sizes = [len(o) + len(i) for o, i in self._labels.values()]
        return sum(sizes) / len(sizes)
