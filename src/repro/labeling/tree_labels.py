"""Static and dynamic tree labeling components.

Two classic tree schemes referenced by the paper:

* :class:`IntervalTreeLabeling` -- the interval-based static scheme of
  Santoro & Khatib [22]: label = (pre-order rank, subtree end); ``u`` is
  an ancestor of ``v`` iff its interval contains ``v``'s rank.  SKL labels
  the run's parse tree this way.
* :class:`PrefixLabeler` -- the prefix-based dynamic scheme of Kaplan,
  Milo & Shabo [18] / Cohen, Kaplan & Milo [10]: label = the child-index
  path from the root; ancestor iff prefix.  DRL's entry indexes are
  exactly such a prefix label, which is why DRL behaves like a
  prefix-based scheme on the explicit parse tree.

Both are exposed as standalone utilities: they make the "Trees" rows of
Figure 1 executable and are exercised by unit and property tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import LabelingError
from repro.labeling.bits import uint_bits


class IntervalTreeLabeling:
    """Static interval labels over an immutable rooted tree.

    The tree is given as ``children[node] -> ordered children``; labels are
    ``(pre, post)`` with ``pre`` the preorder rank and ``post`` the largest
    preorder rank in the subtree.  2 * log(n) bits per label.
    """

    def __init__(
        self, root: Hashable, children: Dict[Hashable, List[Hashable]]
    ) -> None:
        self._labels: Dict[Hashable, Tuple[int, int]] = {}
        counter = 0
        # iterative DFS assigning (pre, post)
        stack: List[Tuple[Hashable, bool]] = [(root, False)]
        pre_of: Dict[Hashable, int] = {}
        while stack:
            node, done = stack.pop()
            if done:
                last = counter - 1
                self._labels[node] = (pre_of[node], last)
                continue
            pre_of[node] = counter
            counter += 1
            stack.append((node, True))
            for child in reversed(children.get(node, [])):
                stack.append((child, False))

    def label(self, node: Hashable) -> Tuple[int, int]:
        """The ``(pre, post)`` interval of ``node``."""
        try:
            return self._labels[node]
        except KeyError:
            raise LabelingError(f"node {node!r} not in tree") from None

    @staticmethod
    def is_ancestor(label_u: Tuple[int, int], label_v: Tuple[int, int]) -> bool:
        """Is ``u`` an ancestor of ``v`` (reflexively)?"""
        return label_u[0] <= label_v[0] <= label_u[1]

    @staticmethod
    def label_bits(label: Tuple[int, int]) -> int:
        """Size of an interval label in bits."""
        return uint_bits(label[0]) + uint_bits(label[1])


class PrefixLabeler:
    """Dynamic prefix labels: append-only trees, labels never change.

    ``attach(parent)`` adds a new child and returns its label -- the tuple
    of child indexes from the root.  Ancestor queries are prefix tests.
    On a path-shaped tree built by always extending the last node the
    labels degenerate to Theta(n) bits, witnessing the dynamic-tree lower
    bound row of Figure 1; on bounded-depth trees they are O(log n).
    """

    ROOT: Tuple[int, ...] = ()

    def __init__(self) -> None:
        self._child_counts: Dict[Tuple[int, ...], int] = {self.ROOT: 0}

    def attach(self, parent: Optional[Tuple[int, ...]] = None) -> Tuple[int, ...]:
        """Add a child under ``parent`` (the root when None); return label."""
        parent_label = self.ROOT if parent is None else parent
        if parent_label not in self._child_counts:
            raise LabelingError(f"unknown parent label {parent_label!r}")
        index = self._child_counts[parent_label] + 1
        self._child_counts[parent_label] = index
        label = parent_label + (index,)
        self._child_counts[label] = 0
        return label

    @staticmethod
    def is_ancestor(label_u: Tuple[int, ...], label_v: Tuple[int, ...]) -> bool:
        """Is ``u`` an ancestor of ``v`` (reflexively)?"""
        return label_v[: len(label_u)] == label_u

    @staticmethod
    def label_bits(label: Tuple[int, ...]) -> int:
        """Size of a prefix label in bits."""
        return sum(uint_bits(i) for i in label)
