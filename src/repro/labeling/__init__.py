"""Reachability labeling schemes.

Dynamic schemes (label vertices as they appear, labels never change):

* :class:`~repro.labeling.drl.DRL` -- the paper's scheme for (linear)
  recursive workflows; derivation-based labeler (Algorithms 1-4) plus the
  execution-based labeler of Section 5.3
  (:class:`~repro.labeling.drl_execution.DRLExecutionLabeler`).
* :class:`~repro.labeling.naive_dynamic.NaiveDynamicScheme` -- the
  Section 3.2 scheme for arbitrary DAG executions; ``n - 1``-bit labels,
  matching the Theta(n) bounds of Section 3.

Static schemes (need the whole graph):

* :class:`~repro.labeling.skl.SKL` -- reconstruction of the
  state-of-the-art skeleton-based static scheme [Bao et al., SIGMOD 2010]
  for non-recursive workflows (the paper's comparison baseline).
* :mod:`repro.labeling.tree_labels` -- interval-based [22] and
  prefix-based [18] tree labelings used as components.

Skeleton schemes for the specification graphs (Section 5.1):

* :class:`~repro.labeling.skeleton.TCLSkeleton` -- precomputed transitive
  closure, O(1) query;
* :class:`~repro.labeling.skeleton.BFSSkeleton` -- no precomputation,
  breadth-first search per query.
"""

from repro.labeling.bits import pointer_bits, uint_bits
from repro.labeling.skeleton import BFSSkeleton, SkeletonScheme, TCLSkeleton, make_skeleton
from repro.labeling.drl import DRL, DRLDerivationLabeler, Entry, Label, SkeletonRef
from repro.labeling.compact import (
    CompactDRL,
    PackedLabel,
    PackedLabelFactory,
    SkeletonBitsets,
    pack_label,
    unpack_label,
)
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.labeling.naive_dynamic import NaiveDynamicScheme, NaiveLabel
from repro.labeling.skl import SKL, SKLLabel
from repro.labeling.chains import ChainIndex
from repro.labeling.grail import GrailIndex
from repro.labeling.twohop import TwoHopIndex
from repro.labeling.tree_transform import TreeTransformIndex
from repro.labeling.path_position import PathPositionScheme
from repro.labeling.dewey import DeweyTree
from repro.labeling.serialize import LabelCodec, PackedLabelCodec

__all__ = [
    "uint_bits",
    "pointer_bits",
    "SkeletonScheme",
    "TCLSkeleton",
    "BFSSkeleton",
    "make_skeleton",
    "DRL",
    "DRLDerivationLabeler",
    "DRLExecutionLabeler",
    "Entry",
    "Label",
    "SkeletonRef",
    "CompactDRL",
    "PackedLabel",
    "PackedLabelFactory",
    "SkeletonBitsets",
    "pack_label",
    "unpack_label",
    "NaiveDynamicScheme",
    "NaiveLabel",
    "SKL",
    "SKLLabel",
    "ChainIndex",
    "GrailIndex",
    "TwoHopIndex",
    "TreeTransformIndex",
    "PathPositionScheme",
    "DeweyTree",
    "LabelCodec",
    "PackedLabelCodec",
]
