"""Bit accounting for reachability labels.

The paper measures label quality in *bits*.  We account sizes the same
way its analysis does (proof of Theorem 3): an index costs its binary
length, a node type costs 2 bits, a skeleton label is stored as a pointer
of ``log n_G`` bits into the (shared) specification labels, and each
recursion flag costs 1 bit.
"""

from __future__ import annotations


def uint_bits(value: int) -> int:
    """Bits needed to write ``value`` in binary (at least 1).

    ``uint_bits(0) == 1``, ``uint_bits(5) == 3``.
    """
    if value < 0:
        raise ValueError("uint_bits expects a non-negative integer")
    return max(1, value.bit_length())


def pointer_bits(domain_size: int) -> int:
    """Bits for a pointer addressing ``domain_size`` distinct items."""
    if domain_size < 1:
        raise ValueError("pointer domain must be non-empty")
    return max(1, (domain_size - 1).bit_length())
