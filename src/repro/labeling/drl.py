"""DRL: the paper's dynamic labeling scheme (Section 5).

A reachability label is a list of *entries*, one per node on the path
from the root of the explicit parse tree to the vertex's context.  Each
entry (Algorithm 1) stores:

* ``index`` -- the prefix-scheme child index of the tree node;
* ``kind``  -- the node type (N / L / F / R);
* ``skl``   -- for non-special nodes, a pointer to the skeleton label of
  the vertex's origin inside the annotated specification graph;
* ``rec1`` / ``rec2`` -- for elements of a recursion chain, whether the
  origin reaches the body's recursive vertex and vice versa.

:class:`DRLDerivationLabeler` consumes derivation steps and labels every
new vertex (Algorithms 2 + 3); the binary predicate :meth:`DRL.query`
implements Algorithm 4 and decides reachability from two labels alone in
O(1) for a fixed grammar.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import LabelingError
from repro.labeling.bits import pointer_bits, uint_bits
from repro.labeling.skeleton import SkeletonScheme, make_skeleton
from repro.parsetree.explicit import ExplicitParseTree, NodeKind, ParseNode
from repro.workflow.derivation import Derivation, DerivationStep, Instance
from repro.workflow.grammar import GrammarInfo, analyze_grammar
from repro.workflow.specification import GraphKey, Specification


@dataclass(frozen=True)
class SkeletonRef:
    """Pointer to the skeleton label of vertex ``vertex`` of graph ``key``.

    Skeleton labels are shared by all runs of a specification, so labels
    store this constant-size reference rather than the label itself
    (footnote 4 of the paper).
    """

    key: GraphKey
    vertex: int


@dataclass(frozen=True)
class Entry:
    """One label entry: ``(index, type, skl, rec1, rec2)`` of Algorithm 1."""

    index: int
    kind: NodeKind
    skl: Optional[SkeletonRef] = None
    rec1: Optional[bool] = None
    rec2: Optional[bool] = None


# A reachability label: the entries along the root-to-context path.
Label = Tuple[Entry, ...]


class LabelFactory:
    """Builds entries and per-node label prefixes (Algorithms 1 and 3).

    Shared by the derivation-based and execution-based labelers: a label
    depends only on the tree node and the template vertex, so both modes
    produce *identical* labels (Section 5.3).  The factory caches, per
    parse-tree node, the entry prefix of the path above it.
    """

    def __init__(
        self,
        spec: Specification,
        info: GrammarInfo,
        skeleton: SkeletonScheme,
        r_mode: str,
    ) -> None:
        self.spec = spec
        self.info = info
        self.skeleton = skeleton
        self.r_mode = r_mode
        # node -> entries of the path strictly above the node's own entry
        self._prefix: Dict[ParseNode, Label] = {}
        # node -> annotated graph key (N nodes only)
        self._key: Dict[ParseNode, GraphKey] = {}
        # entries and skeleton refs are interned by value: a label entry
        # depends only on (index, kind, graph key, origin), so equal
        # entries across labels are the *same object*.  Tuple equality
        # between two equal labels then short-circuits per element on
        # identity instead of deep-comparing five dataclass fields, and
        # the reflexive fast path of :meth:`DRL.query` stays O(length).
        self._entry_intern: Dict[
            Tuple[int, NodeKind, Optional[GraphKey], Optional[int]], Entry
        ] = {}
        self._ref_intern: Dict[Tuple[GraphKey, int], SkeletonRef] = {}

    # ------------------------------------------------------------------
    def entry(self, node: ParseNode, template_vid: Optional[int]) -> Entry:
        """Algorithm 1: build ``Entry(x, u)`` for node ``x``, origin ``u``.

        Entries are interned: the same ``(index, kind, origin)`` always
        returns the same :class:`Entry` instance.
        """
        if node.kind is not NodeKind.N:
            key = (node.index, node.kind, None, None)
            entry = self._entry_intern.get(key)
            if entry is None:
                entry = Entry(index=node.index, kind=node.kind)
                self._entry_intern[key] = entry
            return entry
        if template_vid is None:
            raise LabelingError("non-special entries need an origin vertex")
        graph_key = self._key[node]
        intern_key = (node.index, node.kind, graph_key, template_vid)
        entry = self._entry_intern.get(intern_key)
        if entry is not None:
            return entry
        ref_key = (graph_key, template_vid)
        skl = self._ref_intern.get(ref_key)
        if skl is None:
            skl = SkeletonRef(graph_key, template_vid)
            self._ref_intern[ref_key] = skl
        recursive = None
        if self.r_mode != "simplified":
            recursive = self.info.designated_recursive.get(graph_key)
        if recursive is None:
            entry = Entry(index=node.index, kind=node.kind, skl=skl)
        else:
            entry = Entry(
                index=node.index,
                kind=node.kind,
                skl=skl,
                rec1=self.skeleton.reaches(graph_key, template_vid, recursive),
                rec2=self.skeleton.reaches(graph_key, recursive, template_vid),
            )
        self._entry_intern[intern_key] = entry
        return entry

    # ------------------------------------------------------------------
    def register_node(
        self,
        node: ParseNode,
        graph_key: Optional[GraphKey],
        edge_template_vid: Optional[int],
    ) -> None:
        """Record a new tree node and compute its prefix (Algorithm 3).

        ``graph_key`` annotates N nodes; ``edge_template_vid`` is the
        template vertex of the composite on the edge from a *non-special*
        parent (None for the root and for children of special nodes).
        """
        if node.kind is NodeKind.N:
            if graph_key is None:
                raise LabelingError("N nodes must carry a graph key")
            self._key[node] = graph_key
        parent = node.parent
        if parent is None:
            self._prefix[node] = ()
            return
        if parent.kind is NodeKind.N:
            if edge_template_vid is None:
                raise LabelingError(
                    "children of non-special nodes need the edge composite"
                )
            base = self._prefix[parent] + (self.entry(parent, edge_template_vid),)
        else:
            base = self._prefix[parent] + (self.entry(parent, None),)
        self._prefix[node] = base

    def label(self, node: ParseNode, template_vid: int) -> Label:
        """The reachability label of the vertex ``template_vid`` at ``node``."""
        try:
            base = self._prefix[node]
        except KeyError:
            raise LabelingError("node was never registered") from None
        return base + (self.entry(node, template_vid),)

    def node_key(self, node: ParseNode) -> GraphKey:
        """Annotated graph key of a registered N node."""
        return self._key[node]


class DRL:
    """The DRL scheme: configuration + the Algorithm 4 predicate.

    Parameters
    ----------
    spec:
        The workflow specification.
    skeleton:
        ``'tcl'`` / ``'bfs'`` or a prebuilt :class:`SkeletonScheme` -- the
        scheme used for the specification graphs (Section 5.1).
    r_mode:
        ``'linear'`` (default for linear recursive grammars), ``'one_r'``
        or ``'simplified'`` -- the Section 6 adaptations for nonlinear
        grammars.
    """

    def __init__(
        self,
        spec: Specification,
        skeleton: "str | SkeletonScheme" = "tcl",
        info: Optional[GrammarInfo] = None,
        r_mode: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.info = info if info is not None else analyze_grammar(spec)
        if r_mode is None:
            r_mode = "linear" if self.info.is_linear else "one_r"
        self.r_mode = r_mode
        if isinstance(skeleton, str):
            skeleton = make_skeleton(spec, skeleton)
        self.skeleton = skeleton
        self._skl_pointer_bits = pointer_bits(spec.max_graph_size)

    # ------------------------------------------------------------------
    def make_factory(self) -> LabelFactory:
        """The label factory this scheme's labelers build labels with.

        Subclasses (the packed representation in
        :mod:`repro.labeling.compact`) override this to swap the label
        representation without touching either labeler.
        """
        return LabelFactory(self.spec, self.info, self.skeleton, self.r_mode)

    def labeler(self) -> "DRLDerivationLabeler":
        """A fresh derivation-based labeler for one run."""
        return DRLDerivationLabeler(self)

    def label_derivation(self, derivation: Derivation) -> Dict[int, Label]:
        """Label a complete recorded derivation; returns vid -> label."""
        labeler = self.labeler()
        labeler.begin(derivation.start_instance)
        for step in derivation.steps:
            labeler.apply_step(step)
        return labeler.labels

    # ------------------------------------------------------------------
    def query(self, label_v: Label, label_w: Label) -> bool:
        """Algorithm 4: does the vertex of ``label_v`` reach ``label_w``'s?

        Reflexive: equal labels answer True.  The check is
        identity-first -- a reflexive probe of a stored label is one
        pointer comparison -- and entry interning in
        :class:`LabelFactory` makes the structural fallback cheap too:
        equal entries are the same object, so tuple equality
        short-circuits per element instead of deep-comparing dataclass
        fields.
        """
        if label_v is label_w or label_v == label_w:
            return True
        limit = min(len(label_v), len(label_w))
        i = 0
        while i < limit and label_v[i].index == label_w[i].index:
            i += 1
        # Entries 0..i-1 coincide; position i-1 is the LCA of the contexts.
        if i == 0:
            raise LabelingError("labels do not share a root; different runs?")
        lca = label_v[i - 1]
        if lca.kind is NodeKind.L:
            return label_v[i].index < label_w[i].index
        if lca.kind is NodeKind.F:
            return False
        if lca.kind is NodeKind.R:
            if label_v[i].index < label_w[i].index:
                rec1 = label_v[i].rec1
                if rec1 is None:
                    raise LabelingError("missing rec1 flag on R-chain entry")
                return rec1
            rec2 = label_w[i].rec2
            if rec2 is None:
                raise LabelingError("missing rec2 flag on R-chain entry")
            return rec2
        # Non-special LCA: compare skeleton labels of the two origins.
        skl_v = label_v[i - 1].skl
        skl_w = label_w[i - 1].skl
        if skl_v is None or skl_w is None:
            raise LabelingError("missing skeleton pointer on N entry")
        if skl_v.key != skl_w.key:
            raise LabelingError("origin skeleton pointers disagree on graph")
        return self.skeleton.reaches(skl_v.key, skl_v.vertex, skl_w.vertex)

    def query_many_from(
        self, labels: Dict[int, Label], pairs: Iterable[Tuple[int, int]]
    ) -> List[bool]:
        """Batch :meth:`query` over ``(u, v)`` pairs resolved in ``labels``.

        The label lookup is fused into the batch loop on purpose: an
        intermediate list of label pairs would cost as much as the
        dispatch the batching saves.  The reference implementation
        simply loops; the packed representation
        (:class:`repro.labeling.compact.CompactDRL`) overrides it with
        a tight integer kernel.  A pair naming an unlabeled vertex
        raises ``KeyError`` (callers map it to their error type).
        """
        query = self.query
        return [query(labels[pair[0]], labels[pair[1]]) for pair in pairs]

    # ------------------------------------------------------------------
    def entry_bits(self, entry: Entry) -> int:
        """Size of one entry: index + 2 type bits [+ pointer] [+ 2 flags]."""
        bits = uint_bits(entry.index) + 2
        if entry.skl is not None:
            bits += self._skl_pointer_bits
        if entry.rec1 is not None:
            bits += 2
        return bits

    def label_bits(self, label: Label) -> int:
        """Total size of a label in bits (the paper's measured quantity)."""
        return sum(self.entry_bits(entry) for entry in label)


class DRLDerivationLabeler:
    """Derivation-based on-the-fly labeler (Algorithms 2 + 3).

    Feed :meth:`begin` with the start instance and :meth:`apply_step` with
    each derivation step; after every step all new vertices (atomic and
    composite) carry labels in :attr:`labels`, and those labels are final.
    """

    def __init__(self, scheme: DRL) -> None:
        self.scheme = scheme
        self.tree = ExplicitParseTree(
            scheme.spec, info=scheme.info, r_mode=scheme.r_mode
        )
        self.factory = scheme.make_factory()
        self.labels: Dict[int, Label] = {}

    # ------------------------------------------------------------------
    def _label_instance(self, node: ParseNode, instance: Instance) -> None:
        for tv, run_vid in instance.mapping.items():
            self.labels[run_vid] = self.factory.label(node, tv)

    def _register(self, node: ParseNode) -> None:
        edge_tv: Optional[int] = None
        if (
            node.parent is not None
            and node.parent.kind is NodeKind.N
            and node.edge_composite is not None
        ):
            _, edge_tv = self.tree.context_of(node.edge_composite)
        key = node.instance.key if node.instance is not None else None
        self.factory.register_node(node, key, edge_tv)
        if node.instance is not None:
            self._label_instance(node, node.instance)

    # ------------------------------------------------------------------
    def begin(self, start_instance: Instance) -> None:
        """Label the start graph (the first intermediate graph)."""
        root = self.tree.begin(start_instance)
        self._register(root)

    def apply_step(self, step: DerivationStep) -> None:
        """Label everything introduced by one derivation step."""
        for node in self.tree.apply_step(step):
            self._register(node)

    # ------------------------------------------------------------------
    def label(self, run_vid: int) -> Label:
        """The (final) label of a run vertex."""
        try:
            return self.labels[run_vid]
        except KeyError:
            raise LabelingError(f"vertex {run_vid} has not been labeled") from None


def label_lengths(scheme: DRL, labels: Iterable[Label]) -> List[int]:
    """Bit lengths of a collection of labels (report helper)."""
    return [scheme.label_bits(label) for label in labels]


def max_label_bits(scheme: DRL, labels: Dict[int, Label]) -> int:
    """Maximum label length in bits over a labeled run.

    Raises :class:`LabelingError` when no vertex has been labeled yet:
    the maximum of an empty run is undefined, and a bare ``ValueError``
    from ``max`` would leak the implementation to report callers.
    """
    if not labels:
        raise LabelingError(
            "cannot report label bits: the run has no labeled vertices"
        )
    return max(scheme.label_bits(label) for label in labels.values())


def avg_label_bits(scheme: DRL, labels: Dict[int, Label]) -> float:
    """Average label length in bits over a labeled run.

    Raises :class:`LabelingError` for a run with no labeled vertices
    (previously a ``ZeroDivisionError``).
    """
    if not labels:
        raise LabelingError(
            "cannot report label bits: the run has no labeled vertices"
        )
    sizes = [scheme.label_bits(label) for label in labels.values()]
    return sum(sizes) / len(sizes)


def pairwise_queries(labels: Dict[int, Label], limit: int = 0) -> Iterable[Tuple[int, int]]:
    """Vertex pairs for query benchmarks (all pairs, optionally truncated)."""
    pairs = itertools.permutations(labels, 2)
    if limit:
        return itertools.islice(pairs, limit)
    return pairs
