"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                # run everything
    python -m repro.bench fig14 fig20    # run selected experiments
    python -m repro.bench --output results.md   # also write to a file
    REPRO_SCALE=0.25 python -m repro.bench   # smaller run-size ladder

Prints each experiment as an aligned text table; EXPERIMENTS.md records
one full run of this command.
"""

from __future__ import annotations

import sys
import time

from repro.bench.figures import ALL_DRIVERS
from repro.bench.harness import default_config, format_table


def main(argv) -> int:
    config = default_config()
    args = list(argv[1:])
    output_path = None
    if "--output" in args:
        at = args.index("--output")
        try:
            output_path = args[at + 1]
        except IndexError:
            print("--output needs a file path", file=sys.stderr)
            return 2
        del args[at : at + 2]
    requested = args or list(ALL_DRIVERS)
    unknown = [name for name in requested if name not in ALL_DRIVERS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"available: {sorted(ALL_DRIVERS)}", file=sys.stderr)
        return 2
    chunks = [
        f"# repro bench -- scale={config.scale} samples={config.samples} "
        f"queries={config.queries}"
    ]
    print(chunks[0])
    for name in requested:
        start = time.perf_counter()
        table = ALL_DRIVERS[name](config)
        elapsed = time.perf_counter() - start
        rendered = format_table(table)
        chunks.append("")
        chunks.append(rendered)
        print()
        print(rendered)
        print(f"[{name} completed in {elapsed:.1f}s]")
    if output_path is not None:
        with open(output_path, "w") as handle:
            handle.write("\n".join(chunks) + "\n")
        print(f"\nwrote {output_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
