"""Benchmark harness: regenerates every table and figure of Section 7.

Each ``fig*`` / ``tab*`` function in :mod:`repro.bench.figures` runs one
experiment and returns a :class:`~repro.bench.harness.Table` whose rows
mirror the series the paper plots.  ``python -m repro.bench`` runs them
all and prints the tables (this is how EXPERIMENTS.md is produced);
``benchmarks/`` wraps the same drivers in pytest-benchmark timers.

Scale knob: the environment variable ``REPRO_SCALE`` (default ``1.0``)
multiplies the largest run size; ``REPRO_SAMPLES`` overrides the number
of sampled runs per configuration.
"""

from repro.bench.harness import (
    BenchConfig,
    Table,
    default_config,
    format_table,
    run_ladder,
)

__all__ = ["BenchConfig", "Table", "default_config", "format_table", "run_ladder"]
