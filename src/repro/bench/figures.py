"""Experiment drivers: one function per table/figure of the paper.

Every driver returns a :class:`~repro.bench.harness.Table` whose rows are
the series the corresponding figure plots.  Absolute times differ from
the paper's 2011 Java/Pentium testbed; the reproduced quantities are the
curve *shapes* (see DESIGN.md section 3).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from repro.bench.harness import (
    BenchConfig,
    Table,
    run_ladder,
    sampled_runs,
    time_call,
    time_per_query,
)
from repro.datasets import bioaid, synthetic_spec, theorem1_grammar
from repro.labeling.drl import DRL
from repro.labeling.drl_execution import DRLExecutionLabeler
from repro.labeling.naive_dynamic import NaiveDynamicScheme
from repro.labeling.skeleton import make_skeleton
from repro.labeling.skl import SKL
from repro.labeling.tree_labels import PrefixLabeler
from repro.workflow.derivation import Derivation
from repro.workflow.execution import execution_from_derivation


def _run_vertex_labels(scheme: DRL, run: Derivation) -> Dict[int, object]:
    """DRL labels restricted to the final run vertices."""
    labels = scheme.label_derivation(run)
    return {v: labels[v] for v in run.graph.vertices()}


def _max_avg_bits(scheme, labels) -> tuple:
    sizes = [scheme.label_bits(label) for label in labels.values()]
    return max(sizes), sum(sizes) / len(sizes)


# ---------------------------------------------------------------------------
# Section 7.2 -- BioAID
# ---------------------------------------------------------------------------


def fig14_label_length(config: BenchConfig) -> Table:
    """Figure 14: BioAID label length vs run size (log-shaped, slope ~1)."""
    spec = bioaid()
    scheme = DRL(spec, skeleton="tcl")
    table = Table(
        id="fig14",
        title="BioAID label length (bits) vs run size",
        columns=["run_size", "max_bits", "avg_bits", "log2(n)_ref"],
        notes="paper: both curves parallel to log2(n)+13; avg ~6 bits below max",
    )
    for size in run_ladder(config):
        maxima: List[int] = []
        means: List[float] = []
        actual = 0
        for run in sampled_runs(spec, size, config, tag=14):
            labels = _run_vertex_labels(scheme, run)
            hi, mean = _max_avg_bits(scheme, labels)
            maxima.append(hi)
            means.append(mean)
            actual += run.run_size()
        n = actual / len(maxima)
        table.add(
            int(n),
            sum(maxima) / len(maxima),
            sum(means) / len(means),
            math.log2(n),
        )
    return table


def fig15_construction_time(config: BenchConfig) -> Table:
    """Figure 15: BioAID total construction time (linear in run size)."""
    spec = bioaid()
    scheme = DRL(spec, skeleton="tcl")
    table = Table(
        id="fig15",
        title="BioAID total construction time (ms) vs run size",
        columns=["run_size", "derivation_ms", "execution_ms", "us_per_vertex"],
        notes="paper: linear growth; derivation-based faster than execution-based",
    )
    for size in run_ladder(config):
        deriv_ms: List[float] = []
        exec_ms: List[float] = []
        actual = 0
        for run in sampled_runs(spec, size, config, tag=15):
            _, seconds = time_call(lambda: scheme.label_derivation(run))
            deriv_ms.append(seconds * 1e3)
            exe = execution_from_derivation(run)
            labeler = DRLExecutionLabeler(scheme, mode="name")
            _, seconds = time_call(lambda: labeler.run(exe))
            exec_ms.append(seconds * 1e3)
            actual += run.run_size()
        n = actual / len(deriv_ms)
        table.add(
            int(n),
            sum(deriv_ms) / len(deriv_ms),
            sum(exec_ms) / len(exec_ms),
            (sum(deriv_ms) / len(deriv_ms)) / n * 1e3,
        )
    return table


def fig16_query_time(config: BenchConfig) -> Table:
    """Figure 16: BioAID query time, DRL(TCL) vs DRL(BFS) (both ~flat)."""
    spec = bioaid()
    tcl = DRL(spec, skeleton="tcl")
    bfs = DRL(spec, skeleton="bfs")
    table = Table(
        id="fig16",
        title="BioAID query time (us) per scheme",
        columns=["run_size", "drl_tcl_us", "drl_bfs_us"],
        notes="paper: both near-constant; TCL faster by ~2us",
    )
    for size in run_ladder(config):
        run = sampled_runs(spec, size, config, tag=16)[0]
        labels_tcl = _run_vertex_labels(tcl, run)
        labels_bfs = _run_vertex_labels(bfs, run)
        t_tcl = time_per_query(tcl.query, labels_tcl, config.queries, seed=size)
        t_bfs = time_per_query(bfs.query, labels_bfs, config.queries, seed=size)
        table.add(run.run_size(), t_tcl * 1e6, t_bfs * 1e6)
    return table


# ---------------------------------------------------------------------------
# Section 7.3 -- synthetic workflows
# ---------------------------------------------------------------------------


def fig17_varying_size(config: BenchConfig) -> Table:
    """Figure 17: max label length vs sub-workflow size (logarithmic)."""
    table = Table(
        id="fig17",
        title="Max label length (bits) vs sub-workflow size (5K runs, depth 5)",
        columns=["sub_workflow_size", "max_bits"],
        notes="paper: grows ~logarithmically with sub-workflow size",
    )
    run_size = max(1000, int(5000 * min(config.scale, 1.0)))
    for sub_size in (10, 20, 40, 80, 160):
        spec = synthetic_spec(sub_size=sub_size, depth=5, linear=True, seed=17)
        scheme = DRL(spec, skeleton="tcl")
        maxima = []
        for run in sampled_runs(spec, run_size, config, tag=17):
            labels = _run_vertex_labels(scheme, run)
            maxima.append(max(scheme.label_bits(l) for l in labels.values()))
        table.add(sub_size, sum(maxima) / len(maxima))
    return table


def fig18_varying_depth(config: BenchConfig) -> Table:
    """Figure 18: max label length vs nesting depth (linear)."""
    table = Table(
        id="fig18",
        title="Max label length (bits) vs nesting depth (5K runs, size 20)",
        columns=["nesting_depth", "max_bits"],
        notes="paper: grows linearly with the nesting depth",
    )
    run_size = max(1000, int(5000 * min(config.scale, 1.0)))
    for depth in (5, 10, 15, 20, 25):
        spec = synthetic_spec(sub_size=20, depth=depth, linear=True, seed=18)
        scheme = DRL(spec, skeleton="tcl")
        maxima = []
        for run in sampled_runs(spec, run_size, config, tag=18):
            labels = _run_vertex_labels(scheme, run)
            maxima.append(max(scheme.label_bits(l) for l in labels.values()))
        table.add(depth, sum(maxima) / len(maxima))
    return table


def fig19_nonlinear(config: BenchConfig) -> Table:
    """Figure 19: linear vs nonlinear recursion label length."""
    linear_spec = synthetic_spec(sub_size=20, depth=5, linear=True, seed=19)
    nonlinear_spec = synthetic_spec(sub_size=20, depth=5, linear=False, seed=19)
    linear_scheme = DRL(linear_spec, skeleton="tcl")
    nonlinear_scheme = DRL(nonlinear_spec, skeleton="tcl", r_mode="one_r")
    table = Table(
        id="fig19",
        title="Max label length (bits): linear vs nonlinear recursion",
        columns=["run_size", "linear_bits", "nonlinear_bits"],
        notes="paper: nonlinear longer but practical (<120 bits at 32K)",
    )
    for size in run_ladder(config):
        lin, non = [], []
        for run in sampled_runs(linear_spec, size, config, tag=191):
            labels = _run_vertex_labels(linear_scheme, run)
            lin.append(max(linear_scheme.label_bits(l) for l in labels.values()))
        for run in sampled_runs(nonlinear_spec, size, config, tag=192):
            labels = _run_vertex_labels(nonlinear_scheme, run)
            non.append(
                max(nonlinear_scheme.label_bits(l) for l in labels.values())
            )
        table.add(size, sum(lin) / len(lin), sum(non) / len(non))
    return table


# ---------------------------------------------------------------------------
# Section 7.4 -- DRL vs SKL
# ---------------------------------------------------------------------------


def fig20_drl_vs_skl_length(config: BenchConfig) -> Table:
    """Figure 20: DRL vs SKL max label length (slope 1 vs slope 3).

    Both series come out of the scheme registry: the dynamic DRL labels
    the insertion stream, the static SKL labels the frozen run.
    """
    from repro.bench.harness import build_registry_schemes
    from repro.schemes import Workload

    spec = bioaid(recursive=False)
    table = Table(
        id="fig20",
        title="Max label length (bits): DRL (dynamic) vs SKL (static)",
        columns=["run_size", "drl_bits", "skl_bits"],
        notes="paper: SKL slope ~3 log n, DRL slope ~1 log n; DRL wins for "
        "large runs",
    )
    for size in run_ladder(config):
        maxima = {"drl": [], "skl": []}
        for run in sampled_runs(spec, size, config, tag=20):
            workload = Workload.from_run(spec, run)
            for build in build_registry_schemes(
                workload, names=["drl", "skl"]
            ):
                maxima[build.name].append(
                    max(
                        build.scheme.label_bits_of(v)
                        for v in run.graph.vertices()
                    )
                )
        table.add(
            size,
            sum(maxima["drl"]) / len(maxima["drl"]),
            sum(maxima["skl"]) / len(maxima["skl"]),
        )
    return table


def fig21_construction_vs_skl(config: BenchConfig) -> Table:
    """Figure 21: construction time, SKL vs DRL (SKL builds simpler labels)."""
    spec = bioaid(recursive=False)
    drl = DRL(spec, skeleton="tcl")
    skl = SKL(spec, skeleton="tcl")
    table = Table(
        id="fig21",
        title="Total construction time (ms): SKL vs DRL",
        columns=["run_size", "skl_ms", "drl_derivation_ms", "drl_execution_ms"],
        notes="paper: all linear; SKL fastest but cannot start before the "
        "run completes",
    )
    for size in run_ladder(config):
        skl_ms, deriv_ms, exec_ms = [], [], []
        for run in sampled_runs(spec, size, config, tag=21):
            _, seconds = time_call(lambda: skl.label_run(run))
            skl_ms.append(seconds * 1e3)
            _, seconds = time_call(lambda: drl.label_derivation(run))
            deriv_ms.append(seconds * 1e3)
            exe = execution_from_derivation(run)
            labeler = DRLExecutionLabeler(drl, mode="name")
            _, seconds = time_call(lambda: labeler.run(exe))
            exec_ms.append(seconds * 1e3)
        table.add(
            size,
            sum(skl_ms) / len(skl_ms),
            sum(deriv_ms) / len(deriv_ms),
            sum(exec_ms) / len(exec_ms),
        )
    return table


def fig22_query_vs_skl(config: BenchConfig) -> Table:
    """Figure 22: query time for DRL/SKL x TCL/BFS combinations."""
    spec = bioaid(recursive=False)
    drl_tcl = DRL(spec, skeleton="tcl")
    drl_bfs = DRL(spec, skeleton="bfs")
    skl_tcl = SKL(spec, skeleton="tcl")
    skl_bfs = SKL(spec, skeleton="bfs")
    table = Table(
        id="fig22",
        title="Query time (us): DRL vs SKL with TCL vs BFS skeletons",
        columns=[
            "run_size",
            "drl_tcl_us",
            "drl_bfs_us",
            "skl_tcl_us",
            "skl_bfs_us",
        ],
        notes="paper: SKL(BFS) slower than DRL(BFS) by ~an order of magnitude "
        "(global spec search); SKL(TCL) slightly faster than DRL(TCL)",
    )
    for size in run_ladder(config):
        run = sampled_runs(spec, size, config, tag=22)[0]
        labels_dt = _run_vertex_labels(drl_tcl, run)
        labels_db = _run_vertex_labels(drl_bfs, run)
        labels_st = skl_tcl.label_run(run)
        labels_sb = skl_bfs.label_run(run)
        queries = max(1000, config.queries // 4)
        table.add(
            run.run_size(),
            time_per_query(drl_tcl.query, labels_dt, queries, seed=size) * 1e6,
            time_per_query(drl_bfs.query, labels_db, queries, seed=size) * 1e6,
            time_per_query(skl_tcl.query, labels_st, queries, seed=size) * 1e6,
            time_per_query(skl_bfs.query, labels_sb, queries, seed=size) * 1e6,
        )
    return table


def tab2_spec_overhead(config: Optional[BenchConfig] = None) -> Table:
    """Table 2: preprocessing overhead of labeling the specification."""
    spec = bioaid(recursive=False)
    table = Table(
        id="tab2",
        title="Overhead of labeling the specification (BioAID, no recursion)",
        columns=["scheme", "total_space_bits", "construction_ms"],
        notes="paper: DRL(TCL) 650 bits / 0.044 ms vs SKL(TCL) 5565 bits / "
        "0.163 ms -- SKL labels a much larger global specification",
    )
    skeleton, seconds = time_call(lambda: make_skeleton(spec, "tcl"))
    table.add("DRL(TCL)", skeleton.total_bits(), seconds * 1e3)
    skl, seconds = time_call(lambda: SKL(spec, skeleton="tcl"))
    table.add("SKL(TCL)", skl.skeleton_bits(), seconds * 1e3)
    return table


# ---------------------------------------------------------------------------
# Theory artifacts: Figure 1 and Theorem 1
# ---------------------------------------------------------------------------


def fig01_bounds(config: BenchConfig) -> Table:
    """Figure 1: measured label lengths for each graph-class row.

    Dynamic labels on: an unbounded-depth tree (Theta(n)); a
    bounded-depth tree (Theta(log n)); an arbitrary DAG execution
    (n - 1 bits); a non-recursive run, a linear recursive run
    (Theta(log n) via DRL); and a (nonlinear) recursive run (Theta(n)).
    """
    n = max(512, int(1024 * min(config.scale, 1.0)))
    table = Table(
        id="fig01",
        title=f"Figure 1 bounds, measured at n ~ {n}",
        columns=["graph_class", "scheme", "n", "max_label_bits"],
        notes="matches Figure 1: Theta(n) rows grow linearly, Theta(log n) "
        "rows stay near log2(n)",
    )
    # dynamic tree, path-shaped: prefix labels degenerate to Theta(n)
    labeler = PrefixLabeler()
    label = labeler.attach()
    for _ in range(n - 1):
        label = labeler.attach(label)
    table.add("tree (dynamic, unbounded depth)", "prefix [10]", n,
              PrefixLabeler.label_bits(label))
    # dynamic tree, bounded depth: flat tree -> Theta(log n)
    labeler = PrefixLabeler()
    for _ in range(n):
        label = labeler.attach()
    table.add("tree (dynamic, bounded depth)", "prefix [10]", n,
              PrefixLabeler.label_bits(label))
    # dynamic DAG: the Section 3.2 scheme, n-1 bits
    naive = NaiveDynamicScheme()
    for i in range(n):
        naive.insert(i, preds=[i - 1] if i else [])
    table.add("DAG (dynamic)", "naive 3.2", n, naive.label(n - 1).bits)
    # workflow runs
    for label_text, spec, r_mode, tag in (
        ("run, non-recursive (dynamic)", bioaid(recursive=False), None, 1),
        ("run, linear recursive (dynamic)", bioaid(), None, 2),
        ("run, recursive (dynamic)", theorem1_grammar(), "one_r", 3),
    ):
        scheme = DRL(spec, skeleton="tcl", r_mode=r_mode)
        run = sampled_runs(spec, n, BenchConfig(samples=1), tag=tag)[0]
        labels = _run_vertex_labels(scheme, run)
        table.add(
            label_text,
            "DRL",
            run.run_size(),
            max(scheme.label_bits(l) for l in labels.values()),
        )
    return table


def thm1_lower_bound(config: BenchConfig) -> Table:
    """Theorem 1: label growth on the Figure 6 grammar is linear in n."""
    spec = theorem1_grammar()
    scheme = DRL(spec, skeleton="tcl", r_mode="one_r")
    table = Table(
        id="thm1",
        title="Theorem 1 demo: Figure 6 grammar forces linear-size labels",
        columns=["run_size", "drl_one_r_bits", "naive_bits", "log2(n)_ref"],
        notes="any dynamic scheme is Omega(n) here; DRL degrades gracefully "
        "but grows linearly, far above the log2(n) reference",
    )
    size = 250
    while size <= max(2000, int(4000 * min(config.scale, 1.0))):
        run = sampled_runs(spec, size, BenchConfig(samples=1), tag=6)[0]
        labels = _run_vertex_labels(scheme, run)
        naive = NaiveDynamicScheme()
        exe = execution_from_derivation(run)
        naive_labels = naive.insert_all(exe)
        table.add(
            run.run_size(),
            max(scheme.label_bits(l) for l in labels.values()),
            max(l.bits for l in naive_labels.values()),
            math.log2(run.run_size()),
        )
        size *= 2
    return table


# ---------------------------------------------------------------------------
# ablations beyond the paper
# ---------------------------------------------------------------------------


def ablation_r_nodes(config: BenchConfig) -> Table:
    """R-node compression on/off: why Lemma 4.1 needs the R nodes."""
    spec = bioaid()
    compressed = DRL(spec, skeleton="tcl", r_mode="linear")
    simplified = DRL(spec, skeleton="tcl", r_mode="simplified")
    table = Table(
        id="abl-r",
        title="Ablation: R-node compression (BioAID, recursive)",
        columns=["run_size", "with_R_bits", "without_R_bits"],
        notes="without R nodes the tree depth tracks recursion depth and "
        "labels grow with it",
    )
    for size in run_ladder(config)[:4]:
        with_r, without_r = [], []
        for run in sampled_runs(spec, size, config, tag=31):
            labels = _run_vertex_labels(compressed, run)
            with_r.append(max(compressed.label_bits(l) for l in labels.values()))
            labels = _run_vertex_labels(simplified, run)
            without_r.append(
                max(simplified.label_bits(l) for l in labels.values())
            )
        table.add(size, sum(with_r) / len(with_r), sum(without_r) / len(without_r))
    return table


def ablation_execution_modes(config: BenchConfig) -> Table:
    """Name-inference vs logged execution labeling construction cost."""
    spec = bioaid()
    scheme = DRL(spec, skeleton="tcl")
    table = Table(
        id="abl-exec",
        title="Ablation: execution-based inference mode cost (BioAID)",
        columns=["run_size", "name_mode_ms", "logged_mode_ms"],
        notes="name inference pays for predecessor matching; logged mode "
        "follows the execution log directly",
    )
    for size in run_ladder(config)[:4]:
        name_ms, logged_ms = [], []
        for run in sampled_runs(spec, size, config, tag=32):
            exe = execution_from_derivation(run)
            labeler = DRLExecutionLabeler(scheme, mode="name")
            _, seconds = time_call(lambda: labeler.run(exe))
            name_ms.append(seconds * 1e3)
            labeler = DRLExecutionLabeler(scheme, mode="logged")
            _, seconds = time_call(lambda: labeler.run(exe))
            logged_ms.append(seconds * 1e3)
        table.add(size, sum(name_ms) / len(name_ms), sum(logged_ms) / len(logged_ms))
    return table


def baseline_comparison(config: BenchConfig) -> Table:
    """Extension: DRL vs general-purpose DAG indexes on the same runs.

    The paper's Section 1 surveys general reachability indexes (chain
    decomposition [15], GRAIL [24]); this table measures what they cost
    on workflow runs against the specification-aware DRL labels.  All
    four columns come out of the scheme registry -- the drivers no
    longer hand-construct any index.
    """
    from repro.bench.harness import build_registry_schemes
    from repro.schemes import Workload

    spec = bioaid()
    table = Table(
        id="abl-baselines",
        title="DRL vs general DAG indexes (BioAID runs)",
        columns=[
            "run_size",
            "drl_max_bits",
            "grail_max_bits",
            "chain_max_bits",
            "naive_max_bits",
            "drl_us",
            "grail_us",
            "chain_us",
        ],
        notes="general-purpose indexes pay per-vertex storage growing with "
        "the run (chains) or lose the O(1) guarantee (GRAIL fallback); "
        "DRL stays logarithmic by exploiting the specification",
    )
    rng = random.Random(config.seed)
    for size in run_ladder(config)[:4]:
        run = sampled_runs(spec, size, config, tag=41)[0]
        graph = run.graph
        vertices = sorted(graph.vertices())
        workload = Workload.from_run(spec, run)
        built = {
            b.name: b.scheme
            for b in build_registry_schemes(
                workload,
                names=["drl", "grail", "chains", "naive"],
                options={
                    "grail": {"traversals": 3, "rng": random.Random(size)}
                },
            )
        }
        queries = max(500, config.queries // 10)
        pairs = [
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(queries)
        ]

        def timed_pairs(scheme):
            _, seconds = time_call(
                lambda: [scheme.reaches(a, b) for a, b in pairs]
            )
            return seconds / queries * 1e6

        def max_bits(scheme):
            return max(scheme.label_bits_of(v) for v in vertices)

        table.add(
            run.run_size(),
            max_bits(built["drl"]),
            max_bits(built["grail"]),
            max_bits(built["chains"]),
            max_bits(built["naive"]),
            timed_pairs(built["drl"]),
            timed_pairs(built["grail"]),
            timed_pairs(built["chains"]),
        )
    return table


ALL_DRIVERS = {
    "fig01": fig01_bounds,
    "thm1": thm1_lower_bound,
    "fig14": fig14_label_length,
    "fig15": fig15_construction_time,
    "fig16": fig16_query_time,
    "fig17": fig17_varying_size,
    "fig18": fig18_varying_depth,
    "fig19": fig19_nonlinear,
    "fig20": fig20_drl_vs_skl_length,
    "fig21": fig21_construction_vs_skl,
    "fig22": fig22_query_vs_skl,
    "tab2": tab2_spec_overhead,
    "abl-r": ablation_r_nodes,
    "abl-exec": ablation_execution_modes,
    "abl-baselines": baseline_comparison,
}
