"""Shared benchmark utilities: configuration, timing, table formatting,
and registry-driven scheme construction.

Benchmarks that compare labeling schemes iterate the scheme registry
(:func:`build_registry_schemes`) instead of hand-constructing scheme
objects, so a newly registered scheme shows up in every comparison
without touching the drivers.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import UnsupportedWorkflowError
from repro.schemes import Workload
from repro.schemes import registry as scheme_registry
from repro.workflow.derivation import Derivation, sample_run
from repro.workflow.specification import Specification


@dataclass(frozen=True)
class BenchConfig:
    """Experiment scale knobs.

    ``scale`` multiplies the largest run size of the 1K..32K ladder the
    paper sweeps; ``samples`` is the number of sampled runs averaged per
    configuration (the paper uses 10^3; the default here keeps the full
    suite in minutes) and ``queries`` the number of sampled reachability
    queries for timing (paper: 10^5).
    """

    scale: float = 1.0
    samples: int = 3
    queries: int = 20_000
    seed: int = 2011  # SIGMOD'11

    @property
    def max_size(self) -> int:
        return max(1000, int(32_000 * self.scale))


def default_config() -> BenchConfig:
    """Configuration from the REPRO_SCALE / REPRO_SAMPLES environment."""
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    samples = int(os.environ.get("REPRO_SAMPLES", "3"))
    queries = int(os.environ.get("REPRO_QUERIES", "20000"))
    return BenchConfig(scale=scale, samples=samples, queries=queries)


def run_ladder(config: BenchConfig, start: int = 1000) -> List[int]:
    """The run-size ladder: 1K, 2K, 4K, ... up to ``config.max_size``."""
    sizes = []
    size = start
    while size <= config.max_size:
        sizes.append(size)
        size *= 2
    return sizes


def sampled_runs(
    spec: Specification, size: int, config: BenchConfig, tag: int = 0
) -> List[Derivation]:
    """``config.samples`` seeded runs of roughly ``size`` vertices."""
    runs = []
    for i in range(config.samples):
        rng = random.Random((config.seed, size, tag, i).__hash__() & 0xFFFFFFFF)
        runs.append(sample_run(spec, size, rng))
    return runs


def time_call(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def time_per_query(
    query: Callable[[object, object], bool],
    labels: Dict[int, object],
    count: int,
    seed: int = 0,
) -> float:
    """Average seconds per reachability query over random vertex pairs."""
    rng = random.Random(seed)
    vids = list(labels)
    pairs = [
        (labels[rng.choice(vids)], labels[rng.choice(vids)])
        for _ in range(count)
    ]
    start = time.perf_counter()
    for a, b in pairs:
        query(a, b)
    return (time.perf_counter() - start) / max(1, count)


@dataclass
class SchemeBuild:
    """One registry scheme built (or skipped) on one workload."""

    name: str
    scheme: Optional[object]
    seconds: float
    skip_reason: Optional[str] = None

    @property
    def built(self) -> bool:
        return self.scheme is not None


def build_registry_schemes(
    workload: Workload,
    names: Optional[Sequence[str]] = None,
    options: Optional[Dict[str, Dict[str, object]]] = None,
) -> List[SchemeBuild]:
    """Build every (requested) registered scheme on one workload, timed.

    Schemes that do not support the workload -- or abort mid-build, like
    the tree transform hitting its blow-up guard -- are returned with a
    ``skip_reason`` instead of silently dropped, so comparison tables
    can show *why* a column is missing.  ``options`` maps scheme names
    to extra ``build`` keyword arguments.
    """
    options = options or {}
    builds: List[SchemeBuild] = []
    for name in names if names is not None else scheme_registry.available():
        cls = scheme_registry.get(name)
        reason = cls.supports(workload)
        if reason is not None:
            builds.append(SchemeBuild(name, None, 0.0, reason))
            continue
        try:
            scheme, seconds = time_call(
                lambda: scheme_registry.build(
                    name, workload, **options.get(name, {})
                )
            )
        except UnsupportedWorkflowError as exc:
            builds.append(SchemeBuild(name, None, 0.0, str(exc)))
            continue
        builds.append(SchemeBuild(name, scheme, seconds))
    return builds


@dataclass
class Table:
    """One regenerated paper artifact: a titled table of rows."""

    id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: str = ""

    def add(self, *values: object) -> None:
        """Append one row; arity must match the column list."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row arity {len(values)} != column arity {len(self.columns)}"
            )
        self.rows.append(values)

    def as_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(table: Table) -> str:
    """Render a :class:`Table` as aligned monospace text."""
    header = [str(c) for c in table.columns]
    body = [[_fmt(v) for v in row] for row in table.rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"## {table.id}: {table.title}"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if table.notes:
        lines.append(f"note: {table.notes}")
    return "\n".join(lines)
