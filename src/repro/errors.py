"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  More specific subclasses indicate which subsystem
rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph structure or graph operation."""


class CycleError(GraphError):
    """A cycle was found where a DAG was required."""


class NotTwoTerminalError(GraphError):
    """A graph is not two-terminal (single source / single sink)."""


class SpecificationError(ReproError):
    """An invalid workflow specification."""


class DerivationError(ReproError):
    """An invalid derivation step or derivation sequence."""


class ExecutionError(ReproError):
    """An invalid execution event or insertion sequence."""


class LabelingError(ReproError):
    """A labeling scheme was misused (wrong grammar class, stale label...)."""


class UnsupportedWorkflowError(LabelingError):
    """The scheme does not support this class of workflows.

    Raised e.g. when the static SKL scheme is asked to label a run of a
    recursive specification.
    """


class ServiceError(ReproError):
    """An invalid operation against the provenance query service."""


class SessionNotFoundError(ServiceError):
    """A service request named a session that does not exist."""


class ProtocolError(ServiceError):
    """A malformed or unsupported service protocol message."""
