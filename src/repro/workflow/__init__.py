"""Workflow model: specifications, grammars, derivations and executions.

Implements Section 2 of the paper:

* :class:`~repro.workflow.specification.Specification` -- Definition 5,
  the tuple (Sigma, Delta, Delta_L, Delta_F, I, g0).
* :mod:`repro.workflow.grammar` -- the workflow grammar view
  (Definition 6): the ``induces`` relation, recursive vertices, and the
  grammar classification (non-recursive, linear recursive, parallel
  recursive, nonlinear; Definitions 10 and 13).
* :mod:`repro.workflow.derivation` -- graph derivations (Definition 9's
  input model): a derivation engine that samples runs from a specification
  with controllable size and repetition policies.
* :mod:`repro.workflow.execution` -- graph executions (Definition 8's input
  model): topological insertion sequences generated from derivations.
"""

from repro.workflow.specification import GraphKey, Specification
from repro.workflow.grammar import (
    GrammarClass,
    GrammarInfo,
    analyze_grammar,
)
from repro.workflow.derivation import (
    Derivation,
    DerivationEngine,
    DerivationPolicy,
    DerivationStep,
    Instance,
    sample_run,
)
from repro.workflow.execution import Execution, Insertion, execution_from_derivation

__all__ = [
    "Specification",
    "GraphKey",
    "GrammarClass",
    "GrammarInfo",
    "analyze_grammar",
    "Derivation",
    "DerivationEngine",
    "DerivationPolicy",
    "DerivationStep",
    "Instance",
    "sample_run",
    "Execution",
    "Insertion",
    "execution_from_derivation",
]
