"""Workflow specifications (Definition 5).

A specification is a system ``S = (Sigma, Delta, Delta_L, Delta_F, I, g0)``:
a finite name alphabet, the atomic names, the loop and fork names, a set of
implementation pairs ``(A, h)`` and a start graph.  Here the alphabet is
implicit (the union of all names that occur); atomic names are those with
no implementation.

Every specification graph (the start graph plus each implementation graph)
is identified by a stable :class:`GraphKey`, used by skeleton labeling
schemes to reference "the label of vertex u of graph h" without copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SpecificationError
from repro.graphs.two_terminal import TwoTerminalGraph

# A stable identifier for one specification graph: "g0" for the start
# graph, or "<head>#<i>" for the i-th implementation of composite <head>.
GraphKey = str

START_KEY: GraphKey = "g0"


@dataclass(frozen=True)
class Specification:
    """A workflow specification (Definition 5).

    Parameters
    ----------
    start:
        The start graph ``g0``.
    implementations:
        The set ``I`` as a sequence of ``(A, h)`` pairs.  A composite name
        may have several implementations ("or" semantics).
    loops / forks:
        The loop names ``Delta_L`` and fork names ``Delta_F``; must be
        disjoint subsets of the composite names.
    """

    start: TwoTerminalGraph
    implementations: Tuple[Tuple[str, TwoTerminalGraph], ...]
    loops: FrozenSet[str] = frozenset()
    forks: FrozenSet[str] = frozenset()
    name: str = "spec"
    _impl_index: Dict[str, List[GraphKey]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _graphs: Dict[GraphKey, TwoTerminalGraph] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _heads: Dict[GraphKey, Optional[str]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        counters: Dict[str, int] = {}
        self._graphs[START_KEY] = self.start
        self._heads[START_KEY] = None
        for head, graph in self.implementations:
            idx = counters.get(head, 0)
            counters[head] = idx + 1
            key = f"{head}#{idx}"
            self._graphs[key] = graph
            self._heads[key] = head
            self._impl_index.setdefault(head, []).append(key)

    # ------------------------------------------------------------------
    # name sets
    # ------------------------------------------------------------------
    @property
    def composite_names(self) -> FrozenSet[str]:
        """Names with at least one implementation (``Sigma \\ Delta``)."""
        return frozenset(self._impl_index)

    @property
    def atomic_names(self) -> FrozenSet[str]:
        """Names occurring in some graph but having no implementation."""
        occurring = set()
        for graph in self._graphs.values():
            occurring.update(graph.names())
        return frozenset(occurring - self.composite_names)

    @property
    def names(self) -> FrozenSet[str]:
        """The full alphabet ``Sigma``."""
        return self.atomic_names | self.composite_names

    def is_atomic(self, name: str) -> bool:
        """True when ``name`` has no implementation."""
        return name not in self._impl_index

    def is_loop(self, name: str) -> bool:
        """True when ``name`` is a loop name."""
        return name in self.loops

    def is_fork(self, name: str) -> bool:
        """True when ``name`` is a fork name."""
        return name in self.forks

    # ------------------------------------------------------------------
    # graph access
    # ------------------------------------------------------------------
    def graph_keys(self) -> Iterator[GraphKey]:
        """All graph keys: the start graph first, then implementations."""
        return iter(self._graphs)

    def graph(self, key: GraphKey) -> TwoTerminalGraph:
        """The specification graph identified by ``key``."""
        try:
            return self._graphs[key]
        except KeyError:
            raise SpecificationError(f"unknown graph key {key!r}") from None

    def head_of(self, key: GraphKey) -> Optional[str]:
        """The composite name ``key`` implements (None for the start graph)."""
        return self._heads[key]

    def impl_keys(self, head: str) -> List[GraphKey]:
        """Graph keys of all implementations of composite ``head``."""
        try:
            return list(self._impl_index[head])
        except KeyError:
            raise SpecificationError(f"{head!r} has no implementations") from None

    def graphs_to_label(self) -> Mapping[GraphKey, TwoTerminalGraph]:
        """The set ``G(S)`` of Section 5.1: start graph + implementations."""
        return dict(self._graphs)

    # ------------------------------------------------------------------
    # statistics used by the experiments
    # ------------------------------------------------------------------
    @property
    def max_graph_size(self) -> int:
        """``n_G``: the maximum size of a specification graph (Table 1)."""
        return max(len(g) for g in self._graphs.values())

    @property
    def average_graph_size(self) -> float:
        """Average specification-graph size (reported for BioAID: 10.5)."""
        sizes = [len(g) for g in self._graphs.values()]
        return sum(sizes) / len(sizes)

    def stats(self) -> Dict[str, object]:
        """Summary statistics for reporting."""
        return {
            "name": self.name,
            "graphs": len(self._graphs),
            "composites": len(self.composite_names),
            "loops": len(self.loops),
            "forks": len(self.forks),
            "max_graph_size": self.max_graph_size,
            "avg_graph_size": round(self.average_graph_size, 2),
        }


def make_spec(
    start: TwoTerminalGraph,
    implementations: Sequence[Tuple[str, TwoTerminalGraph]],
    loops: Sequence[str] = (),
    forks: Sequence[str] = (),
    name: str = "spec",
    validate: bool = True,
) -> Specification:
    """Build and (by default) validate a :class:`Specification`."""
    spec = Specification(
        start=start,
        implementations=tuple(implementations),
        loops=frozenset(loops),
        forks=frozenset(forks),
        name=name,
    )
    if validate:
        from repro.workflow.validation import validate_specification

        validate_specification(spec)
    return spec
