"""Workflow grammar analysis (Definitions 6, 10 and 13).

The workflow grammar of a specification has one production ``A := h`` per
implementation pair plus the infinite families ``A := S(h,...,h)`` (loops)
and ``A := P(h,...,h)`` (forks).  This module derives everything the
labeling schemes need from the *finite* specification:

* the ``induces`` relation between names (``A |-> B`` when some body of A
  contains a vertex named B) and its reflexive-transitive closure;
* the *recursive vertices* of each production body (vertices whose name
  induces the head);
* the grammar class: non-recursive, linear recursive (Definition 10), or
  nonlinear -- with the parallel-recursive subclass (Definition 13);
* productivity (which names can derive an all-atomic graph), used by the
  derivation engine to terminate recursions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Mapping, Optional, Set

from repro.errors import SpecificationError
from repro.graphs.reachability import reaches
from repro.workflow.specification import GraphKey, START_KEY, Specification


class GrammarClass(Enum):
    """Coarse classification used to pick a labeling strategy."""

    NON_RECURSIVE = "non-recursive"
    LINEAR_RECURSIVE = "linear-recursive"
    NONLINEAR_RECURSIVE = "nonlinear-recursive"


@dataclass(frozen=True)
class GrammarInfo:
    """Precomputed grammar facts for one specification.

    ``recursive_vertices[key]`` lists the recursive vertices of the body
    identified by graph key ``key`` (empty for the start graph, whose
    vertices are never recursive -- it is not a production body).
    ``designated_recursive[key]`` is the single recursive vertex compressed
    by an R node: for linear grammars it is *the* recursive vertex; for
    nonlinear grammars run in "one-R" mode it is the smallest-id one
    (Section 6's optimization), and the remaining recursive vertices are
    treated non-recursively.
    """

    grammar_class: GrammarClass
    parallel_recursive: bool
    induces: Mapping[str, FrozenSet[str]]
    recursive_vertices: Mapping[GraphKey, FrozenSet[int]]
    designated_recursive: Mapping[GraphKey, Optional[int]]
    productive: FrozenSet[str]
    escape_impl: Mapping[str, GraphKey]

    @property
    def is_recursive(self) -> bool:
        """True when some production has at least one recursive vertex."""
        return self.grammar_class is not GrammarClass.NON_RECURSIVE

    @property
    def is_linear(self) -> bool:
        """True for non-recursive or linear recursive grammars."""
        return self.grammar_class is not GrammarClass.NONLINEAR_RECURSIVE

    def is_recursive_vertex(self, key: GraphKey, vid: int) -> bool:
        """True when ``vid`` is a recursive vertex of body ``key``."""
        return vid in self.recursive_vertices.get(key, frozenset())

    def is_designated(self, key: GraphKey, vid: int) -> bool:
        """True when ``vid`` is the R-compressed recursive vertex of ``key``."""
        return self.designated_recursive.get(key) == vid


def direct_induces(spec: Specification) -> Dict[str, Set[str]]:
    """The relation ``A |->_G B`` restricted to composite heads.

    Only base productions ``A := h`` matter: the series/parallel families
    replicate the same body and therefore mention the same names.
    """
    rel: Dict[str, Set[str]] = {head: set() for head in spec.composite_names}
    for key in spec.graph_keys():
        head = spec.head_of(key)
        if head is None:
            continue
        rel[head].update(spec.graph(key).names())
    return rel


def induces_closure(spec: Specification) -> Dict[str, FrozenSet[str]]:
    """Reflexive-transitive closure ``|->*`` of the induces relation.

    Returned per composite name; atomic names induce only themselves and
    are omitted (they have no productions).
    """
    direct = direct_induces(spec)
    closure: Dict[str, Set[str]] = {a: {a} | direct[a] for a in direct}
    changed = True
    while changed:
        changed = False
        for a in closure:
            additions: Set[str] = set()
            for b in closure[a]:
                if b in direct:
                    additions |= closure[b]
            if not additions <= closure[a]:
                closure[a] |= additions
                changed = True
    return {a: frozenset(s) for a, s in closure.items()}


def _recursive_vertices(
    spec: Specification, closure: Mapping[str, FrozenSet[str]]
) -> Dict[GraphKey, FrozenSet[int]]:
    """Recursive vertices of every production body.

    A vertex ``u`` of body ``h`` in production ``A := h`` is recursive when
    ``Name(u)`` induces ``A``.
    """
    out: Dict[GraphKey, FrozenSet[int]] = {START_KEY: frozenset()}
    for key in spec.graph_keys():
        head = spec.head_of(key)
        if head is None:
            continue
        graph = spec.graph(key)
        rec = frozenset(
            v
            for v in graph.vertices()
            if head in closure.get(graph.name(v), frozenset())
        )
        out[key] = rec
    return out


def _productive_names(spec: Specification) -> FrozenSet[str]:
    """Names that can derive an all-atomic graph (fixpoint computation)."""
    productive: Set[str] = set(spec.atomic_names)
    changed = True
    while changed:
        changed = False
        for head in spec.composite_names:
            if head in productive:
                continue
            for key in spec.impl_keys(head):
                body = spec.graph(key)
                if all(name in productive for name in body.names()):
                    productive.add(head)
                    changed = True
                    break
    return frozenset(productive)


def _escape_impls(
    spec: Specification,
    recursive_vertices: Mapping[GraphKey, FrozenSet[int]],
    productive: FrozenSet[str],
) -> Dict[str, GraphKey]:
    """Pick, per composite, an implementation that makes progress toward
    termination.

    Preference order: a body whose composite occurrences all avoid the head
    (non-recursive body), else any body with all-productive names.  Used by
    the derivation engine when the size budget is exhausted.
    """
    escapes: Dict[str, GraphKey] = {}
    for head in spec.composite_names:
        best: Optional[GraphKey] = None
        for key in spec.impl_keys(head):
            body = spec.graph(key)
            if any(name not in productive for name in body.names()):
                continue
            if not recursive_vertices[key]:
                best = key
                break
            if best is None:
                best = key
        if best is None:
            raise SpecificationError(
                f"composite {head!r} has no productive implementation"
            )
        escapes[head] = best
    return escapes


def analyze_grammar(spec: Specification) -> GrammarInfo:
    """Compute the full :class:`GrammarInfo` for a specification.

    Classification (with ``rec(key)`` the recursive vertices of body
    ``key``):

    * some ``rec(key)`` nonempty -> recursive;
    * Definition 10 quantifies over the infinite production set, so a loop
      or fork body with ``k`` recursive vertices yields productions with
      ``2k`` of them: linear recursion additionally requires loop/fork
      bodies to have *no* recursive vertices (this is Lemma 5.1);
    * parallel recursive (Definition 13): two recursive vertices mutually
      unreachable in some body -- including the ``P(h, h)`` fork copies.
    """
    closure = induces_closure(spec)
    rec_vertices = _recursive_vertices(spec, closure)
    productive = _productive_names(spec)
    missing = spec.composite_names - productive
    if missing:
        raise SpecificationError(
            f"unproductive composite names (cannot terminate): {sorted(missing)}"
        )

    recursive = any(rec_vertices[key] for key in rec_vertices)
    linear = True
    parallel = False
    for key in spec.graph_keys():
        head = spec.head_of(key)
        if head is None:
            continue
        rec = rec_vertices[key]
        if not rec:
            continue
        body = spec.graph(key)
        if head in spec.loops:
            # A := S(h, h) has two copies of each recursive vertex; copy 1
            # reaches copy 2 through the sink-source chain, so the grammar
            # is nonlinear but the duplicated vertices are series-related.
            linear = False
        elif head in spec.forks:
            # A := P(h, h): the two copies are mutually unreachable.
            linear = False
            parallel = True
        elif len(rec) > 1:
            linear = False
            rec_list = sorted(rec)
            for i, u1 in enumerate(rec_list):
                for u2 in rec_list[i + 1 :]:
                    if not reaches(body.dag, u1, u2) and not reaches(
                        body.dag, u2, u1
                    ):
                        parallel = True

    if not recursive:
        grammar_class = GrammarClass.NON_RECURSIVE
    elif linear:
        grammar_class = GrammarClass.LINEAR_RECURSIVE
    else:
        grammar_class = GrammarClass.NONLINEAR_RECURSIVE

    designated: Dict[GraphKey, Optional[int]] = {}
    for key, rec in rec_vertices.items():
        head = spec.head_of(key)
        if head is None or head in spec.loops or head in spec.forks or not rec:
            # Loop/fork bodies are never R-compressed: their replicated
            # copies would share one designated vertex ambiguously.
            designated[key] = None
        else:
            designated[key] = min(rec)

    return GrammarInfo(
        grammar_class=grammar_class,
        parallel_recursive=parallel,
        induces=closure,
        recursive_vertices=rec_vertices,
        designated_recursive=designated,
        productive=productive,
        escape_impl=_escape_impls(spec, rec_vertices, productive),
    )
