"""Specification validation, including Section 5.3's naming conditions.

Two levels:

* :func:`validate_specification` -- structural sanity required by every
  scheme: graphs are spanning two-terminal DAGs, loop/fork names are
  disjoint composite names, every composite is productive.
* :func:`check_naming_conditions` -- the two extra conditions that the
  *name-inference* execution-based scheme relies on (Section 5.3):

  1. all vertices of each specification graph have distinct names;
  2. the source and sink of every graph have unique atomic names that do
     not occur in any other specification graph.

  Any specification can be rewritten to satisfy them (the paper notes this
  can be done by renaming and adding dummy modules); scientific-workflow
  systems that log a run-to-specification mapping can skip them entirely
  (use the *logged* execution mode instead).
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.errors import SpecificationError
from repro.workflow.specification import Specification


def validate_specification(spec: Specification) -> None:
    """Raise :class:`SpecificationError` when the specification is invalid."""
    composites = spec.composite_names
    overlap = spec.loops & spec.forks
    if overlap:
        raise SpecificationError(f"names both loop and fork: {sorted(overlap)}")
    unknown = (spec.loops | spec.forks) - composites
    if unknown:
        raise SpecificationError(
            f"loop/fork names without implementations: {sorted(unknown)}"
        )
    for key in spec.graph_keys():
        graph = spec.graph(key)
        try:
            graph.validate(require_spanning=True)
        except Exception as exc:
            raise SpecificationError(f"graph {key!r} invalid: {exc}") from exc
        head = spec.head_of(key)
        if head is not None and graph.name(graph.source) in composites:
            raise SpecificationError(
                f"graph {key!r}: source must be atomic (dummy module)"
            )
        if head is not None and graph.name(graph.sink) in composites:
            raise SpecificationError(
                f"graph {key!r}: sink must be atomic (dummy module)"
            )
    # Productivity is checked by grammar analysis; trigger it here so an
    # unproductive spec fails fast.
    from repro.workflow.grammar import analyze_grammar

    analyze_grammar(spec)


def naming_condition_violations(spec: Specification) -> List[str]:
    """Return human-readable violations of the Section 5.3 conditions."""
    problems: List[str] = []
    for key in spec.graph_keys():
        graph = spec.graph(key)
        dupes = [n for n, c in Counter(graph.names()).items() if c > 1]
        if dupes:
            problems.append(
                f"graph {key!r}: duplicate vertex names {sorted(dupes)}"
            )
    # terminal names must be globally unique and atomic
    terminal_names: Counter = Counter()
    for key in spec.graph_keys():
        graph = spec.graph(key)
        terminal_names[graph.name(graph.source)] += 1
        terminal_names[graph.name(graph.sink)] += 1
    occurrences: Counter = Counter()
    for key in spec.graph_keys():
        occurrences.update(spec.graph(key).names())
    for key in spec.graph_keys():
        graph = spec.graph(key)
        for term, role in ((graph.source, "source"), (graph.sink, "sink")):
            name = graph.name(term)
            if not spec.is_atomic(name):
                problems.append(f"graph {key!r}: {role} name {name!r} not atomic")
            if occurrences[name] > 1:
                problems.append(
                    f"graph {key!r}: {role} name {name!r} occurs "
                    f"{occurrences[name]} times across the specification"
                )
    return problems


def check_naming_conditions(spec: Specification) -> None:
    """Raise unless the Section 5.3 naming conditions hold."""
    problems = naming_condition_violations(spec)
    if problems:
        raise SpecificationError(
            "naming conditions violated:\n  " + "\n  ".join(problems)
        )
