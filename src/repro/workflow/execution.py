"""Graph executions: insertion streams over run graphs (Definition 8).

An execution reveals the run one vertex at a time, in some topological
order: module executions are reported as they happen, each with edges from
the already-executed vertices that produced its inputs.  This module turns
a recorded derivation into such an insertion stream.

Each :class:`Insertion` optionally carries its *log origin* -- which
derivation step, copy and template vertex produced it.  The execution-based
labeling scheme has two modes (Section 5.3):

* *name inference*: uses only ``(vid, name, preds)`` and the naming
  conditions of the specification;
* *logged*: uses the origin metadata, mirroring real scientific-workflow
  systems that record a run-to-specification mapping in execution logs.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.graphs.digraph import NamedDAG
from repro.graphs.random_graphs import random_insertion_order
from repro.workflow.derivation import Derivation

# (graph key of the instantiated specification graph, instance-copy token,
# template vertex id).  The copy token is a run-wide sequence number: 0 for
# the start instance, then one per instantiated copy in derivation order.
# This is the "run vertex -> specification module" mapping that scientific
# workflow systems record in execution logs (Section 5.3).
LogOrigin = Tuple[str, int, int]


@dataclass(frozen=True)
class Insertion:
    """One step of a graph execution: ``g + (v, C)`` (Definition 3).

    ``slot`` is logged-mode metadata identifying which composite occurrence
    this vertex's instance copy expands: ``(parent copy token, template
    vertex of the composite inside the parent's graph)``; None for the
    start instance.  Together with ``origin`` it is the full
    run-to-specification mapping a workflow engine logs.
    """

    vid: int
    name: str
    preds: FrozenSet[int]
    origin: Optional[LogOrigin] = None
    slot: Optional[Tuple[int, int]] = None


@dataclass
class Execution:
    """A complete execution of a run graph.

    ``insertions`` lists every vertex in a topological order of the final
    run graph; replaying them with :func:`repro.graphs.ops.insert_vertex`
    reproduces the run.
    """

    derivation: Derivation
    insertions: List[Insertion]

    def __iter__(self) -> Iterator[Insertion]:
        return iter(self.insertions)

    def __len__(self) -> int:
        return len(self.insertions)

    def replay(self) -> NamedDAG:
        """Materialize the run graph by replaying the insertions."""
        graph = NamedDAG()
        for ins in self.insertions:
            graph.add_vertex(ins.vid, ins.name)
            for p in ins.preds:
                if p not in graph:
                    raise ExecutionError(
                        f"insertion {ins.vid} references future vertex {p}"
                    )
                graph.add_edge(p, ins.vid)
        return graph


def _origin_map(
    derivation: Derivation,
) -> Tuple[Dict[int, LogOrigin], Dict[int, Optional[Tuple[int, int]]]]:
    """Per-vertex log origins and slot linkage.

    Returns ``(origins, slots)``: ``origins`` maps every atomic run vertex
    to ``(graph key, copy token, template vertex)``; ``slots`` maps it to
    the ``(parent copy token, composite template vertex)`` its instance
    copy expands (None for the start instance).
    """
    spec = derivation.spec
    origins: Dict[int, LogOrigin] = {}
    slots: Dict[int, Optional[Tuple[int, int]]] = {}
    # full reverse map (composites included) to resolve step targets
    locate: Dict[int, Tuple[int, int]] = {}
    all_instances = derivation.all_instances()
    for token, inst in enumerate(all_instances):
        for tv, run_vid in inst.mapping.items():
            locate[run_vid] = (token, tv)
    # instance copies receive tokens in derivation order: start = 0, then
    # each step's copies; record which composite occurrence each expands.
    instance_slot: Dict[int, Optional[Tuple[int, int]]] = {0: None}
    next_token = 1
    for step in derivation.steps:
        parent = locate[step.target]
        for _ in step.copies:
            instance_slot[next_token] = parent
            next_token += 1
    for token, inst in enumerate(all_instances):
        template = spec.graph(inst.key)
        for tv in template.vertices():
            if spec.is_atomic(template.name(tv)):
                run_vid = inst.mapping[tv]
                origins[run_vid] = (inst.key, token, tv)
                slots[run_vid] = instance_slot[token]
    return origins, slots


def deterministic_insertion_order(graph: NamedDAG) -> List[int]:
    """Smallest-vertex-first topological order.

    Run vertex ids are allocated in derivation order, so this order visits
    instance copies in their creation order; with it the execution-based
    labeler reproduces the derivation-based labels *exactly* (Section 5.3).
    """
    indeg = {v: graph.in_degree(v) for v in graph.vertices()}
    heap = [v for v, d in indeg.items() if d == 0]
    heapq.heapify(heap)
    order: List[int] = []
    while heap:
        v = heapq.heappop(heap)
        order.append(v)
        for w in graph.successors(v):
            indeg[w] -= 1
            if indeg[w] == 0:
                heapq.heappush(heap, w)
    if len(order) != len(indeg):
        raise ExecutionError("graph contains a cycle")
    return order


def execution_from_derivation(
    derivation: Derivation,
    rng: Optional[random.Random] = None,
) -> Execution:
    """Produce an execution (random topological insertion order) of a run.

    The derivation must be complete (all vertices atomic).  With ``rng``
    None, ties break deterministically by vertex id.
    """
    graph = derivation.graph
    spec = derivation.spec
    for v in graph.vertices():
        if not spec.is_atomic(graph.name(v)):
            raise ExecutionError(
                "derivation is not complete; run still has composite vertices"
            )
    if rng is None:
        order = deterministic_insertion_order(graph)
    else:
        order = random_insertion_order(graph, rng)
    origins, slots = _origin_map(derivation)
    insertions = [
        Insertion(
            vid=v,
            name=graph.name(v),
            preds=frozenset(graph.predecessors(v)),
            origin=origins.get(v),
            slot=slots.get(v),
        )
        for v in order
    ]
    return Execution(derivation=derivation, insertions=insertions)
