"""Bounded enumeration of the run language L(G) (Definition 7).

Systematically explores the derivation choice space -- which
implementation each composite picks and how many copies each loop/fork
replicates -- up to caps, yielding complete derivations.  Used by tests
to check properties *exhaustively* over every small member of the
language rather than over sampled runs, and handy for understanding a
specification's behaviour.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.workflow.derivation import Derivation, DerivationEngine
from repro.workflow.grammar import GrammarInfo, analyze_grammar
from repro.workflow.specification import Specification

# one branch decision: (impl key, copies)
Choice = Tuple[str, int]


def _choices_for(
    spec: Specification, head: str, max_copies: int
) -> List[Choice]:
    options: List[Choice] = []
    replicates = spec.is_loop(head) or spec.is_fork(head)
    for impl_key in spec.impl_keys(head):
        if replicates:
            for copies in range(1, max_copies + 1):
                options.append((impl_key, copies))
        else:
            options.append((impl_key, 1))
    return options


def enumerate_runs(
    spec: Specification,
    max_size: int = 60,
    max_copies: int = 2,
    max_runs: Optional[int] = None,
    info: Optional[GrammarInfo] = None,
) -> Iterator[Derivation]:
    """Yield every complete derivation within the caps.

    ``max_size`` bounds the run graph's vertex count (branches exceeding
    it are pruned, which also terminates recursion); ``max_copies``
    bounds loop/fork replication; ``max_runs`` truncates the stream.

    Enumeration is depth-first over the per-step choice sequence, with
    composites expanded smallest-vertex-id-first so each choice sequence
    maps to exactly one derivation.
    """
    if info is None:
        info = analyze_grammar(spec)
    produced = 0

    def replay(choices: List[Choice]) -> Tuple[DerivationEngine, bool]:
        """Apply a choice prefix; returns (engine, within_bounds)."""
        engine = DerivationEngine(spec, info=info)
        engine.begin()
        for impl_key, copies in choices:
            if not engine.pending:
                break
            target = min(engine.pending)
            engine.expand(target, impl_key, copies)
            if len(engine.graph) > max_size:
                return engine, False
        return engine, len(engine.graph) <= max_size

    # depth-first search over choice sequences
    stack: List[List[Choice]] = [[]]
    while stack:
        prefix = stack.pop()
        engine, ok = replay(prefix)
        if not ok:
            continue
        if not engine.pending:
            yield engine.finish()
            produced += 1
            if max_runs is not None and produced >= max_runs:
                return
            continue
        head = engine.pending[min(engine.pending)]
        for choice in reversed(_choices_for(spec, head, max_copies)):
            stack.append(prefix + [choice])


def count_runs(
    spec: Specification,
    max_size: int = 60,
    max_copies: int = 2,
    cap: int = 10_000,
) -> int:
    """Number of distinct bounded runs (up to ``cap``)."""
    count = 0
    for _ in enumerate_runs(spec, max_size=max_size, max_copies=max_copies):
        count += 1
        if count >= cap:
            break
    return count
