"""The Theorem 4 construction: a differential production for nonlinear
recursive grammars (Figures 10 and 11).

Theorem 4 proves that *no* nonlinear recursive workflow admits a compact
derivation-based dynamic scheme, by constructing from any production
with two recursive vertices a new derived production ``A := h*``
containing a *differential vertex* ``w`` that reaches exactly one of two
recursive vertices named ``A`` -- the gadget that forces label domains
to split (as in Theorem 1's counting argument).

This module makes the construction executable:

1. find a production ``A := h`` with two recursive vertices;
2. expand each recursive vertex along the ``induces`` chain until it is
   literally named ``A`` (yielding ``A := h'``);
3. replace one of the two ``A``-vertices with a fresh copy of ``h'``;
   the copy's source (parallel case, Fig 10) or sink (series case,
   Fig 11) is the differential vertex.

The result is returned as a :class:`DifferentialProduction` whose
defining property -- ``w`` reaches exactly one of the two recursive
vertices -- is asserted by the tests for every nonlinear grammar in the
test-suite's strategy space.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import UnsupportedWorkflowError
from repro.graphs.digraph import IdAllocator, NamedDAG
from repro.graphs.ops import replace_vertex
from repro.graphs.reachability import reaches
from repro.workflow.grammar import GrammarInfo, analyze_grammar, direct_induces
from repro.workflow.specification import GraphKey, Specification


@dataclass(frozen=True)
class DifferentialProduction:
    """The Theorem 4 gadget ``A := h*``.

    ``graph`` is the derived production body; ``recursive_a`` and
    ``recursive_b`` are its two recursive vertices (both named ``head``)
    and ``differential`` is the vertex reaching exactly one of them.
    ``case`` is ``'parallel'`` (Figure 10) or ``'series'`` (Figure 11).
    """

    head: str
    graph: NamedDAG
    recursive_a: int
    recursive_b: int
    differential: int
    case: str


def _induces_path(spec: Specification, start: str, goal: str) -> List[str]:
    """Shortest chain start -> ... -> goal in the direct-induces relation."""
    rel = direct_induces(spec)
    parent: Dict[str, Optional[str]] = {start: None}
    queue = deque((start,))
    while queue:
        name = queue.popleft()
        if name == goal:
            path = [name]
            while parent[name] is not None:
                name = parent[name]
                path.append(name)
            path.reverse()
            return path
        for succ in rel.get(name, ()):  # only composites have entries
            if succ not in parent and succ in rel:
                parent[succ] = name
                queue.append(succ)
    raise UnsupportedWorkflowError(f"{start!r} does not induce {goal!r}")


def _expand_until_named(
    spec: Specification,
    body: NamedDAG,
    vertex: int,
    goal: str,
    alloc: IdAllocator,
) -> int:
    """Apply productions inside ``body`` until ``vertex`` becomes a
    vertex named ``goal``; returns its id."""
    current = vertex
    while body.name(current) != goal:
        name = body.name(current)
        path = _induces_path(spec, name, goal)
        next_name = path[1] if len(path) > 1 else goal
        # choose an implementation of `name` that mentions next_name
        impl_key = next(
            key
            for key in spec.impl_keys(name)
            if next_name in spec.graph(key).names()
        )
        mapping, fragment = _instantiate(spec, impl_key, alloc)
        replace_vertex(body, current, fragment)
        template = spec.graph(impl_key)
        current = next(
            mapping[tv]
            for tv in template.vertices()
            if template.name(tv) == next_name
        )
    return current


def _instantiate(
    spec: Specification, key: GraphKey, alloc: IdAllocator
) -> Tuple[Dict[int, int], NamedDAG]:
    template = spec.graph(key)
    mapping = {tv: alloc.fresh() for tv in template.vertices()}
    return mapping, template.dag.relabeled(mapping)


def differential_production(
    spec: Specification, info: Optional[GrammarInfo] = None
) -> DifferentialProduction:
    """Build the Theorem 4 production ``A := h*`` for a nonlinear grammar.

    Raises :class:`UnsupportedWorkflowError` for linear recursive or
    non-recursive grammars (Theorem 4 does not apply to them).
    """
    if info is None:
        info = analyze_grammar(spec)
    if info.is_linear:
        raise UnsupportedWorkflowError(
            "Theorem 4 applies only to nonlinear recursive grammars"
        )
    # step 1: a production with two recursive vertices
    head: Optional[str] = None
    body_key: Optional[GraphKey] = None
    for key, rec in info.recursive_vertices.items():
        candidate_head = spec.head_of(key)
        if candidate_head is None or len(rec) < 2:
            continue
        if candidate_head in spec.loops or candidate_head in spec.forks:
            continue  # replicated copies handled via the plain case below
        head, body_key = candidate_head, key
        break
    if head is None or body_key is None:
        raise UnsupportedWorkflowError(
            "no plain production with two recursive vertices; the "
            "nonlinearity comes from a recursive loop/fork body"
        )

    alloc = IdAllocator()
    mapping, body = _instantiate(spec, body_key, alloc)
    rec_vertices = sorted(
        mapping[tv] for tv in info.recursive_vertices[body_key]
    )[:2]
    # step 2: expand both recursive vertices until they are named `head`
    u1 = _expand_until_named(spec, body, rec_vertices[0], head, alloc)
    u2 = _expand_until_named(spec, body, rec_vertices[1], head, alloc)

    # step 3: the h' -> h* replacement of the proof
    if not reaches(body, u1, u2) and not reaches(body, u2, u1):
        case = "parallel"  # Figure 10
    else:
        case = "series"  # Figure 11
        if reaches(body, u2, u1):
            u1, u2 = u2, u1  # ensure u1 ~> u2
    # replace u1 with a fresh copy of h' (the body built so far)
    copy_mapping = {v: alloc.fresh() for v in body.vertices()}
    h_prime_copy = body.relabeled(copy_mapping)
    u1_prime = copy_mapping[u1]
    copy_sources = [v for v in h_prime_copy.vertices() if not h_prime_copy.predecessors(v)]
    copy_sinks = [v for v in h_prime_copy.vertices() if not h_prime_copy.successors(v)]
    replace_vertex(body, u1, h_prime_copy)
    # The recursive pair of h* is (u1', u2): the copy's u1 and the outer
    # u2.  In the parallel case w = the copy's source reaches u1' but not
    # u2; in the series case w = the copy's sink reaches u2 (through
    # u1's former successors) but not u1'.
    if case == "parallel":
        differential = copy_sources[0]
    else:
        differential = copy_sinks[0]
    return DifferentialProduction(
        head=head,
        graph=body,
        recursive_a=u1_prime,
        recursive_b=u2,
        differential=differential,
        case=case,
    )
