"""Run and parse-tree statistics for reporting.

Summaries of what a derivation actually did -- how often each module
ran, how many copies each loop/fork produced, how deep recursions went.
Used by the bench harness notes, the examples and by users profiling
their own workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.parsetree.explicit import ExplicitParseTree, NodeKind, build_explicit_tree
from repro.workflow.derivation import Derivation
from repro.workflow.grammar import GrammarInfo, analyze_grammar


@dataclass
class RunStats:
    """Structural statistics of one workflow run."""

    run_size: int
    edge_count: int
    module_counts: Dict[str, int]
    loop_iterations: Dict[str, List[int]]
    fork_widths: Dict[str, List[int]]
    recursion_chain_lengths: List[int]
    tree_nodes: int
    tree_depth: int
    tree_depth_bound: int
    max_outdegree: int

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"run: {self.run_size} vertices, {self.edge_count} edges",
            f"parse tree: {self.tree_nodes} nodes, depth "
            f"{self.tree_depth}/{self.tree_depth_bound} (bound), "
            f"max outdegree {self.max_outdegree}",
        ]
        for head, iterations in sorted(self.loop_iterations.items()):
            if iterations:
                lines.append(
                    f"loop {head}: {len(iterations)} activation(s), "
                    f"iterations {min(iterations)}..{max(iterations)}"
                )
        for head, widths in sorted(self.fork_widths.items()):
            if widths:
                lines.append(
                    f"fork {head}: {len(widths)} activation(s), "
                    f"widths {min(widths)}..{max(widths)}"
                )
        if self.recursion_chain_lengths:
            lines.append(
                f"recursion chains: {len(self.recursion_chain_lengths)}, "
                f"lengths {min(self.recursion_chain_lengths)}.."
                f"{max(self.recursion_chain_lengths)}"
            )
        top = Counter(self.module_counts).most_common(5)
        lines.append(
            "top modules: "
            + ", ".join(f"{name} x{count}" for name, count in top)
        )
        return "\n".join(lines)


def run_stats(
    derivation: Derivation,
    info: Optional[GrammarInfo] = None,
    tree: Optional[ExplicitParseTree] = None,
) -> RunStats:
    """Compute :class:`RunStats` for a completed derivation."""
    spec = derivation.spec
    if info is None:
        info = analyze_grammar(spec)
    if tree is None:
        r_mode = "linear" if info.is_linear else "one_r"
        tree = build_explicit_tree(derivation, info=info, r_mode=r_mode)

    graph = derivation.graph
    module_counts: Counter = Counter(
        graph.name(v) for v in graph.vertices()
    )

    loop_iterations: Dict[str, List[int]] = {h: [] for h in spec.loops}
    fork_widths: Dict[str, List[int]] = {h: [] for h in spec.forks}
    for step in derivation.steps:
        if step.mode == "series":
            loop_iterations[step.head].append(len(step.copies))
        elif step.mode == "parallel":
            fork_widths[step.head].append(len(step.copies))

    chain_lengths = [
        len(node.children)
        for node in tree.nodes()
        if node.kind is NodeKind.R
    ]

    return RunStats(
        run_size=len(graph),
        edge_count=graph.edge_count(),
        module_counts=dict(module_counts),
        loop_iterations=loop_iterations,
        fork_widths=fork_widths,
        recursion_chain_lengths=chain_lengths,
        tree_nodes=tree.node_count,
        tree_depth=tree.depth(),
        tree_depth_bound=tree.depth_bound(),
        max_outdegree=tree.max_outdegree,
    )
