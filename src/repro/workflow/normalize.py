"""Specification normalization for name-based execution inference.

Section 5.3 assumes two naming conditions (distinct vertex names per
graph; globally unique atomic source/sink names) and notes that *"any
specification can be modified to satisfy the above two conditions by
renaming module names and introducing new dummy modules."*  This module
implements that rewriting:

* duplicate **atomic** names inside one graph are suffixed (``x~2``);
* duplicate **composite** names inside one graph are *aliased*: a fresh
  composite name (``A~2``) is introduced that shares all of ``A``'s
  implementations, so the generated language is unchanged up to the
  renaming;
* non-atomic or non-unique terminals are fixed by wrapping each offending
  graph with fresh *dummy* source/sink modules (``src~<graph>`` /
  ``snk~<graph>``), which only forward data.

The result is a new :class:`Specification` together with a
:class:`NameMap` translating normalized names back to the originals, so
provenance answers can be reported in the user's vocabulary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.graphs.two_terminal import TwoTerminalGraph
from repro.workflow.specification import GraphKey, Specification, make_spec
from repro.workflow.validation import naming_condition_violations

_SEP = "~"


@dataclass
class NameMap:
    """Translation between normalized and original module names."""

    to_original: Dict[str, str] = field(default_factory=dict)

    def original(self, name: str) -> str:
        """The pre-normalization name (identity for untouched names)."""
        return self.to_original.get(name, name)

    def record(self, new: str, old: str) -> None:
        self.to_original[new] = old


class _Renamer:
    """Allocates fresh names, remembering the originals."""

    def __init__(self, taken: Set[str], name_map: NameMap) -> None:
        self._taken = set(taken)
        self._map = name_map

    def fresh(self, base: str) -> str:
        suffix = 2
        candidate = f"{base}{_SEP}{suffix}"
        while candidate in self._taken:
            suffix += 1
            candidate = f"{base}{_SEP}{suffix}"
        self._taken.add(candidate)
        self._map.record(candidate, base)
        return candidate

    def fresh_terminal(self, base: str) -> str:
        if base not in self._taken:
            self._taken.add(base)
            return base
        return self.fresh(base)


def _dedupe_names(
    graph: TwoTerminalGraph,
    spec: Specification,
    renamer: _Renamer,
    aliases: Dict[str, List[str]],
) -> TwoTerminalGraph:
    """Enforce condition 1 on one graph (distinct vertex names)."""
    result = graph.copy()
    seen: Counter = Counter()
    for vid in sorted(result.vertices()):
        name = result.name(vid)
        seen[name] += 1
        if seen[name] == 1:
            continue
        if spec.is_atomic(name):
            result.dag.rename_vertex(vid, renamer.fresh(name))
        else:
            alias_list = aliases.setdefault(name, [])
            position = seen[name] - 2  # 0-based alias index
            while len(alias_list) <= position:
                alias_list.append(renamer.fresh(name))
            result.dag.rename_vertex(vid, alias_list[position])
    return result


def _wrap_terminals(
    graph: TwoTerminalGraph,
    tag: str,
    spec: Specification,
    renamer: _Renamer,
    terminal_names: Counter,
) -> TwoTerminalGraph:
    """Enforce condition 2 by adding dummy source/sink modules if needed.

    A terminal needs wrapping when its name is composite or occurs more
    than once across the whole specification.
    """
    dag = graph.dag
    source, sink = graph.source, graph.sink

    def needs_dummy(vid: int) -> bool:
        name = dag.name(vid)
        return not spec.is_atomic(name) or terminal_names[name] > 1

    result = dag.copy()
    next_vid = max(result.vertices()) + 1
    if needs_dummy(source):
        dummy = next_vid
        next_vid += 1
        result.add_vertex(dummy, renamer.fresh_terminal(f"src{_SEP}{tag}"))
        result.add_edge(dummy, source)
        source = dummy
    if needs_dummy(sink):
        dummy = next_vid
        next_vid += 1
        result.add_vertex(dummy, renamer.fresh_terminal(f"snk{_SEP}{tag}"))
        result.add_edge(sink, dummy)
        sink = dummy
    return TwoTerminalGraph(result, source, sink)


def normalize_specification(
    spec: Specification,
) -> Tuple[Specification, NameMap]:
    """Rewrite ``spec`` to satisfy the Section 5.3 naming conditions.

    Returns the normalized specification and the name map back to the
    original module names.  If the input already satisfies the
    conditions it is returned unchanged (with an empty map).
    """
    if not naming_condition_violations(spec):
        return spec, NameMap()

    name_map = NameMap()
    taken: Set[str] = set(spec.names)
    renamer = _Renamer(taken, name_map)
    aliases: Dict[str, List[str]] = {}

    # pass 1: dedupe vertex names inside every graph (condition 1).
    graphs: Dict[GraphKey, TwoTerminalGraph] = {}
    for key in spec.graph_keys():
        graphs[key] = _dedupe_names(spec.graph(key), spec, renamer, aliases)

    # pass 2: per-graph unique atomic terminals (condition 2).  Terminal
    # multiplicity is computed over the *deduped* graphs.
    terminal_names: Counter = Counter()
    occurrence: Counter = Counter()
    for key, graph in graphs.items():
        occurrence.update(graph.names())
    for key, graph in graphs.items():
        terminal_names[graph.name(graph.source)] = occurrence[
            graph.name(graph.source)
        ]
        terminal_names[graph.name(graph.sink)] = occurrence[
            graph.name(graph.sink)
        ]
    wrapped: Dict[GraphKey, TwoTerminalGraph] = {}
    for key, graph in graphs.items():
        tag = key.replace("#", "_")
        wrapped[key] = _wrap_terminals(graph, tag, spec, renamer, terminal_names)

    # assemble: each alias gets deep copies of the original
    # implementations with fresh terminal names, so condition 2 keeps
    # holding (one graph per source/sink name).
    implementations: List[Tuple[str, TwoTerminalGraph]] = []
    for key in spec.graph_keys():
        head = spec.head_of(key)
        if head is None:
            continue
        implementations.append((head, wrapped[key]))
    for head, alias_list in aliases.items():
        for alias in alias_list:
            for key in spec.impl_keys(head):
                original = wrapped[key]
                clone = original.copy()
                src_name = clone.name(clone.source)
                snk_name = clone.name(clone.sink)
                clone.dag.rename_vertex(clone.source, renamer.fresh(src_name))
                clone.dag.rename_vertex(clone.sink, renamer.fresh(snk_name))
                implementations.append((alias, clone))

    loops = set(spec.loops)
    forks = set(spec.forks)
    for head, alias_list in aliases.items():
        if head in spec.loops:
            loops.update(alias_list)
        if head in spec.forks:
            forks.update(alias_list)

    normalized = make_spec(
        start=wrapped["g0"],
        implementations=implementations,
        loops=sorted(loops),
        forks=sorted(forks),
        name=f"{spec.name}{_SEP}normalized",
        validate=True,
    )
    return normalized, name_map
