"""Graph derivations: generating runs from a specification (Definition 9).

A derivation starts from the start graph and repeatedly applies productions
``g_{i} = g_{i-1}[u_i / h_i]`` until only atomic vertices remain.  The
:class:`DerivationEngine` applies steps to a mutable run graph and records
them as :class:`DerivationStep` objects, which are exactly the update
stream consumed by the derivation-based dynamic labeling scheme.

Loop and fork steps apply one production of the infinite family
``A := S(h,...,h)`` / ``A := P(h,...,h)``: a single step instantiates all
copies at once (the execution-based scheme later reveals copies one by
one).

:func:`random_derivation` / :func:`sample_run` drive the engine with a
random policy to synthesize runs of a target size, mirroring Section 7's
"simulate the execution by repeating loops, forks and recursion a random
number of times".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DerivationError
from repro.graphs.digraph import IdAllocator, NamedDAG, merge_disjoint
from repro.graphs.ops import replace_vertex
from repro.graphs.two_terminal import TwoTerminalGraph
from repro.workflow.grammar import GrammarInfo, analyze_grammar
from repro.workflow.specification import GraphKey, START_KEY, Specification


@dataclass(frozen=True)
class Instance:
    """One instantiated copy of a specification graph inside a run.

    ``mapping`` maps every template vertex id of ``spec.graph(key)`` to the
    run vertex id it received.  Composite template vertices map to the
    placeholder run vertex later replaced by a deeper step.
    """

    key: GraphKey
    head: Optional[str]
    mapping: Dict[int, int]

    def run_vid(self, template_vid: int) -> int:
        """Run vertex id assigned to template vertex ``template_vid``."""
        return self.mapping[template_vid]


@dataclass(frozen=True)
class DerivationStep:
    """One derivation step ``g[u / h]``.

    ``copies`` has a single element for ordinary productions and ``l >= 1``
    elements for loop (``mode='series'``) and fork (``mode='parallel'``)
    productions.
    """

    target: int
    head: str
    impl_key: GraphKey
    mode: str  # 'single' | 'series' | 'parallel'
    copies: Tuple[Instance, ...]


@dataclass
class Derivation:
    """A complete derivation: the recorded inputs of Definition 9."""

    spec: Specification
    start_instance: Instance
    steps: List[DerivationStep] = field(default_factory=list)
    graph: NamedDAG = field(default_factory=NamedDAG)

    def run_size(self) -> int:
        """Number of vertices of the derived run graph."""
        return len(self.graph)

    def all_instances(self) -> List[Instance]:
        """The start instance followed by every step's copies, in order."""
        out = [self.start_instance]
        for step in self.steps:
            out.extend(step.copies)
        return out


class DerivationEngine:
    """Applies derivation steps to a mutable run graph.

    The engine owns the id allocator so every instantiated copy receives
    globally fresh vertex ids, keeps the set of *pending* composite
    vertices, and records each step.  The evolving :attr:`graph` is a valid
    intermediate graph of the derivation at every point.
    """

    def __init__(
        self,
        spec: Specification,
        info: Optional[GrammarInfo] = None,
        allocator: Optional[IdAllocator] = None,
    ) -> None:
        self.spec = spec
        self.info = info if info is not None else analyze_grammar(spec)
        self.allocator = allocator if allocator is not None else IdAllocator()
        self.graph = NamedDAG()
        self.pending: Dict[int, str] = {}
        self._started = False
        self.derivation: Optional[Derivation] = None

    # ------------------------------------------------------------------
    def _instantiate(self, key: GraphKey) -> Tuple[Instance, TwoTerminalGraph]:
        """Create a fresh copy of spec graph ``key`` with new run ids."""
        template = self.spec.graph(key)
        mapping = {tv: self.allocator.fresh() for tv in template.vertices()}
        copy = template.relabeled(mapping)
        return Instance(key=key, head=self.spec.head_of(key), mapping=mapping), copy

    def _register_pending(self, instance: Instance) -> None:
        template = self.spec.graph(instance.key)
        for tv in template.vertices():
            name = template.name(tv)
            if not self.spec.is_atomic(name):
                self.pending[instance.mapping[tv]] = name

    # ------------------------------------------------------------------
    def begin(self) -> Instance:
        """Instantiate the start graph; returns its :class:`Instance`."""
        if self._started:
            raise DerivationError("derivation already started")
        self._started = True
        instance, copy = self._instantiate(START_KEY)
        for v in copy.vertices():
            self.graph.add_vertex(v, copy.name(v))
        for a, b in copy.edges():
            self.graph.add_edge(a, b)
        self._register_pending(instance)
        self.derivation = Derivation(
            spec=self.spec, start_instance=instance, graph=self.graph
        )
        return instance

    def expand(
        self, target: int, impl_key: GraphKey, copies: int = 1
    ) -> DerivationStep:
        """Apply one production to the pending composite vertex ``target``.

        ``copies`` larger than one selects the series (loop) or parallel
        (fork) family production; it must be 1 for ordinary composites.
        """
        if self.derivation is None:
            raise DerivationError("call begin() before expand()")
        head = self.pending.get(target)
        if head is None:
            raise DerivationError(f"vertex {target} is not a pending composite")
        if self.spec.head_of(impl_key) != head:
            raise DerivationError(
                f"graph {impl_key!r} does not implement {head!r}"
            )
        if copies < 1:
            raise DerivationError("copies must be >= 1")
        is_loop = self.spec.is_loop(head)
        is_fork = self.spec.is_fork(head)
        if copies > 1 and not (is_loop or is_fork):
            raise DerivationError(
                f"{head!r} is neither loop nor fork; copies must be 1"
            )

        instances: List[Instance] = []
        bodies: List[TwoTerminalGraph] = []
        for _ in range(copies):
            inst, copy = self._instantiate(impl_key)
            instances.append(inst)
            bodies.append(copy)

        if is_loop:
            mode = "series"
        elif is_fork:
            mode = "parallel"
        else:
            mode = "single"

        body = merge_disjoint(b.dag for b in bodies)
        if mode == "series":
            for left, right in zip(bodies, bodies[1:]):
                body.add_edge(left.sink, right.source)

        replace_vertex(self.graph, target, body)
        del self.pending[target]
        for inst in instances:
            self._register_pending(inst)

        step = DerivationStep(
            target=target,
            head=head,
            impl_key=impl_key,
            mode=mode,
            copies=tuple(instances),
        )
        self.derivation.steps.append(step)
        return step

    # ------------------------------------------------------------------
    def is_complete(self) -> bool:
        """True when no composite vertices remain."""
        return self._started and not self.pending

    def finish(self) -> Derivation:
        """Return the recorded derivation; the run must be complete."""
        if self.derivation is None or not self.is_complete():
            raise DerivationError("derivation is not complete")
        return self.derivation


@dataclass
class DerivationPolicy:
    """Random-generation knobs for :func:`random_derivation`.

    ``mean_extra_copies`` controls the geometric distribution of loop/fork
    replication counts (expected copies = 1 + mean_extra_copies);
    ``target_size`` caps growth: once the run graph reaches it, recursion
    escapes and replication stops.
    """

    rng: random.Random
    target_size: int = 200
    mean_extra_copies: float = 1.5
    max_copies: int = 64
    recursion_continue_prob: float = 0.6
    shuffle_order: bool = False
    max_steps: int = 2_000_000


def _geometric_copies(policy: DerivationPolicy) -> int:
    """1 + Geometric-ish number of extra copies."""
    mean = max(policy.mean_extra_copies, 0.0)
    if mean <= 0:
        return 1
    p = 1.0 / (1.0 + mean)
    copies = 1
    while copies < policy.max_copies and policy.rng.random() > p:
        copies += 1
    return copies


def random_derivation(
    spec: Specification,
    policy: DerivationPolicy,
    info: Optional[GrammarInfo] = None,
) -> Derivation:
    """Sample one complete derivation under ``policy``.

    Implementation choices are uniform while under budget; once the run
    graph reaches ``policy.target_size`` the engine switches to escape
    implementations (non-recursive, productive) and single copies so the
    derivation terminates.
    """
    engine = DerivationEngine(spec, info=info)
    engine.begin()
    rng = policy.rng
    steps = 0
    while engine.pending:
        steps += 1
        if steps > policy.max_steps:
            raise DerivationError("derivation exceeded max_steps; check policy")
        targets = list(engine.pending)
        if policy.shuffle_order:
            target = targets[rng.randrange(len(targets))]
        else:
            target = min(targets)
        head = engine.pending[target]
        over_budget = len(engine.graph) >= policy.target_size
        impl_keys = spec.impl_keys(head)
        if over_budget:
            impl_key = engine.info.escape_impl[head]
            copies = 1
        else:
            rec_keys = [
                k for k in impl_keys if engine.info.recursive_vertices.get(k)
            ]
            nonrec_keys = [k for k in impl_keys if k not in rec_keys]
            if rec_keys and nonrec_keys:
                if rng.random() < policy.recursion_continue_prob:
                    impl_key = rec_keys[rng.randrange(len(rec_keys))]
                else:
                    impl_key = nonrec_keys[rng.randrange(len(nonrec_keys))]
            else:
                impl_key = impl_keys[rng.randrange(len(impl_keys))]
            if spec.is_loop(head) or spec.is_fork(head):
                copies = _geometric_copies(policy)
            else:
                copies = 1
        engine.expand(target, impl_key, copies)
    return engine.finish()


def sample_run(
    spec: Specification,
    target_size: int,
    rng: random.Random,
    tolerance: float = 0.3,
    attempts: int = 10,
    info: Optional[GrammarInfo] = None,
) -> Derivation:
    """Sample a derivation whose run size is close to ``target_size``.

    Retries with a multiplicatively adapted replication mean until the run
    size is within ``tolerance`` of the target, returning the closest
    attempt otherwise.  Deterministic given ``rng``'s state.
    """
    if info is None:
        info = analyze_grammar(spec)
    mean_extra = 2.0
    best: Optional[Derivation] = None
    best_gap = float("inf")
    for _ in range(max(1, attempts)):
        policy = DerivationPolicy(
            rng=rng,
            target_size=target_size,
            mean_extra_copies=mean_extra,
        )
        derivation = random_derivation(spec, policy, info=info)
        size = derivation.run_size()
        gap = abs(size - target_size) / target_size
        if gap < best_gap:
            best, best_gap = derivation, gap
        if gap <= tolerance:
            return derivation
        ratio = target_size / max(size, 1)
        mean_extra = min(max(mean_extra * ratio, 0.1), 48.0)
    assert best is not None
    return best


def replay_prefix(
    spec: Specification,
    derivation: Derivation,
    upto: int,
) -> NamedDAG:
    """Materialize the intermediate graph after ``upto`` steps.

    Re-applies the recorded steps with the recorded vertex ids; used by
    tests to check that labels answer queries correctly on every
    intermediate graph (Definition 9's requirement).
    """
    graph = NamedDAG()
    start_template = spec.graph(START_KEY)
    inst = derivation.start_instance
    for tv in start_template.vertices():
        graph.add_vertex(inst.mapping[tv], start_template.name(tv))
    for a, b in start_template.edges():
        graph.add_edge(inst.mapping[a], inst.mapping[b])
    for step in derivation.steps[:upto]:
        template = spec.graph(step.impl_key)
        body = NamedDAG()
        for copy in step.copies:
            for tv in template.vertices():
                body.add_vertex(copy.mapping[tv], template.name(tv))
            for a, b in template.edges():
                body.add_edge(copy.mapping[a], copy.mapping[b])
        if step.mode == "series":
            for left, right in zip(step.copies, step.copies[1:]):
                body.add_edge(
                    left.mapping[template.sink], right.mapping[template.source]
                )
        replace_vertex(graph, step.target, body)
    return graph
