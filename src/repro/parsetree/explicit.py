"""The explicit parse tree and its dynamic construction (Algorithm 2).

The explicit parse tree refines the canonical parse tree with three kinds
of special nodes:

* an ``L`` node whose children are the copies of one loop body, combined
  in series;
* an ``F`` node whose children are the copies of one fork body, combined
  in parallel;
* an ``R`` node whose children are the bodies of one linear recursion,
  flattened into a sibling chain linked by (conceptual) dashed edges.

Flattening recursion under ``R`` nodes is what bounds the depth: for a
linear recursive grammar the depth never exceeds ``2 * |Sigma \\ Delta|``
(Lemma 4.1), which makes the per-vertex label of the DRL scheme a
constant number of entries.

Nonlinear grammars are supported through two Section 6 modes:

* ``r_mode='linear'``   -- R nodes compress the unique recursive vertex
  (requires a linear recursive grammar);
* ``r_mode='one_r'``    -- compress one designated recursive vertex per
  production, treat the others non-recursively (depth may grow);
* ``r_mode='simplified'`` -- no R nodes at all; every recursion level adds
  tree depth.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.errors import DerivationError, LabelingError
from repro.workflow.derivation import DerivationStep, Instance
from repro.workflow.grammar import GrammarClass, GrammarInfo, analyze_grammar
from repro.workflow.specification import Specification

R_MODES = ("linear", "one_r", "simplified")


class NodeKind(Enum):
    """Node kinds of the explicit parse tree."""

    N = "N"  # non-special: annotated with one instantiated subgraph
    L = "L"  # loop: children are series-composed copies
    F = "F"  # fork: children are parallel copies
    R = "R"  # recursion: children chain a flattened linear recursion


class ParseNode:
    """One node of the explicit parse tree.

    ``index`` is the prefix-scheme index: 0 for the root, otherwise the
    1-based position among the parent's children.  Non-special nodes carry
    their annotated :class:`~repro.workflow.derivation.Instance`;
    ``edge_composite`` is the run vertex id of the composite annotated on
    the edge from the parent (None when the parent is a special node or
    for the root).
    """

    __slots__ = (
        "kind",
        "index",
        "parent",
        "children",
        "depth",
        "instance",
        "edge_composite",
    )

    def __init__(
        self,
        kind: NodeKind,
        parent: Optional["ParseNode"],
        instance: Optional[Instance] = None,
        edge_composite: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.parent = parent
        self.children: List["ParseNode"] = []
        self.depth = 0 if parent is None else parent.depth + 1
        self.instance = instance
        self.edge_composite = edge_composite
        if parent is None:
            self.index = 0
        else:
            self.index = len(parent.children) + 1
            parent.children.append(self)

    @property
    def is_special(self) -> bool:
        """True for L, F and R nodes."""
        return self.kind is not NodeKind.N

    def path_from_root(self) -> List["ParseNode"]:
        """Nodes on the root-to-self path, root first."""
        path: List[ParseNode] = []
        node: Optional[ParseNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ann = self.instance.key if self.instance is not None else None
        return f"ParseNode({self.kind.value}, index={self.index}, ann={ann})"


class ExplicitParseTree:
    """Dynamic explicit parse tree builder (Algorithm 2).

    Feed it the start instance via :meth:`begin` and every derivation step
    via :meth:`apply_step`; it maintains the context of every run vertex
    (Definition 11) and creates tree nodes exactly as Algorithm 2 does.
    ``apply_step`` returns the newly created nodes in creation order --
    special node first, then its children -- which is the order the DRL
    labeler processes them in (Algorithm 3).
    """

    def __init__(
        self,
        spec: Specification,
        info: Optional[GrammarInfo] = None,
        r_mode: str = "linear",
    ) -> None:
        if r_mode not in R_MODES:
            raise LabelingError(f"unknown r_mode {r_mode!r}; expected {R_MODES}")
        self.spec = spec
        self.info = info if info is not None else analyze_grammar(spec)
        if (
            r_mode == "linear"
            and self.info.grammar_class is GrammarClass.NONLINEAR_RECURSIVE
        ):
            raise LabelingError(
                "r_mode='linear' requires a linear recursive grammar; "
                "use 'one_r' or 'simplified' for nonlinear workflows"
            )
        self.r_mode = r_mode
        self.root: Optional[ParseNode] = None
        self.node_count = 0
        self.max_outdegree = 0
        # run vertex id -> (context node, template vertex id); Definition 11.
        self._locate: Dict[int, Tuple[ParseNode, int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_node(
        self,
        kind: NodeKind,
        parent: Optional[ParseNode],
        instance: Optional[Instance] = None,
        edge_composite: Optional[int] = None,
    ) -> ParseNode:
        node = ParseNode(kind, parent, instance, edge_composite)
        if parent is not None:
            self.max_outdegree = max(self.max_outdegree, len(parent.children))
        self.node_count += 1
        if instance is not None:
            for tv, run_vid in instance.mapping.items():
                self._locate[run_vid] = (node, tv)
        return node

    def begin(self, start_instance: Instance) -> ParseNode:
        """Create the root, annotated with the start graph instance."""
        if self.root is not None:
            raise DerivationError("parse tree already started")
        self.root = self._new_node(NodeKind.N, None, instance=start_instance)
        return self.root

    def _designated(self, node: ParseNode, template_vid: int) -> bool:
        """Is ``template_vid`` the R-compressed recursive vertex here?"""
        if self.r_mode == "simplified" or node.instance is None:
            return False
        return self.info.is_designated(node.instance.key, template_vid)

    def _body_designated(self, impl_key: str) -> Optional[int]:
        """Designated recursive vertex of the body ``impl_key`` (if any)."""
        if self.r_mode == "simplified":
            return None
        return self.info.designated_recursive.get(impl_key)

    def apply_step(self, step: DerivationStep) -> List[ParseNode]:
        """Extend the tree for one derivation step; Algorithm 2's loop body."""
        if self.root is None:
            raise DerivationError("call begin() before apply_step()")
        try:
            context, template_vid = self._locate[step.target]
        except KeyError:
            raise DerivationError(
                f"composite vertex {step.target} has no context; "
                "steps must be applied in derivation order"
            ) from None

        new_nodes: List[ParseNode] = []
        if self._designated(context, template_vid):
            # Case (2b): u_i is the compressed recursive vertex.  Its
            # context sits under an R node; extend the sibling chain with a
            # dashed edge annotated u_i.
            r_node = context.parent
            if r_node is None or r_node.kind is not NodeKind.R:
                raise DerivationError(
                    "recursive expansion outside an R chain; tree corrupted"
                )
            node = self._new_node(
                NodeKind.N,
                r_node,
                instance=step.copies[0],
                edge_composite=step.target,
            )
            new_nodes.append(node)
            return new_nodes

        if self.spec.is_loop(step.head) or self.spec.is_fork(step.head):
            # Case (1a): series/parallel replication under an L/F node.
            kind = NodeKind.L if self.spec.is_loop(step.head) else NodeKind.F
            special = self._new_node(
                kind, context, edge_composite=step.target
            )
            new_nodes.append(special)
            for inst in step.copies:
                new_nodes.append(
                    self._new_node(NodeKind.N, special, instance=inst)
                )
            return new_nodes

        if len(step.copies) != 1:
            raise DerivationError("non-replicating step must have one copy")

        if self._body_designated(step.impl_key) is not None:
            # Case (1b): the body starts a (compressed) recursion chain.
            r_node = self._new_node(
                NodeKind.R, context, edge_composite=step.target
            )
            new_nodes.append(r_node)
            new_nodes.append(
                self._new_node(NodeKind.N, r_node, instance=step.copies[0])
            )
            return new_nodes

        # Case (1c): a plain expansion.
        new_nodes.append(
            self._new_node(
                NodeKind.N,
                context,
                instance=step.copies[0],
                edge_composite=step.target,
            )
        )
        return new_nodes

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def context_of(self, run_vid: int) -> Tuple[ParseNode, int]:
        """The context of a run vertex and its template vertex (Def. 11)."""
        try:
            return self._locate[run_vid]
        except KeyError:
            raise LabelingError(f"run vertex {run_vid} has no context") from None

    def depth(self) -> int:
        """Maximum node depth (root = 0)."""
        if self.root is None:
            return 0
        best = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            best = max(best, node.depth)
            stack.extend(node.children)
        return best

    def lca(self, a: ParseNode, b: ParseNode) -> ParseNode:
        """Least common ancestor of two nodes (by depth walking)."""
        while a.depth > b.depth:
            assert a.parent is not None
            a = a.parent
        while b.depth > a.depth:
            assert b.parent is not None
            b = b.parent
        while a is not b:
            assert a.parent is not None and b.parent is not None
            a, b = a.parent, b.parent
        return a

    def nodes(self) -> List[ParseNode]:
        """All nodes in preorder."""
        if self.root is None:
            return []
        out: List[ParseNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def depth_bound(self) -> int:
        """Lemma 4.1's bound ``2 * |Sigma \\ Delta|`` on the tree depth."""
        return 2 * len(self.spec.composite_names)


def build_explicit_tree(
    derivation, info: Optional[GrammarInfo] = None, r_mode: str = "linear"
) -> ExplicitParseTree:
    """Build the complete explicit parse tree of a recorded derivation."""
    tree = ExplicitParseTree(derivation.spec, info=info, r_mode=r_mode)
    tree.begin(derivation.start_instance)
    for step in derivation.steps:
        tree.apply_step(step)
    return tree
