"""Reachability through the explicit parse tree (Lemma 4.2).

Given the explicit parse tree of a run and two run vertices, reachability
reduces to the *type* of the least common ancestor of their contexts:

* ``L`` node  -- reachable iff the left branch comes first (series order);
* ``F`` node  -- never reachable (parallel copies);
* ``R`` node  -- reduce to a query between the left branch's origin and
  the recursive vertex inside one small specification graph;
* non-special -- reduce to a query between the two origins inside the
  LCA's annotated specification graph.

This module evaluates the reduction *directly on the tree* (no labels),
providing an independent oracle against which the label-based predicate
of Algorithm 4 is tested.
"""

from __future__ import annotations

from repro.errors import LabelingError
from repro.graphs.reachability import reaches
from repro.parsetree.explicit import ExplicitParseTree, NodeKind, ParseNode
from repro.workflow.specification import Specification


def _child_toward(lca: ParseNode, node: ParseNode) -> ParseNode:
    """The child of ``lca`` on the path down to ``node`` (node != lca)."""
    current = node
    while current.parent is not lca:
        parent = current.parent
        if parent is None:
            raise LabelingError("node is not a descendant of the LCA")
        current = parent
    return current


def _origin_template_vid(
    tree: ExplicitParseTree, ancestor: ParseNode, run_vid: int
) -> int:
    """Template vertex of ``Ann(ancestor)`` from which ``run_vid`` derives.

    The origin (Definition 12) with respect to a non-special ancestor: walk
    up from the vertex's context until reaching ``ancestor``; the edge
    taken out of ``ancestor`` carries the composite whose expansion leads
    to the vertex.
    """
    context, template_vid = tree.context_of(run_vid)
    if context is ancestor:
        return template_vid
    child = _child_toward(ancestor, context)
    # Every child of a non-special node was created by expanding a
    # composite of the ancestor's annotation; that composite is the origin.
    if child.edge_composite is None:
        raise LabelingError("missing edge annotation below non-special node")
    ctx, tv = tree.context_of(child.edge_composite)
    if ctx is not ancestor:
        raise LabelingError("edge annotation context mismatch")
    return tv


def tree_reaches(
    tree: ExplicitParseTree, spec: Specification, v: int, v_prime: int
) -> bool:
    """Decide ``v ;_g v'`` via Lemma 4.2 on the explicit parse tree."""
    if v == v_prime:
        return True
    ctx_v, tv_v = tree.context_of(v)
    ctx_w, tv_w = tree.context_of(v_prime)
    lca = tree.lca(ctx_v, ctx_w)

    if lca.kind is NodeKind.L:
        y = _child_toward(lca, ctx_v)
        z = _child_toward(lca, ctx_w)
        return y.index < z.index

    if lca.kind is NodeKind.F:
        return False

    if lca.kind is NodeKind.R:
        y = _child_toward(lca, ctx_v)
        z = _child_toward(lca, ctx_w)
        if y.index == z.index:
            raise LabelingError("LCA mismatch inside R chain")
        left, left_vertex_run = (y, v) if y.index < z.index else (z, v_prime)
        assert left.instance is not None
        body = spec.graph(left.instance.key)
        origin = _origin_template_vid(tree, left, left_vertex_run)
        recursive = tree.info.designated_recursive.get(left.instance.key)
        if recursive is None:
            raise LabelingError("left R-chain element lacks a recursive vertex")
        if y.index < z.index:
            # v sits in the left element; v' derives from its recursive
            # vertex: v ; v' iff origin(v) reaches the recursive vertex.
            return reaches(body.dag, origin, recursive)
        # v derives from the recursive vertex of the left element (which
        # contains v'): v ; v' iff the recursive vertex reaches origin(v').
        return reaches(body.dag, recursive, origin)

    # Non-special LCA: compare origins inside the annotated spec graph.
    assert lca.instance is not None
    body = spec.graph(lca.instance.key)
    u = _origin_template_vid(tree, lca, v)
    u_prime = _origin_template_vid(tree, lca, v_prime)
    if u == u_prime:
        # Both derive from the same composite, so the LCA cannot be the
        # deepest common context -- but reflexive closure still answers.
        return True if v == v_prime else reaches(body.dag, u, u_prime)
    return reaches(body.dag, u, u_prime)
