"""Canonical parse trees (Section 4.2, Figure 8).

The canonical parse tree has one node per derivation step: the root is the
start graph and replacing a composite vertex ``u`` of a subgraph ``h1``
with ``h2`` adds ``h2`` as a child of ``h1`` (the edge annotated with
``u``).  For recursive grammars its depth is unbounded, which is exactly
why the explicit parse tree flattens recursion chains under ``R`` nodes.

This structure is not used by the labeling schemes; it exists to make the
paper's exposition executable and to measure the depth blow-up in tests
and ablations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import DerivationError
from repro.workflow.derivation import Derivation, DerivationStep, Instance


class CanonicalNode:
    """One node of the canonical parse tree (one instantiated subgraph)."""

    __slots__ = ("instance", "parent", "children", "edge_composite", "depth")

    def __init__(
        self,
        instance: Instance,
        parent: Optional["CanonicalNode"],
        edge_composite: Optional[int],
    ) -> None:
        self.instance = instance
        self.parent = parent
        self.children: List["CanonicalNode"] = []
        self.edge_composite = edge_composite
        self.depth = 0 if parent is None else parent.depth + 1
        if parent is not None:
            parent.children.append(self)


class CanonicalParseTree:
    """Canonical parse tree built from a recorded derivation.

    A replication step (loop/fork) contributes one child per copy, all
    annotated on edges with the same replaced composite; this matches the
    single-step application of the ``S(h,...,h)`` / ``P(h,...,h)``
    productions.
    """

    def __init__(self, derivation: Derivation) -> None:
        self.derivation = derivation
        self.root = CanonicalNode(derivation.start_instance, None, None)
        self._locate: Dict[int, Tuple[CanonicalNode, int]] = {}
        self._register(self.root)
        for step in derivation.steps:
            self._apply(step)

    def _register(self, node: CanonicalNode) -> None:
        for tv, run_vid in node.instance.mapping.items():
            self._locate[run_vid] = (node, tv)

    def _apply(self, step: DerivationStep) -> None:
        try:
            context, _ = self._locate[step.target]
        except KeyError:
            raise DerivationError(
                f"composite {step.target} expanded before its context exists"
            ) from None
        for inst in step.copies:
            child = CanonicalNode(inst, context, step.target)
            self._register(child)

    # ------------------------------------------------------------------
    def context_of(self, run_vid: int) -> Tuple[CanonicalNode, int]:
        """Node whose instance contains the run vertex, plus template id."""
        return self._locate[run_vid]

    def depth(self) -> int:
        """Maximum node depth (root = 0)."""
        best = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            best = max(best, node.depth)
            stack.extend(node.children)
        return best

    def size(self) -> int:
        """Number of nodes."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count
