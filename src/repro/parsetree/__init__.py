"""Parse trees for workflow runs (Section 4.2).

* :mod:`repro.parsetree.canonical` -- the canonical parse tree: one node
  per derivation step, depth proportional to recursion depth.
* :mod:`repro.parsetree.explicit` -- the explicit parse tree with special
  ``L`` (loop), ``F`` (fork) and ``R`` (recursion) nodes, built dynamically
  by Algorithm 2; for linear recursive grammars its depth is bounded by
  ``2 * |Sigma \\ Delta|`` (Lemma 4.1).
* :mod:`repro.parsetree.queries` -- the LCA-based reachability reduction of
  Lemma 4.2, used as an independent oracle for testing the label-based
  predicate.
"""

from repro.parsetree.explicit import ExplicitParseTree, NodeKind, ParseNode
from repro.parsetree.canonical import CanonicalParseTree
from repro.parsetree.queries import tree_reaches

__all__ = [
    "ExplicitParseTree",
    "NodeKind",
    "ParseNode",
    "CanonicalParseTree",
    "tree_reaches",
]
