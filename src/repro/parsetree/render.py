"""ASCII rendering of explicit parse trees.

Draws the structure of Figure 9 in text form: non-special nodes show
their annotated specification graph, ``L``/``F`` nodes their copies, and
``R`` nodes their flattened recursion chain.  Used by examples and
helpful when debugging label construction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.parsetree.explicit import ExplicitParseTree, NodeKind, ParseNode


def _node_line(node: ParseNode, max_vertices: int) -> str:
    if node.kind is NodeKind.N:
        assert node.instance is not None
        mapping = node.instance.mapping
        shown = sorted(mapping.values())[:max_vertices]
        suffix = "" if len(mapping) <= max_vertices else ", ..."
        vertices = ", ".join(f"v{v}" for v in shown)
        return f"[{node.index}] {node.instance.key} ({vertices}{suffix})"
    return f"[{node.index}] <{node.kind.value}>"


def render_tree(
    tree: ExplicitParseTree,
    max_depth: Optional[int] = None,
    max_vertices: int = 6,
) -> str:
    """Render the tree with box-drawing connectors.

    ``max_depth`` truncates deep trees; ``max_vertices`` limits the run
    vertices listed per annotation.
    """
    if tree.root is None:
        return "(empty parse tree)"
    lines: List[str] = []

    def walk(node: ParseNode, prefix: str, is_last: bool) -> None:
        if node.parent is None:
            lines.append(_node_line(node, max_vertices))
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + _node_line(node, max_vertices))
            child_prefix = prefix + ("    " if is_last else "|   ")
        if max_depth is not None and node.depth >= max_depth:
            if node.children:
                lines.append(child_prefix + f"`-- ... {len(node.children)} child(ren)")
            return
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1)

    walk(tree.root, "", True)
    return "\n".join(lines)
