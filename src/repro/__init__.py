"""repro -- dynamic reachability labeling for recursive workflow executions.

A from-scratch reproduction of Bao, Davidson & Milo, *"Labeling Recursive
Workflow Executions On-the-Fly"* (SIGMOD 2011): workflow specifications
modeled as graph grammars, runs derived or executed dynamically, and the
DRL labeling scheme that answers provenance reachability queries from two
logarithmic-size labels in constant time -- plus every baseline and
substrate the paper's evaluation uses.

Quickstart::

    import random
    from repro import (
        DRL, DRLExecutionLabeler, bioaid, execution_from_derivation,
        sample_run,
    )

    spec = bioaid()
    scheme = DRL(spec, skeleton="tcl")
    run = sample_run(spec, target_size=1000, rng=random.Random(0))
    execution = execution_from_derivation(run)

    labeler = DRLExecutionLabeler(scheme, mode="name")
    for insertion in execution:          # label on-the-fly
        labeler.insert(insertion)

    v, w = execution.insertions[0].vid, execution.insertions[-1].vid
    scheme.query(labeler.label(v), labeler.label(w))   # v ~> w ?

As a service (many concurrent runs, batch queries, caching)::

    from repro import QueryEngine, SessionManager

    manager = SessionManager()
    engine = QueryEngine(manager)
    manager.create("run-1", "bioaid")            # any builtin or spec file
    engine.ingest("run-1", execution.insertions)
    engine.query_many("run-1", [(v, w), (w, v)])  # cached batch answers

or over the wire: ``python -m repro serve --port 7464`` hosts the same
engine behind a JSON-lines TCP protocol (see :mod:`repro.service` and
``docs/SERVICE.md``), with live-session checkpoint/restore via
:func:`checkpoint_session` / :func:`restore_session`.

Every labeling backend conforms to one capability-typed protocol
(:mod:`repro.schemes`): build any registered scheme by name and query
it through the single ``reaches`` method::

    from repro.schemes import Workload, registry

    workload = Workload.from_run(spec, run)
    for name in registry.available():            # drl, grail, twohop, ...
        if registry.get(name).supports(workload) is None:
            index = registry.build(name, workload)
            index.reaches(v, w)

Sessions host any *dynamic* scheme (``manager.create(..., scheme="naive")``,
``repro serve``/``repro label`` take ``--scheme``).
"""

from repro.errors import (
    CycleError,
    DerivationError,
    ExecutionError,
    GraphError,
    LabelingError,
    NotTwoTerminalError,
    ProtocolError,
    ReproError,
    ServiceError,
    SessionNotFoundError,
    SpecificationError,
    UnsupportedWorkflowError,
)
from repro.graphs import (
    NamedDAG,
    TwoTerminalGraph,
    insert_vertex,
    parallel_composition,
    random_two_terminal_dag,
    reaches,
    replace_vertex,
    series_composition,
)
from repro.workflow import (
    Derivation,
    DerivationEngine,
    DerivationPolicy,
    Execution,
    GrammarClass,
    Insertion,
    Specification,
    analyze_grammar,
    execution_from_derivation,
    sample_run,
)
from repro.workflow.specification import make_spec
from repro.parsetree import CanonicalParseTree, ExplicitParseTree, NodeKind
from repro.labeling import (
    BFSSkeleton,
    DRL,
    DRLDerivationLabeler,
    DRLExecutionLabeler,
    NaiveDynamicScheme,
    SKL,
    TCLSkeleton,
)
from repro.datasets import (
    bioaid,
    builtin_spec_names,
    fig12_path_grammar,
    running_example,
    spec_by_name,
    synthetic_spec,
    theorem1_grammar,
)
from repro.provenance import ProvenanceStore
from repro.schemes import (
    DynamicScheme,
    Scheme,
    SchemeCapabilities,
    StaticScheme,
    Workload,
)
from repro.service import (
    QueryEngine,
    ReproServer,
    ReproService,
    ServiceClient,
    ServiceStats,
    Session,
    SessionManager,
    checkpoint_session,
    restore_session,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "GraphError",
    "CycleError",
    "NotTwoTerminalError",
    "SpecificationError",
    "DerivationError",
    "ExecutionError",
    "LabelingError",
    "UnsupportedWorkflowError",
    "ServiceError",
    "SessionNotFoundError",
    "ProtocolError",
    # graphs
    "NamedDAG",
    "TwoTerminalGraph",
    "series_composition",
    "parallel_composition",
    "insert_vertex",
    "replace_vertex",
    "reaches",
    "random_two_terminal_dag",
    # workflow
    "Specification",
    "make_spec",
    "GrammarClass",
    "analyze_grammar",
    "Derivation",
    "DerivationEngine",
    "DerivationPolicy",
    "sample_run",
    "Execution",
    "Insertion",
    "execution_from_derivation",
    # parse trees
    "ExplicitParseTree",
    "CanonicalParseTree",
    "NodeKind",
    # labeling
    "DRL",
    "DRLDerivationLabeler",
    "DRLExecutionLabeler",
    "SKL",
    "NaiveDynamicScheme",
    "TCLSkeleton",
    "BFSSkeleton",
    # datasets
    "running_example",
    "theorem1_grammar",
    "fig12_path_grammar",
    "bioaid",
    "synthetic_spec",
    "builtin_spec_names",
    "spec_by_name",
    # provenance
    "ProvenanceStore",
    # schemes
    "Scheme",
    "StaticScheme",
    "DynamicScheme",
    "SchemeCapabilities",
    "Workload",
    # service
    "Session",
    "SessionManager",
    "QueryEngine",
    "ServiceStats",
    "ReproService",
    "ReproServer",
    "ServiceClient",
    "checkpoint_session",
    "restore_session",
    "__version__",
]
